//! Facade crate for the DSSP reproduction.
//!
//! This workspace reproduces *Dynamic Stale Synchronous Parallel Distributed Training
//! for Deep Learning* (Zhao, An, Liu, Chen — ICDCS 2019) as a stack of eight Rust
//! crates. `dssp` re-exports the public API of each substrate so downstream users can
//! depend on a single crate, and it owns the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`).
//!
//! The layering, bottom to top:
//!
//! | module | crate | provides |
//! |---|---|---|
//! | [`tensor`] | `dssp-tensor` | dense `f32` tensors, matmul/conv kernels |
//! | [`nn`] | `dssp-nn` | layers, models, loss, SGD/Adam optimizers |
//! | [`data`] | `dssp-data` | synthetic datasets, sharding, batch iteration |
//! | [`cluster`] | `dssp-cluster` | device/link profiles, per-iteration time model |
//! | [`ps`] | `dssp-ps` | parameter server, BSP/ASP/SSP/DSSP policies |
//! | [`sim`] | `dssp-sim` | discrete-event simulator (real training, virtual time) |
//! | [`core`](mod@core) | `dssp-core` | experiments, presets, metrics, shared driver, threaded runtime |
//! | [`net`] | `dssp-net` | wire protocol, TCP/loopback transports, multi-process deployment |
//! | [`coord`] | `dssp-coord` | multi-server groups: shard servers + clock/controller coordinator |
//! | [`bench`](mod@bench) | `dssp-bench` | figure/table regeneration for the paper's evaluation |
//!
//! # Example
//!
//! ```
//! use dssp::core::ExperimentBuilder;
//! use dssp::ps::PolicyKind;
//!
//! let trace = ExperimentBuilder::small_mlp()
//!     .policy(PolicyKind::Dssp { s_l: 3, r_max: 12 })
//!     .epochs(1)
//!     .run();
//! assert!(trace.total_pushes > 0);
//! ```

#![deny(missing_docs)]

pub use dssp_bench as bench;
pub use dssp_cluster as cluster;
pub use dssp_coord as coord;
pub use dssp_core as core;
pub use dssp_data as data;
pub use dssp_net as net;
pub use dssp_nn as nn;
pub use dssp_ps as ps;
pub use dssp_sim as sim;
pub use dssp_tensor as tensor;

pub use dssp_core::{Experiment, ExperimentBuilder, JobConfig, RunTrace, Scale};
pub use dssp_ps::PolicyKind;
