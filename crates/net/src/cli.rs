//! Command-line flag parsing shared by the `repro` binary's `serve`/`worker`/`launch`
//! subcommands and by [`crate::launch`] (which re-serializes the job into worker
//! process arguments).
//!
//! A job built by [`job_from_flags`] round-trips exactly through [`job_args`]; any
//! drift between a server's and a worker's configuration is caught by the
//! `JobConfig::digest` check in the `Hello` handshake.

use dssp_core::driver::{CheckpointSpec, FaultPlan, JobConfig, MigrationSpec};
use dssp_ps::PolicyKind;

/// Returns the value following `flag` in `args`, if present.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid value '{v}' for {flag}")),
    }
}

/// Parses a policy spec: `bsp`, `asp`, `ssp:S`, `dssp[:S_L[:R_MAX]]` or
/// `dssp-strict:S_L:R_MAX`.
pub fn parse_policy(spec: &str) -> Result<PolicyKind, String> {
    let mut parts = spec.split(':');
    let head = parts.next().unwrap_or_default();
    let nums: Vec<u64> = parts
        .map(|p| {
            p.parse()
                .map_err(|_| format!("invalid number '{p}' in policy '{spec}'"))
        })
        .collect::<Result<_, _>>()?;
    match (head, nums.as_slice()) {
        ("bsp", []) => Ok(PolicyKind::Bsp),
        ("asp", []) => Ok(PolicyKind::Asp),
        ("ssp", [s]) => Ok(PolicyKind::Ssp { s: *s }),
        ("dssp", []) => Ok(PolicyKind::Dssp { s_l: 1, r_max: 8 }),
        ("dssp", [s_l]) => Ok(PolicyKind::Dssp {
            s_l: *s_l,
            r_max: 8,
        }),
        ("dssp", [s_l, r_max]) => Ok(PolicyKind::Dssp {
            s_l: *s_l,
            r_max: *r_max,
        }),
        ("dssp-strict", [s_l, r_max]) => Ok(PolicyKind::DsspStrict {
            s_l: *s_l,
            r_max: *r_max,
        }),
        _ => Err(format!(
            "invalid policy '{spec}' (expected bsp | asp | ssp:S | dssp[:S_L[:R_MAX]] | dssp-strict:S_L:R_MAX)"
        )),
    }
}

/// Renders a policy back into the spec syntax accepted by [`parse_policy`].
pub fn policy_spec(policy: &PolicyKind) -> String {
    match policy {
        PolicyKind::Bsp => "bsp".to_string(),
        PolicyKind::Asp => "asp".to_string(),
        PolicyKind::Ssp { s } => format!("ssp:{s}"),
        PolicyKind::Dssp { s_l, r_max } => format!("dssp:{s_l}:{r_max}"),
        PolicyKind::DsspStrict { s_l, r_max } => format!("dssp-strict:{s_l}:{r_max}"),
    }
}

/// Builds a [`JobConfig`] from CLI flags. Recognized flags (all optional):
///
/// | flag | default | meaning |
/// |---|---|---|
/// | `--model mlp\|alexnet` | `mlp` | model/dataset preset |
/// | `--policy SPEC` | `dssp:1:8` | see [`parse_policy`] |
/// | `--workers N` | 2 | worker count |
/// | `--epochs E` | preset | passes over each shard |
/// | `--batch-size B` | preset | mini-batch size |
/// | `--seed S` | preset | master seed |
/// | `--shards K` | 1 | server storage shards |
/// | `--servers N` | 1 | shard servers the model is spread over (multi-server group; needs `K >= N`) |
/// | `--eval-every N` | preset | pushes between evaluations |
/// | `--straggler-ms MS` | 4 | extra per-iteration delay of the last worker (0 = homogeneous) |
/// | `--delta-pulls on\|off` | `on` | incremental pulls (workers fetch only shards whose version advanced) |
/// | `--deterministic` | off | canonical event order + logical clock |
/// | `--fail-after N` | off | chaos hook: server aborts after N pushes |
/// | `--fault SPEC` | off | structured chaos: `role:phase:action:after` (see `FaultPlan::parse`) |
/// | `--checkpoint-dir D` | off | write role-conventional checkpoint files under `D` |
/// | `--checkpoint-every N` | 1 | applied pushes between checkpoint writes |
/// | `--restore` | off | restore from `--checkpoint-dir` instead of starting fresh |
/// | `--event-log D` | off | flush a structured NDJSON event log per role under `D` |
/// | `--metrics-addr H:P` | off | serve Prometheus `GET /metrics` (base port; shard server `i` at `P+1+i`) |
/// | `--migrate SPEC` | off | declarative live migration: `drain:<server>:<at_version>` or `rebalance:<at_version>` |
/// | `--migrate-threshold N` | off | auto-rebalance a group when the owned-shard skew exceeds N |
///
/// `--delta-pulls` is part of the config digest, so a server and a worker that
/// disagree on it are rejected at the `Hello` handshake rather than silently mixing
/// pull modes.
pub fn job_from_flags(args: &[String]) -> Result<JobConfig, String> {
    let policy =
        parse_policy(&flag_value(args, "--policy").unwrap_or_else(|| "dssp:1:8".to_string()))?;
    let model = flag_value(args, "--model").unwrap_or_else(|| "mlp".to_string());
    let mut job = match model.as_str() {
        "mlp" => JobConfig::small(policy),
        "alexnet" => JobConfig::small_alexnet(policy),
        other => return Err(format!("unknown model preset '{other}' (mlp | alexnet)")),
    };
    if let Some(n) = parse_flag::<usize>(args, "--workers")? {
        if n == 0 {
            return Err("--workers must be at least 1".to_string());
        }
        job.num_workers = n;
    }
    if let Some(e) = parse_flag::<usize>(args, "--epochs")? {
        job.epochs = e.max(1);
    }
    if let Some(b) = parse_flag::<usize>(args, "--batch-size")? {
        job.batch_size = b.max(1);
    }
    if let Some(s) = parse_flag::<u64>(args, "--seed")? {
        job.seed = s;
    }
    if let Some(k) = parse_flag::<usize>(args, "--shards")? {
        if k == 0 {
            return Err("--shards must be at least 1".to_string());
        }
        job.shards = k;
    }
    if let Some(n) = parse_flag::<usize>(args, "--servers")? {
        if n == 0 {
            return Err("--servers must be at least 1".to_string());
        }
        if n > job.shards {
            return Err(format!(
                "--servers {n} needs at least that many storage shards (got --shards {})",
                job.shards
            ));
        }
        job.servers = n;
    }
    if let Some(n) = parse_flag::<u64>(args, "--eval-every")? {
        job.eval_every_pushes = n.max(1);
    }
    let straggler_ms = parse_flag::<u64>(args, "--straggler-ms")?.unwrap_or(4);
    job.extra_compute_delay_ms = if straggler_ms == 0 || job.num_workers < 2 {
        Vec::new()
    } else {
        let mut delays = vec![0; job.num_workers];
        delays[job.num_workers - 1] = straggler_ms;
        delays
    };
    job.delta_pulls = match flag_value(args, "--delta-pulls").as_deref() {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => {
            return Err(format!(
                "invalid value '{other}' for --delta-pulls (expected on | off)"
            ))
        }
    };
    job.deterministic = args.iter().any(|a| a == "--deterministic");
    job.fail_after_pushes = parse_flag::<u64>(args, "--fail-after")?;
    job.fault_plan = match flag_value(args, "--fault") {
        None => None,
        Some(spec) => Some(FaultPlan::parse(&spec).ok_or_else(|| {
            format!(
                "invalid fault spec '{spec}' (expected role:phase:action:after, e.g. \
                 worker0:push:restart:2)"
            )
        })?),
    };
    job.checkpoint = match flag_value(args, "--checkpoint-dir") {
        None => {
            if args.iter().any(|a| a == "--restore") {
                return Err("--restore needs --checkpoint-dir".to_string());
            }
            None
        }
        Some(dir) => Some(CheckpointSpec {
            dir: dir.into(),
            every_pushes: parse_flag::<u64>(args, "--checkpoint-every")?
                .unwrap_or(1)
                .max(1),
            restore: args.iter().any(|a| a == "--restore"),
        }),
    };
    job.migration = match flag_value(args, "--migrate") {
        None => None,
        Some(spec) => Some(MigrationSpec::parse(&spec).ok_or_else(|| {
            format!(
                "invalid migration spec '{spec}' (expected drain:<server>:<at_version> or \
                 rebalance:<at_version>)"
            )
        })?),
    };
    job.migrate_threshold = parse_flag::<u64>(args, "--migrate-threshold")?;
    job.event_log = flag_value(args, "--event-log").map(std::path::PathBuf::from);
    job.metrics_addr = match flag_value(args, "--metrics-addr") {
        None => None,
        Some(addr) => {
            if crate::metrics::derive_metrics_addr(&addr, 0).is_none() {
                return Err(format!(
                    "invalid value '{addr}' for --metrics-addr (expected HOST:PORT)"
                ));
            }
            Some(addr)
        }
    };
    Ok(job)
}

/// Serializes a job back into the flags [`job_from_flags`] accepts, for spawning
/// worker processes. Only CLI-representable jobs round-trip (model presets, a single
/// trailing straggler); anything else is caught by the handshake digest check.
pub fn job_args(job: &JobConfig) -> Vec<String> {
    let model = match &job.model {
        dssp_nn::models::ModelSpec::DownsizedAlexNet { .. } => "alexnet",
        _ => "mlp",
    };
    let straggler_ms = job.extra_compute_delay_ms.last().copied().unwrap_or(0);
    let mut args = vec![
        "--model".to_string(),
        model.to_string(),
        "--policy".to_string(),
        policy_spec(&job.policy),
        "--workers".to_string(),
        job.num_workers.to_string(),
        "--epochs".to_string(),
        job.epochs.to_string(),
        "--batch-size".to_string(),
        job.batch_size.to_string(),
        "--seed".to_string(),
        job.seed.to_string(),
        "--shards".to_string(),
        job.shards.to_string(),
        "--servers".to_string(),
        job.servers.to_string(),
        "--eval-every".to_string(),
        job.eval_every_pushes.to_string(),
        "--straggler-ms".to_string(),
        straggler_ms.to_string(),
        "--delta-pulls".to_string(),
        if job.delta_pulls { "on" } else { "off" }.to_string(),
    ];
    if job.deterministic {
        args.push("--deterministic".to_string());
    }
    if let Some(n) = job.fail_after_pushes {
        args.push("--fail-after".to_string());
        args.push(n.to_string());
    }
    if let Some(plan) = &job.fault_plan {
        args.push("--fault".to_string());
        args.push(plan.to_spec());
    }
    if let Some(ckpt) = &job.checkpoint {
        args.push("--checkpoint-dir".to_string());
        args.push(ckpt.dir.display().to_string());
        args.push("--checkpoint-every".to_string());
        args.push(ckpt.every_pushes.to_string());
        if ckpt.restore {
            args.push("--restore".to_string());
        }
    }
    if let Some(spec) = &job.migration {
        args.push("--migrate".to_string());
        args.push(spec.to_spec());
    }
    if let Some(threshold) = job.migrate_threshold {
        args.push("--migrate-threshold".to_string());
        args.push(threshold.to_string());
    }
    if let Some(dir) = &job.event_log {
        args.push("--event-log".to_string());
        args.push(dir.display().to_string());
    }
    if let Some(addr) = &job.metrics_addr {
        args.push("--metrics-addr".to_string());
        args.push(addr.clone());
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn policy_specs_round_trip() {
        for spec in ["bsp", "asp", "ssp:3", "dssp:1:8", "dssp-strict:2:5"] {
            let policy = parse_policy(spec).unwrap();
            assert_eq!(policy_spec(&policy), spec);
        }
        assert_eq!(
            parse_policy("dssp").unwrap(),
            PolicyKind::Dssp { s_l: 1, r_max: 8 }
        );
        assert!(parse_policy("nope").is_err());
        assert!(parse_policy("ssp").is_err());
        assert!(parse_policy("ssp:x").is_err());
    }

    #[test]
    fn job_flags_round_trip_through_job_args() {
        let args = strings(&[
            "--model",
            "alexnet",
            "--policy",
            "dssp:2:6",
            "--workers",
            "3",
            "--epochs",
            "2",
            "--seed",
            "99",
            "--shards",
            "4",
            "--straggler-ms",
            "7",
            "--deterministic",
        ]);
        let job = job_from_flags(&args).unwrap();
        assert_eq!(job.num_workers, 3);
        assert_eq!(job.shards, 4);
        assert_eq!(job.extra_compute_delay_ms, vec![0, 0, 7]);
        assert!(job.deterministic);
        let rebuilt = job_from_flags(&job_args(&job)).unwrap();
        assert_eq!(job.digest(), rebuilt.digest());
    }

    #[test]
    fn delta_pulls_default_on_and_round_trip_through_the_digest() {
        let on = job_from_flags(&[]).unwrap();
        assert!(on.delta_pulls);
        let off = job_from_flags(&strings(&["--delta-pulls", "off"])).unwrap();
        assert!(!off.delta_pulls);
        // Mixed-mode jobs must be rejected at handshake: the digest differs.
        assert_ne!(on.digest(), off.digest());
        let rebuilt = job_from_flags(&job_args(&off)).unwrap();
        assert!(!rebuilt.delta_pulls);
        assert_eq!(off.digest(), rebuilt.digest());
        assert!(job_from_flags(&strings(&["--delta-pulls", "maybe"])).is_err());
    }

    #[test]
    fn servers_flag_round_trips_and_is_validated() {
        let job = job_from_flags(&strings(&["--shards", "8", "--servers", "2"])).unwrap();
        assert_eq!(job.servers, 2);
        let rebuilt = job_from_flags(&job_args(&job)).unwrap();
        assert_eq!(job.digest(), rebuilt.digest());
        // Topology is part of the digest: a 1-server worker cannot join a 2-server job.
        let single = job_from_flags(&strings(&["--shards", "8"])).unwrap();
        assert_ne!(job.digest(), single.digest());
        // More servers than shards is rejected up front.
        assert!(job_from_flags(&strings(&["--shards", "2", "--servers", "4"])).is_err());
        assert!(job_from_flags(&strings(&["--servers", "0"])).is_err());
    }

    #[test]
    fn defaults_give_a_dssp_job_with_one_straggler() {
        let job = job_from_flags(&[]).unwrap();
        assert_eq!(job.policy, PolicyKind::Dssp { s_l: 1, r_max: 8 });
        assert_eq!(job.num_workers, 2);
        assert_eq!(job.extra_compute_delay_ms, vec![0, 4]);
        let rebuilt = job_from_flags(&job_args(&job)).unwrap();
        assert_eq!(job.digest(), rebuilt.digest());
    }

    #[test]
    fn single_worker_jobs_drop_the_straggler() {
        let job = job_from_flags(&strings(&["--workers", "1"])).unwrap();
        assert!(job.extra_compute_delay_ms.is_empty());
    }

    #[test]
    fn chaos_flags_round_trip_but_stay_out_of_the_stable_digest() {
        let args = strings(&[
            "--fault",
            "worker1:push:restart:3",
            "--checkpoint-dir",
            "/tmp/ckpts",
            "--checkpoint-every",
            "5",
            "--restore",
        ]);
        let job = job_from_flags(&args).unwrap();
        let plan = job.fault_plan.expect("fault plan parsed");
        assert_eq!(plan.to_spec(), "worker1:push:restart:3");
        let ckpt = job.checkpoint.clone().expect("checkpoint spec parsed");
        assert_eq!(ckpt.dir, std::path::PathBuf::from("/tmp/ckpts"));
        assert_eq!(ckpt.every_pushes, 5);
        assert!(ckpt.restore);
        let rebuilt = job_from_flags(&job_args(&job)).unwrap();
        assert_eq!(job.digest(), rebuilt.digest());
        // The chaos knobs change the full digest but are masked from the handshake
        // digest: a restarted process without its fault plan still interoperates.
        let clean = job_from_flags(&[]).unwrap();
        assert_ne!(job.digest(), clean.digest());
        assert_eq!(job.stable_digest(), clean.stable_digest());
    }

    #[test]
    fn observability_flags_round_trip_but_stay_out_of_the_stable_digest() {
        let args = strings(&[
            "--event-log",
            "/tmp/events",
            "--metrics-addr",
            "127.0.0.1:9180",
        ]);
        let job = job_from_flags(&args).unwrap();
        assert_eq!(job.event_log, Some(std::path::PathBuf::from("/tmp/events")));
        assert_eq!(job.metrics_addr.as_deref(), Some("127.0.0.1:9180"));
        let rebuilt = job_from_flags(&job_args(&job)).unwrap();
        assert_eq!(job.digest(), rebuilt.digest());
        // Observing a run does not change what it computes: the handshake-stable
        // digest ignores the observability knobs (mirroring the chaos flags).
        let dark = job_from_flags(&[]).unwrap();
        assert_ne!(job.digest(), dark.digest());
        assert_eq!(job.stable_digest(), dark.stable_digest());
        assert!(job_from_flags(&strings(&["--metrics-addr", "no-port"])).is_err());
    }

    #[test]
    fn migration_flags_round_trip_but_stay_out_of_the_stable_digest() {
        use dssp_core::driver::MigrationCommand;
        let args = strings(&[
            "--shards",
            "4",
            "--servers",
            "3",
            "--migrate",
            "drain:2:64",
            "--migrate-threshold",
            "2",
        ]);
        let job = job_from_flags(&args).unwrap();
        let spec = job.migration.expect("migration spec parsed");
        assert_eq!(spec.command, MigrationCommand::Drain(2));
        assert_eq!(spec.at_version, 64);
        assert_eq!(job.migrate_threshold, Some(2));
        let rebuilt = job_from_flags(&job_args(&job)).unwrap();
        assert_eq!(job.digest(), rebuilt.digest());
        // Migrations move shard ownership, never shard boundaries or arithmetic, so
        // the handshake-stable digest masks the triggers (like the chaos flags): a
        // worker launched without them still joins the migrating group.
        let fixed = job_from_flags(&strings(&["--shards", "4", "--servers", "3"])).unwrap();
        assert_ne!(job.digest(), fixed.digest());
        assert_eq!(job.stable_digest(), fixed.stable_digest());
        // Rebalance specs round-trip too, and malformed ones are rejected.
        let reb = job_from_flags(&strings(&["--migrate", "rebalance:10"])).unwrap();
        assert_eq!(reb.migration.unwrap().command, MigrationCommand::Rebalance);
        assert!(job_from_flags(&strings(&["--migrate", "drain:x:1"])).is_err());
        assert!(job_from_flags(&strings(&["--migrate", "shuffle:1"])).is_err());
    }

    #[test]
    fn malformed_chaos_flags_are_rejected() {
        assert!(job_from_flags(&strings(&["--fault", "worker0:nap:restart:1"])).is_err());
        assert!(job_from_flags(&strings(&["--fault", "coord:push:restart:0"])).is_err());
        assert!(job_from_flags(&strings(&["--restore"])).is_err());
    }
}
