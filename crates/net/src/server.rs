//! The networked parameter server: a single-threaded, lock-free command loop over a
//! [`ServerTransport`], driving the shared [`dssp_core::driver::ServerLoop`].
//!
//! Connection reader threads (or loopback channels) feed one message stream; this loop
//! is the only code that touches the [`dssp_ps::ParameterServer`], so the decision
//! logic needs no mutex. Replies flow back through the transport: an `OK` becomes a
//! `PushReply`, after which the worker fetches fresh weights with an explicit
//! pull/reply exchange (two round trips per iteration, like the parameter-server
//! systems in the paper's lineage). A pull is answered straight from a borrowed
//! [`PullView`] of the store — incrementally when the worker sent its cached per-shard
//! versions (`PullDelta`), fully otherwise — and the steady-state loop allocates
//! nothing per message: pushes are applied through
//! [`ServerLoop::handle_push_slice`] with reusable reply scratch, and consumed bulk
//! buffers are recycled back to the transport's per-connection pools.
//! (Deterministic mode queues owned events in the gate and keeps the simpler
//! allocating path; it exists for equivalence testing, not throughput.)

use crate::elastic::{CheckpointSink, FaultClock};
use crate::obs::Obs;
use crate::transport::{PullView, ServerTransport};
use crate::wire::{Message, PROTOCOL_VERSION, SHUTDOWN_OK, SHUTDOWN_SERVER_ERROR};
use crate::NetError;
use dssp_core::driver::{
    DeterministicGate, FaultRole, JobConfig, OkReply, ServerLoop, WorkerEvent,
};
use dssp_core::events::Role;
use dssp_sim::RunTrace;
use std::time::Instant;

/// Runs a full training job as the server side of the given transport and returns the
/// run trace.
///
/// The server handshakes every worker (protocol version, worker count and
/// [`JobConfig::stable_digest`] must all match — the digest covers `delta_pulls`, so
/// a delta-pulling worker cannot join a full-pull job, but masks the chaos knobs, so
/// a restarted process with a different fault plan still interoperates), serves
/// pulls, applies pushes through the shared decision loop, and — on every exit path,
/// success or failure — broadcasts `Shutdown` so worker processes never hang.
///
/// With a [`dssp_core::driver::CheckpointSpec`] the server persists its full state
/// (weights, momentum, clocks, credits) on the configured push cadence and can
/// restart from the resulting file; a worker that dies mid-run is evicted instead of
/// stalling the gate ([`NetError::ClientLost`] reaping).
///
/// # Panics
///
/// Panics if the configuration is inconsistent ([`JobConfig::validate`]).
pub fn serve(job: &JobConfig, transport: &mut dyn ServerTransport) -> Result<RunTrace, NetError> {
    job.validate();
    if transport.num_workers() != job.num_workers {
        return Err(NetError::Protocol(format!(
            "transport serves {} workers but the job has {}",
            transport.num_workers(),
            job.num_workers
        )));
    }
    match serve_inner(job, transport) {
        Ok(trace) => {
            transport.broadcast(&Message::Shutdown {
                reason: SHUTDOWN_OK,
            });
            Ok(trace)
        }
        Err(e) => {
            // An injected fault simulates a crash: die without the protocol goodbye
            // so peers observe the same abrupt connection loss a real kill produces.
            if !matches!(e, NetError::FaultInjected { .. }) {
                transport.broadcast(&Message::Shutdown {
                    reason: SHUTDOWN_SERVER_ERROR,
                });
            }
            Err(e)
        }
    }
}

/// Per-rank stash of the `known_versions` a gated (deterministic-mode) `PullDelta`
/// carried, consulted when the gate later releases that worker's pull event.
struct PullState {
    known: Vec<Vec<u64>>,
    set: Vec<bool>,
}

impl PullState {
    fn new(num_workers: usize) -> Self {
        Self {
            known: (0..num_workers).map(|_| Vec::new()).collect(),
            set: vec![false; num_workers],
        }
    }

    fn stash(&mut self, rank: usize, known: &[u64]) {
        self.known[rank].clear();
        self.known[rank].extend_from_slice(known);
        self.set[rank] = true;
    }

    fn take(&mut self, rank: usize) -> Option<&[u64]> {
        if self.set[rank] {
            self.set[rank] = false;
            Some(&self.known[rank])
        } else {
            None
        }
    }
}

/// The elasticity hooks every push runs through: the structured fault clock, the
/// durable checkpoint cadence, and the digest checkpoints are stamped with.
struct Elastic {
    fault: FaultClock,
    sink: CheckpointSink,
    digest: u64,
}

impl Elastic {
    /// Runs the post-push hooks: the push-phase fault, the gate-phase fault when the
    /// pusher was deferred, the cadence write (recorded in the observability bundle
    /// when a file lands), and the checkpoint-phase fault.
    fn after_push(
        &mut self,
        sl: &ServerLoop,
        pusher_granted: bool,
        obs: &Obs,
    ) -> Result<(), NetError> {
        self.fault.push()?;
        if !pusher_granted {
            self.fault.gate_blocked()?;
        }
        let digest = self.digest;
        if self
            .sink
            .maybe_write(sl.version(), || sl.snapshot(digest))?
        {
            obs.on_checkpoint(sl.version());
            self.fault.checkpoint()?;
        }
        Ok(())
    }
}

fn serve_inner(job: &JobConfig, transport: &mut dyn ServerTransport) -> Result<RunTrace, NetError> {
    let expected_digest = job.stable_digest();
    // Start fresh, or pick the run back up from the durable checkpoint: weights,
    // optimizer momentum, per-worker clocks and the policy's credit state all resume,
    // and every worker re-handshakes and is re-admitted at its restored push count.
    let restoring = job.checkpoint.as_ref().is_some_and(|c| c.restore);
    let mut sl = if restoring {
        let spec = job.checkpoint.as_ref().expect("restoring implies a spec");
        let path = spec.dir.join(dssp_ps::server_checkpoint_name());
        let ckpt = dssp_ps::Checkpoint::load_for_job(&path, expected_digest)?;
        if ckpt.has_retired_workers() {
            return Err(NetError::Protocol(format!(
                "cannot restore from {}: the checkpoint records retired workers \
                 (a finished run or a post-eviction snapshot is not resumable)",
                path.display()
            )));
        }
        ServerLoop::restore(job, &ckpt, false)
    } else {
        ServerLoop::new(job)
    };
    let targets = sl.targets().to_vec();
    let mut gate = job.deterministic.then(|| {
        if restoring {
            DeterministicGate::resume(targets, &sl.push_counts(), true)
        } else {
            DeterministicGate::new(targets, true)
        }
    });
    let mut pulls = PullState::new(job.num_workers);
    // Per-rank causal trace table: a worker has at most one operation in flight, so
    // its most recent trace id is the one its gate-block/release events belong to.
    // NO_TRACE for ranks that have not sent a traced operation yet.
    let mut last_trace = vec![dssp_core::events::NO_TRACE; job.num_workers];
    let mut helloed = vec![false; job.num_workers];
    let mut replies: Vec<OkReply> = Vec::new();
    let mut elastic = Elastic {
        // The classic single server plays the group's "server 0" in a fault plan.
        fault: FaultClock::new(job, FaultRole::ShardServer(0)),
        sink: CheckpointSink::new(job.checkpoint.as_ref(), &dssp_ps::server_checkpoint_name()),
        digest: expected_digest,
    };
    let obs = Obs::new(
        Role::Server,
        0,
        job.event_log.as_deref(),
        job.metrics_addr.as_deref(),
    )?;
    obs.sync_loop(&sl);
    let start = Instant::now();

    while !sl.all_done() {
        obs.mirror_transport(&transport.transport_stats());
        // Deterministic mode: drain everything the gate is ready to release before
        // blocking on the transport again.
        loop {
            let ready = gate.as_mut().and_then(|g| g.next());
            match ready {
                Some(event) => {
                    process_event(
                        &mut sl,
                        transport,
                        &mut gate,
                        &mut pulls,
                        event,
                        &start,
                        &mut elastic,
                        &obs,
                        &last_trace,
                    )?;
                    if sl.all_done() {
                        break;
                    }
                }
                None => break,
            }
        }
        if sl.all_done() {
            break;
        }

        let (rank, msg) = match transport.recv() {
            Ok(pair) => pair,
            // A worker died mid-run: reap it instead of stalling the gate — reclaim
            // its credits, retire its clock, and release anyone it was blocking.
            Err(NetError::ClientLost { rank }) => {
                evict_client(&mut sl, transport, &mut gate, rank, &start, &obs)?;
                continue;
            }
            Err(e) => return Err(e),
        };
        match msg {
            Message::Hello {
                version,
                rank: hello_rank,
                num_workers,
                config_digest,
            } => {
                validate_hello(
                    rank,
                    version,
                    hello_rank,
                    num_workers,
                    config_digest,
                    job.num_workers,
                    expected_digest,
                    &mut helloed,
                )?;
                obs.on_join(rank);
            }
            Message::JoinRequest => {
                require_helloed(&helloed, rank)?;
                // Membership: admit the worker at the number of pushes this server
                // has already confirmed from its rank — zero on a fresh run, the
                // restored clock after a checkpoint restore.
                let ack = Message::JoinAck {
                    clock: sl.push_count(rank),
                    epoch: 0,
                    assignment: Vec::new(),
                };
                if transport.send(rank, &ack).is_err() {
                    evict_client(&mut sl, transport, &mut gate, rank, &start, &obs)?;
                }
            }
            Message::Evict { rank: victim } => {
                require_helloed(&helloed, rank)?;
                let victim = victim as usize;
                if victim >= job.num_workers {
                    return Err(NetError::Protocol(format!(
                        "eviction of rank {victim}, job has {} workers",
                        job.num_workers
                    )));
                }
                evict_client(&mut sl, transport, &mut gate, victim, &start, &obs)?;
            }
            Message::Pull { trace } => {
                require_helloed(&helloed, rank)?;
                last_trace[rank] = trace;
                match gate.as_mut() {
                    Some(g) => g.offer(WorkerEvent::Pull { worker: rank }),
                    None => {
                        match serve_pull(&sl, transport, rank, None) {
                            Ok(delta) => obs.on_pull(rank, delta, trace),
                            Err(_) => {
                                evict_client(&mut sl, transport, &mut gate, rank, &start, &obs)?
                            }
                        }
                        elastic.fault.pull()?;
                    }
                }
            }
            Message::PullDelta {
                trace,
                known_versions,
            } => {
                require_helloed(&helloed, rank)?;
                last_trace[rank] = trace;
                match gate.as_mut() {
                    Some(g) => {
                        // The gate orders this like any pull; remember the versions it
                        // carried until the gate releases it.
                        pulls.stash(rank, &known_versions);
                        g.offer(WorkerEvent::Pull { worker: rank });
                    }
                    None => {
                        match serve_pull(&sl, transport, rank, Some(&known_versions)) {
                            Ok(delta) => obs.on_pull(rank, delta, trace),
                            Err(_) => {
                                evict_client(&mut sl, transport, &mut gate, rank, &start, &obs)?
                            }
                        }
                        elastic.fault.pull()?;
                    }
                }
                transport.recycle_u64s(rank, known_versions);
            }
            Message::Push {
                iteration,
                trace,
                grads,
            } => {
                require_helloed(&helloed, rank)?;
                last_trace[rank] = trace;
                match gate.as_mut() {
                    Some(g) => g.offer(WorkerEvent::Push {
                        worker: rank,
                        iteration,
                        grads,
                    }),
                    None => {
                        // The allocation-free hot path: borrowed gradients, reusable
                        // reply scratch, buffer recycled to the connection pool.
                        let now = start.elapsed().as_secs_f64();
                        replies.clear();
                        let decision = sl.handle_push_slice(rank, &grads, now, &mut replies);
                        transport.recycle_f32s(rank, grads);
                        let granted = replies.iter().any(|r| r.worker == rank);
                        obs.on_push(rank, Some(decision.staleness), &replies, &sl, &last_trace);
                        deliver_replies(&mut sl, transport, &mut gate, &replies, &start, &obs)?;
                        check_abort(&sl)?;
                        elastic.after_push(&sl, granted, &obs)?;
                    }
                }
            }
            Message::Done {
                iterations,
                epochs,
                waiting_time_s,
            } => {
                require_helloed(&helloed, rank)?;
                let event = WorkerEvent::Done {
                    worker: rank,
                    iterations,
                    epochs: epochs as usize,
                    waiting_time_s,
                };
                match gate.as_mut() {
                    Some(g) => g.offer(event),
                    None => process_event(
                        &mut sl,
                        transport,
                        &mut gate,
                        &mut pulls,
                        event,
                        &start,
                        &mut elastic,
                        &obs,
                        &last_trace,
                    )?,
                }
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "unexpected {other:?} from worker {rank}"
                )))
            }
        }
    }

    // The run's terminal state is always durable, regardless of cadence alignment.
    elastic.sink.finalize(|| sl.snapshot(expected_digest))?;
    if job.checkpoint.is_some() {
        obs.on_checkpoint(sl.version());
    }
    obs.sync_loop(&sl);
    obs.mirror_transport(&transport.transport_stats());
    obs.flush()?;
    Ok(sl.finish(start.elapsed().as_secs_f64()))
}

/// Reaps one dead (or explicitly evicted) worker: reclaims its policy credits,
/// retires its clock, forgets its queued deterministic-gate events, and delivers the
/// `OK`s its departure releases to the survivors.
fn evict_client(
    sl: &mut ServerLoop,
    transport: &mut dyn ServerTransport,
    gate: &mut Option<DeterministicGate>,
    worker: usize,
    start: &Instant,
    obs: &Obs,
) -> Result<(), NetError> {
    let released = sl.evict_worker(worker, start.elapsed().as_secs_f64());
    obs.on_eviction(worker);
    if let Some(g) = gate.as_mut() {
        g.forget_worker(worker);
        for reply in &released {
            g.on_released(reply.worker);
        }
    }
    for reply in &released {
        obs.event(
            dssp_core::events::EventKind::GateRelease,
            reply.worker as u64,
        );
    }
    obs.sync_loop(sl);
    deliver_replies(sl, transport, gate, &released, start, obs)
}

/// Rejects traffic from a client that has not completed its handshake yet. Shared by
/// the single-server loop, the group coordinator and the shard servers.
pub fn require_helloed(helloed: &[bool], rank: usize) -> Result<(), NetError> {
    if helloed[rank] {
        Ok(())
    } else {
        Err(NetError::Protocol(format!(
            "client {rank} sent traffic before its hello"
        )))
    }
}

/// Validates the fields common to every handshake — protocol version, announced rank
/// vs. connection attribution, worker count and config digest — and records the
/// client in `helloed` (rejecting duplicates). The serving loops layer their own
/// topology checks (a shard server's `servers`/`server_index`) on top.
pub fn validate_hello(
    rank: usize,
    version: u16,
    hello_rank: u32,
    num_workers: u32,
    config_digest: u64,
    expected_workers: usize,
    expected_digest: u64,
    helloed: &mut [bool],
) -> Result<(), NetError> {
    if version != PROTOCOL_VERSION {
        return Err(NetError::Protocol(format!(
            "client {rank} speaks protocol v{version}, this end speaks v{PROTOCOL_VERSION}"
        )));
    }
    if hello_rank as usize != rank {
        return Err(NetError::Protocol(format!(
            "connection attributed to rank {rank} announced rank {hello_rank}"
        )));
    }
    if num_workers as usize != expected_workers {
        return Err(NetError::Protocol(format!(
            "client {rank} expects {num_workers} workers, job has {expected_workers}"
        )));
    }
    if config_digest != expected_digest {
        return Err(NetError::Protocol(format!(
            "client {rank} trains a different job (config digest {config_digest:#018x} != {expected_digest:#018x})"
        )));
    }
    if helloed[rank] {
        return Err(NetError::Protocol(format!(
            "duplicate hello from rank {rank}"
        )));
    }
    helloed[rank] = true;
    Ok(())
}

/// Answers one pull from a borrowed view of the server's store (full when `known` is
/// `None` or incompatible, delta otherwise). Pulls are pure reads served at the
/// transport level; they never enter the decision loop (and must not advance its
/// logical clock). Returns whether the reply shipped as a delta (the exported
/// delta-hit-rate signal).
fn serve_pull(
    sl: &ServerLoop,
    transport: &mut dyn ServerTransport,
    rank: usize,
    known: Option<&[u64]>,
) -> Result<bool, NetError> {
    let store = sl.server().store();
    let view = PullView {
        clock: sl.version(),
        versions: store.versions(),
        offsets: store.offsets(),
        weights: store.as_flat(),
        known,
    };
    let delta = view.delta_applicable();
    transport.send_pull_reply(rank, &view)?;
    Ok(delta)
}

/// Delivers one `PushReply` per released `OK`. A failed send means the recipient
/// died between its push and this reply — it is reaped like any other
/// [`NetError::ClientLost`] instead of the broken socket crashing the whole run,
/// and delivery continues with whatever its departure releases (each failure
/// retires one more worker, so the mutual recursion with [`evict_client`] is
/// bounded by the fleet size).
fn deliver_replies(
    sl: &mut ServerLoop,
    transport: &mut dyn ServerTransport,
    gate: &mut Option<DeterministicGate>,
    replies: &[OkReply],
    start: &Instant,
    obs: &Obs,
) -> Result<(), NetError> {
    for reply in replies {
        let msg = Message::PushReply {
            granted_extra: reply.granted_extra,
            version: sl.version(),
        };
        if transport.send(reply.worker, &msg).is_err() {
            evict_client(sl, transport, gate, reply.worker, start, obs)?;
        }
    }
    Ok(())
}

fn check_abort(sl: &ServerLoop) -> Result<(), NetError> {
    if sl.aborted() {
        Err(NetError::Aborted {
            pushes: sl.version(),
        })
    } else {
        Ok(())
    }
}

/// Applies one gate-released event to the decision loop and delivers the resulting
/// protocol messages (deterministic mode, and the direct `Done` path), then runs the
/// elasticity hooks for the phase the event concluded.
#[allow(clippy::too_many_arguments)]
fn process_event(
    sl: &mut ServerLoop,
    transport: &mut dyn ServerTransport,
    gate: &mut Option<DeterministicGate>,
    pulls: &mut PullState,
    event: WorkerEvent,
    start: &Instant,
    elastic: &mut Elastic,
    obs: &Obs,
    last_trace: &[u64],
) -> Result<(), NetError> {
    if let WorkerEvent::Pull { worker } = event {
        let known = pulls.take(worker);
        let trace = last_trace
            .get(worker)
            .copied()
            .unwrap_or(dssp_core::events::NO_TRACE);
        // Split the borrow: `known` borrows `pulls`, which `serve_pull` does not touch.
        match serve_pull(sl, transport, worker, known) {
            Ok(delta) => obs.on_pull(worker, delta, trace),
            // The puller died awaiting its reply: reap it instead of crashing the run.
            Err(_) => evict_client(sl, transport, gate, worker, start, obs)?,
        }
        return elastic.fault.pull();
    }
    let pusher = match &event {
        WorkerEvent::Push { worker, .. } => Some(*worker),
        _ => None,
    };
    let now = start.elapsed().as_secs_f64();
    let replies = sl.handle_gated(gate, event, now);
    if let Some(pusher) = pusher {
        // The deterministic replay path has no per-push staleness sample (the
        // decision is consumed inside `handle_gated`); events and counters still flow.
        obs.on_push(pusher, None, &replies, sl, last_trace);
    }
    deliver_replies(sl, transport, gate, &replies, start, obs)?;
    check_abort(sl)?;
    if let Some(pusher) = pusher {
        let granted = replies.iter().any(|r| r.worker == pusher);
        elastic.after_push(sl, granted, obs)?;
    }
    Ok(())
}
