//! The networked parameter server: a single-threaded, lock-free command loop over a
//! [`ServerTransport`], driving the shared [`dssp_core::driver::ServerLoop`].
//!
//! Connection reader threads (or loopback channels) feed one message stream; this loop
//! is the only code that touches the [`dssp_ps::ParameterServer`], so the decision
//! logic needs no mutex. Replies flow back through the transport: an `OK` becomes a
//! `PushReply`, after which the worker fetches fresh weights with an explicit
//! `Pull`/`PullReply` exchange (two round trips per iteration, like the parameter-server
//! systems in the paper's lineage).

use crate::transport::ServerTransport;
use crate::wire::{Message, PROTOCOL_VERSION, SHUTDOWN_OK, SHUTDOWN_SERVER_ERROR};
use crate::NetError;
use dssp_core::driver::{DeterministicGate, JobConfig, ServerLoop, WorkerEvent};
use dssp_sim::RunTrace;
use std::time::Instant;

/// Runs a full training job as the server side of the given transport and returns the
/// run trace.
///
/// The server handshakes every worker (protocol version, worker count and
/// [`JobConfig::digest`] must all match), serves pulls, applies pushes through the
/// shared decision loop, and — on every exit path, success or failure — broadcasts
/// `Shutdown` so worker processes never hang.
///
/// # Panics
///
/// Panics if the configuration is inconsistent ([`JobConfig::validate`]).
pub fn serve(job: &JobConfig, transport: &mut dyn ServerTransport) -> Result<RunTrace, NetError> {
    job.validate();
    if transport.num_workers() != job.num_workers {
        return Err(NetError::Protocol(format!(
            "transport serves {} workers but the job has {}",
            transport.num_workers(),
            job.num_workers
        )));
    }
    match serve_inner(job, transport) {
        Ok(trace) => {
            transport.broadcast(&Message::Shutdown {
                reason: SHUTDOWN_OK,
            });
            Ok(trace)
        }
        Err(e) => {
            transport.broadcast(&Message::Shutdown {
                reason: SHUTDOWN_SERVER_ERROR,
            });
            Err(e)
        }
    }
}

fn serve_inner(job: &JobConfig, transport: &mut dyn ServerTransport) -> Result<RunTrace, NetError> {
    let mut sl = ServerLoop::new(job);
    let targets = sl.targets().to_vec();
    let mut gate = job
        .deterministic
        .then(|| DeterministicGate::new(targets, true));
    let mut helloed = vec![false; job.num_workers];
    let expected_digest = job.digest();
    let start = Instant::now();

    while !sl.all_done() {
        // Deterministic mode: drain everything the gate is ready to release before
        // blocking on the transport again.
        loop {
            let ready = gate.as_mut().and_then(|g| g.next());
            match ready {
                Some(event) => {
                    process_event(&mut sl, transport, &mut gate, event, &start)?;
                    if sl.all_done() {
                        break;
                    }
                }
                None => break,
            }
        }
        if sl.all_done() {
            break;
        }

        let (rank, msg) = transport.recv()?;
        match msg {
            Message::Hello {
                version,
                rank: hello_rank,
                num_workers,
                config_digest,
            } => {
                if version != PROTOCOL_VERSION {
                    return Err(NetError::Protocol(format!(
                        "worker {rank} speaks protocol v{version}, server speaks v{PROTOCOL_VERSION}"
                    )));
                }
                if hello_rank as usize != rank {
                    return Err(NetError::Protocol(format!(
                        "connection attributed to rank {rank} announced rank {hello_rank}"
                    )));
                }
                if num_workers as usize != job.num_workers {
                    return Err(NetError::Protocol(format!(
                        "worker {rank} expects {num_workers} workers, job has {}",
                        job.num_workers
                    )));
                }
                if config_digest != expected_digest {
                    return Err(NetError::Protocol(format!(
                        "worker {rank} trains a different job (config digest {config_digest:#018x} != {expected_digest:#018x})"
                    )));
                }
                if helloed[rank] {
                    return Err(NetError::Protocol(format!(
                        "duplicate Hello from rank {rank}"
                    )));
                }
                helloed[rank] = true;
            }
            Message::Pull => {
                require_helloed(&helloed, rank)?;
                let event = WorkerEvent::Pull { worker: rank };
                match gate.as_mut() {
                    Some(g) => g.offer(event),
                    None => process_event(&mut sl, transport, &mut gate, event, &start)?,
                }
            }
            Message::Push { iteration, grads } => {
                require_helloed(&helloed, rank)?;
                let event = WorkerEvent::Push {
                    worker: rank,
                    iteration,
                    grads,
                };
                match gate.as_mut() {
                    Some(g) => g.offer(event),
                    None => process_event(&mut sl, transport, &mut gate, event, &start)?,
                }
            }
            Message::Done {
                iterations,
                epochs,
                waiting_time_s,
            } => {
                require_helloed(&helloed, rank)?;
                let event = WorkerEvent::Done {
                    worker: rank,
                    iterations,
                    epochs: epochs as usize,
                    waiting_time_s,
                };
                match gate.as_mut() {
                    Some(g) => g.offer(event),
                    None => process_event(&mut sl, transport, &mut gate, event, &start)?,
                }
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "unexpected {other:?} from worker {rank}"
                )))
            }
        }
    }

    Ok(sl.finish(start.elapsed().as_secs_f64()))
}

fn require_helloed(helloed: &[bool], rank: usize) -> Result<(), NetError> {
    if helloed[rank] {
        Ok(())
    } else {
        Err(NetError::Protocol(format!(
            "worker {rank} sent traffic before Hello"
        )))
    }
}

/// Applies one gated-or-direct event to the decision loop and delivers the resulting
/// protocol messages.
fn process_event(
    sl: &mut ServerLoop,
    transport: &mut dyn ServerTransport,
    gate: &mut Option<DeterministicGate>,
    event: WorkerEvent,
    start: &Instant,
) -> Result<(), NetError> {
    if let WorkerEvent::Pull { worker } = event {
        // Pulls are pure reads served at the transport level; they never enter the
        // decision loop (and must not advance its logical clock).
        return transport.send(
            worker,
            &Message::PullReply {
                clock: sl.version(),
                shard_versions: sl.server().shard_versions().to_vec(),
                weights: sl.pull(),
            },
        );
    }
    let now = start.elapsed().as_secs_f64();
    let replies = sl.handle_gated(gate, event, now);
    for reply in &replies {
        transport.send(
            reply.worker,
            &Message::PushReply {
                granted_extra: reply.granted_extra,
                version: sl.version(),
            },
        )?;
    }
    if sl.aborted() {
        return Err(NetError::Aborted {
            pushes: sl.version(),
        });
    }
    Ok(())
}
