//! The networked parameter server: a single-threaded, lock-free command loop over a
//! [`ServerTransport`], driving the shared [`dssp_core::driver::ServerLoop`].
//!
//! Connection reader threads (or loopback channels) feed one message stream; this loop
//! is the only code that touches the [`dssp_ps::ParameterServer`], so the decision
//! logic needs no mutex. Replies flow back through the transport: an `OK` becomes a
//! `PushReply`, after which the worker fetches fresh weights with an explicit
//! pull/reply exchange (two round trips per iteration, like the parameter-server
//! systems in the paper's lineage). A pull is answered straight from a borrowed
//! [`PullView`] of the store — incrementally when the worker sent its cached per-shard
//! versions (`PullDelta`), fully otherwise — and the steady-state loop allocates
//! nothing per message: pushes are applied through
//! [`ServerLoop::handle_push_slice`] with reusable reply scratch, and consumed bulk
//! buffers are recycled back to the transport's per-connection pools.
//! (Deterministic mode queues owned events in the gate and keeps the simpler
//! allocating path; it exists for equivalence testing, not throughput.)

use crate::transport::{PullView, ServerTransport};
use crate::wire::{Message, PROTOCOL_VERSION, SHUTDOWN_OK, SHUTDOWN_SERVER_ERROR};
use crate::NetError;
use dssp_core::driver::{DeterministicGate, JobConfig, OkReply, ServerLoop, WorkerEvent};
use dssp_sim::RunTrace;
use std::time::Instant;

/// Runs a full training job as the server side of the given transport and returns the
/// run trace.
///
/// The server handshakes every worker (protocol version, worker count and
/// [`JobConfig::digest`] must all match — the digest covers `delta_pulls`, so a
/// delta-pulling worker cannot join a full-pull job), serves pulls, applies pushes
/// through the shared decision loop, and — on every exit path, success or failure —
/// broadcasts `Shutdown` so worker processes never hang.
///
/// # Panics
///
/// Panics if the configuration is inconsistent ([`JobConfig::validate`]).
pub fn serve(job: &JobConfig, transport: &mut dyn ServerTransport) -> Result<RunTrace, NetError> {
    job.validate();
    if transport.num_workers() != job.num_workers {
        return Err(NetError::Protocol(format!(
            "transport serves {} workers but the job has {}",
            transport.num_workers(),
            job.num_workers
        )));
    }
    match serve_inner(job, transport) {
        Ok(trace) => {
            transport.broadcast(&Message::Shutdown {
                reason: SHUTDOWN_OK,
            });
            Ok(trace)
        }
        Err(e) => {
            transport.broadcast(&Message::Shutdown {
                reason: SHUTDOWN_SERVER_ERROR,
            });
            Err(e)
        }
    }
}

/// Per-rank stash of the `known_versions` a gated (deterministic-mode) `PullDelta`
/// carried, consulted when the gate later releases that worker's pull event.
struct PullState {
    known: Vec<Vec<u64>>,
    set: Vec<bool>,
}

impl PullState {
    fn new(num_workers: usize) -> Self {
        Self {
            known: (0..num_workers).map(|_| Vec::new()).collect(),
            set: vec![false; num_workers],
        }
    }

    fn stash(&mut self, rank: usize, known: &[u64]) {
        self.known[rank].clear();
        self.known[rank].extend_from_slice(known);
        self.set[rank] = true;
    }

    fn take(&mut self, rank: usize) -> Option<&[u64]> {
        if self.set[rank] {
            self.set[rank] = false;
            Some(&self.known[rank])
        } else {
            None
        }
    }
}

fn serve_inner(job: &JobConfig, transport: &mut dyn ServerTransport) -> Result<RunTrace, NetError> {
    let mut sl = ServerLoop::new(job);
    let targets = sl.targets().to_vec();
    let mut gate = job
        .deterministic
        .then(|| DeterministicGate::new(targets, true));
    let mut pulls = PullState::new(job.num_workers);
    let mut helloed = vec![false; job.num_workers];
    let mut replies: Vec<OkReply> = Vec::new();
    let expected_digest = job.digest();
    let start = Instant::now();

    while !sl.all_done() {
        // Deterministic mode: drain everything the gate is ready to release before
        // blocking on the transport again.
        loop {
            let ready = gate.as_mut().and_then(|g| g.next());
            match ready {
                Some(event) => {
                    process_event(&mut sl, transport, &mut gate, &mut pulls, event, &start)?;
                    if sl.all_done() {
                        break;
                    }
                }
                None => break,
            }
        }
        if sl.all_done() {
            break;
        }

        let (rank, msg) = transport.recv()?;
        match msg {
            Message::Hello {
                version,
                rank: hello_rank,
                num_workers,
                config_digest,
            } => validate_hello(
                rank,
                version,
                hello_rank,
                num_workers,
                config_digest,
                job.num_workers,
                expected_digest,
                &mut helloed,
            )?,
            Message::Pull => {
                require_helloed(&helloed, rank)?;
                match gate.as_mut() {
                    Some(g) => g.offer(WorkerEvent::Pull { worker: rank }),
                    None => serve_pull(&sl, transport, rank, None)?,
                }
            }
            Message::PullDelta { known_versions } => {
                require_helloed(&helloed, rank)?;
                match gate.as_mut() {
                    Some(g) => {
                        // The gate orders this like any pull; remember the versions it
                        // carried until the gate releases it.
                        pulls.stash(rank, &known_versions);
                        g.offer(WorkerEvent::Pull { worker: rank });
                    }
                    None => serve_pull(&sl, transport, rank, Some(&known_versions))?,
                }
                transport.recycle_u64s(rank, known_versions);
            }
            Message::Push { iteration, grads } => {
                require_helloed(&helloed, rank)?;
                match gate.as_mut() {
                    Some(g) => g.offer(WorkerEvent::Push {
                        worker: rank,
                        iteration,
                        grads,
                    }),
                    None => {
                        // The allocation-free hot path: borrowed gradients, reusable
                        // reply scratch, buffer recycled to the connection pool.
                        let now = start.elapsed().as_secs_f64();
                        replies.clear();
                        sl.handle_push_slice(rank, &grads, now, &mut replies);
                        transport.recycle_f32s(rank, grads);
                        send_replies(&sl, transport, &replies)?;
                        check_abort(&sl)?;
                    }
                }
            }
            Message::Done {
                iterations,
                epochs,
                waiting_time_s,
            } => {
                require_helloed(&helloed, rank)?;
                let event = WorkerEvent::Done {
                    worker: rank,
                    iterations,
                    epochs: epochs as usize,
                    waiting_time_s,
                };
                match gate.as_mut() {
                    Some(g) => g.offer(event),
                    None => {
                        process_event(&mut sl, transport, &mut gate, &mut pulls, event, &start)?
                    }
                }
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "unexpected {other:?} from worker {rank}"
                )))
            }
        }
    }

    Ok(sl.finish(start.elapsed().as_secs_f64()))
}

/// Rejects traffic from a client that has not completed its handshake yet. Shared by
/// the single-server loop, the group coordinator and the shard servers.
pub fn require_helloed(helloed: &[bool], rank: usize) -> Result<(), NetError> {
    if helloed[rank] {
        Ok(())
    } else {
        Err(NetError::Protocol(format!(
            "client {rank} sent traffic before its hello"
        )))
    }
}

/// Validates the fields common to every handshake — protocol version, announced rank
/// vs. connection attribution, worker count and config digest — and records the
/// client in `helloed` (rejecting duplicates). The serving loops layer their own
/// topology checks (a shard server's `servers`/`server_index`) on top.
pub fn validate_hello(
    rank: usize,
    version: u16,
    hello_rank: u32,
    num_workers: u32,
    config_digest: u64,
    expected_workers: usize,
    expected_digest: u64,
    helloed: &mut [bool],
) -> Result<(), NetError> {
    if version != PROTOCOL_VERSION {
        return Err(NetError::Protocol(format!(
            "client {rank} speaks protocol v{version}, this end speaks v{PROTOCOL_VERSION}"
        )));
    }
    if hello_rank as usize != rank {
        return Err(NetError::Protocol(format!(
            "connection attributed to rank {rank} announced rank {hello_rank}"
        )));
    }
    if num_workers as usize != expected_workers {
        return Err(NetError::Protocol(format!(
            "client {rank} expects {num_workers} workers, job has {expected_workers}"
        )));
    }
    if config_digest != expected_digest {
        return Err(NetError::Protocol(format!(
            "client {rank} trains a different job (config digest {config_digest:#018x} != {expected_digest:#018x})"
        )));
    }
    if helloed[rank] {
        return Err(NetError::Protocol(format!(
            "duplicate hello from rank {rank}"
        )));
    }
    helloed[rank] = true;
    Ok(())
}

/// Answers one pull from a borrowed view of the server's store (full when `known` is
/// `None` or incompatible, delta otherwise). Pulls are pure reads served at the
/// transport level; they never enter the decision loop (and must not advance its
/// logical clock).
fn serve_pull(
    sl: &ServerLoop,
    transport: &mut dyn ServerTransport,
    rank: usize,
    known: Option<&[u64]>,
) -> Result<(), NetError> {
    let store = sl.server().store();
    transport.send_pull_reply(
        rank,
        &PullView {
            clock: sl.version(),
            versions: store.versions(),
            offsets: store.offsets(),
            weights: store.as_flat(),
            known,
        },
    )
}

fn send_replies(
    sl: &ServerLoop,
    transport: &mut dyn ServerTransport,
    replies: &[OkReply],
) -> Result<(), NetError> {
    for reply in replies {
        transport.send(
            reply.worker,
            &Message::PushReply {
                granted_extra: reply.granted_extra,
                version: sl.version(),
            },
        )?;
    }
    Ok(())
}

fn check_abort(sl: &ServerLoop) -> Result<(), NetError> {
    if sl.aborted() {
        Err(NetError::Aborted {
            pushes: sl.version(),
        })
    } else {
        Ok(())
    }
}

/// Applies one gate-released event to the decision loop and delivers the resulting
/// protocol messages (deterministic mode, and the direct `Done` path).
fn process_event(
    sl: &mut ServerLoop,
    transport: &mut dyn ServerTransport,
    gate: &mut Option<DeterministicGate>,
    pulls: &mut PullState,
    event: WorkerEvent,
    start: &Instant,
) -> Result<(), NetError> {
    if let WorkerEvent::Pull { worker } = event {
        let known = pulls.take(worker);
        // Split the borrow: `known` borrows `pulls`, which `serve_pull` does not touch.
        return serve_pull(sl, transport, worker, known);
    }
    let now = start.elapsed().as_secs_f64();
    let replies = sl.handle_gated(gate, event, now);
    send_replies(sl, transport, &replies)?;
    check_abort(sl)
}
