//! The TCP transport: real sockets over `std::net`, one blocking reader thread per
//! connection.
//!
//! Threading model: the server binds a listener; an acceptor thread accepts exactly
//! `num_workers` connections; each connection gets a reader thread that blocks on
//! [`crate::wire::read_frame`] and forwards decoded frames — attributed with the rank
//! announced in the connection's leading `Hello` — into one crossbeam channel. The
//! server's command loop is the only consumer of that channel and the only writer to
//! the sockets, so the parameter server itself stays single-threaded and lock-free.
//!
//! This is a cooperative-cluster transport, not a hardened public endpoint: a peer
//! that violates the protocol (bad magic, wrong version, non-`Hello` first frame)
//! aborts the run with an error rather than being quarantined.

use crate::transport::{ServerTransport, WorkerTransport};
use crate::wire::{read_frame, write_frame, Message};
use crate::NetError;
use crossbeam_channel::{unbounded, Receiver, Sender};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

enum Event {
    /// A connection completed its `Hello`; `stream` is the write half for its rank.
    Register(usize, TcpStream),
    /// A decoded frame from `rank` (or the error that ended its connection).
    Frame(usize, Result<Message, NetError>),
    /// A failure on a connection that never identified itself.
    Unattributed(NetError),
}

/// Server end of the TCP transport.
pub struct TcpServerTransport {
    local_addr: SocketAddr,
    num_workers: usize,
    events: Receiver<Event>,
    writers: Vec<Option<TcpStream>>,
    scratch: Vec<u8>,
}

impl TcpServerTransport {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts accepting
    /// exactly `num_workers` connections in the background.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` is zero.
    pub fn bind(addr: &str, num_workers: usize) -> Result<Self, NetError> {
        assert!(num_workers > 0, "need at least one worker");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (event_tx, events) = unbounded();
        thread::Builder::new()
            .name("dssp-net-acceptor".into())
            .spawn(move || accept_loop(listener, num_workers, event_tx))
            .expect("spawn acceptor thread");
        Ok(Self {
            local_addr,
            num_workers,
            events,
            writers: (0..num_workers).map(|_| None).collect(),
            scratch: Vec::new(),
        })
    }

    /// The bound address (useful with port 0 to learn the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

fn accept_loop(listener: TcpListener, num_workers: usize, event_tx: Sender<Event>) {
    for _ in 0..num_workers {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                let _ = event_tx.send(Event::Unattributed(e.into()));
                return;
            }
        };
        let tx = event_tx.clone();
        let _ = thread::Builder::new()
            .name("dssp-net-reader".into())
            .spawn(move || reader_loop(stream, num_workers, tx));
    }
}

fn reader_loop(stream: TcpStream, num_workers: usize, tx: Sender<Event>) {
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            let _ = tx.send(Event::Unattributed(e.into()));
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    // The first frame must be a Hello announcing the connection's rank.
    let hello = match read_frame(&mut reader) {
        Ok(msg @ Message::Hello { .. }) => msg,
        Ok(other) => {
            let _ = tx.send(Event::Unattributed(NetError::Protocol(format!(
                "first frame was {other:?}, expected Hello"
            ))));
            return;
        }
        Err(e) => {
            let _ = tx.send(Event::Unattributed(e));
            return;
        }
    };
    let rank = match hello {
        Message::Hello { rank, .. } if (rank as usize) < num_workers => rank as usize,
        Message::Hello { rank, .. } => {
            let _ = tx.send(Event::Unattributed(NetError::Protocol(format!(
                "rank {rank} out of range for {num_workers} workers"
            ))));
            return;
        }
        _ => unreachable!("matched Hello above"),
    };
    // Registration travels on the same channel before the Hello frame, so the command
    // loop always owns the write half by the time it sees the rank's first message.
    if tx.send(Event::Register(rank, write_half)).is_err() {
        return;
    }
    if tx.send(Event::Frame(rank, Ok(hello))).is_err() {
        return;
    }
    loop {
        match read_frame(&mut reader) {
            Ok(msg) => {
                if tx.send(Event::Frame(rank, Ok(msg))).is_err() {
                    return; // server gone
                }
            }
            Err(e) => {
                // EOF after shutdown is the normal end of a connection; the command
                // loop has stopped receiving by then, so a failed send is fine too.
                let _ = tx.send(Event::Frame(rank, Err(e)));
                return;
            }
        }
    }
}

impl ServerTransport for TcpServerTransport {
    fn num_workers(&self) -> usize {
        self.num_workers
    }

    fn recv(&mut self) -> Result<(usize, Message), NetError> {
        loop {
            match self.events.recv().map_err(|_| NetError::Disconnected)? {
                Event::Register(rank, stream) => {
                    let _ = stream.set_nodelay(true);
                    self.writers[rank] = Some(stream);
                }
                Event::Frame(rank, Ok(msg)) => return Ok((rank, msg)),
                Event::Frame(rank, Err(e)) => {
                    return Err(NetError::Protocol(format!(
                        "connection of worker {rank} failed: {e}"
                    )))
                }
                Event::Unattributed(e) => return Err(e),
            }
        }
    }

    fn send(&mut self, rank: usize, msg: &Message) -> Result<(), NetError> {
        let stream = self.writers[rank]
            .as_mut()
            .ok_or_else(|| NetError::Protocol(format!("worker {rank} never said Hello")))?;
        write_frame(stream, msg, &mut self.scratch)?;
        Ok(())
    }
}

/// Worker end of the TCP transport.
pub struct TcpWorkerTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    scratch: Vec<u8>,
}

impl TcpWorkerTransport {
    /// Connects to a server at `addr`, retrying for a few seconds so workers may be
    /// launched before (or concurrently with) the server process.
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        Self::connect_with_retry(addr, 50, Duration::from_millis(100))
    }

    /// Connects with an explicit retry schedule (`attempts` tries, `pause` apart).
    pub fn connect_with_retry(
        addr: &str,
        attempts: u32,
        pause: Duration,
    ) -> Result<Self, NetError> {
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                thread::sleep(pause);
            }
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok(Self {
                        reader,
                        writer: stream,
                        scratch: Vec::new(),
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.map(NetError::Io).unwrap_or(NetError::Disconnected))
    }
}

impl WorkerTransport for TcpWorkerTransport {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        write_frame(&mut self.writer, msg, &mut self.scratch)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Message, NetError> {
        read_frame(&mut self.reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::PROTOCOL_VERSION;

    #[test]
    fn tcp_frames_flow_both_ways() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().to_string();
        let client = thread::spawn(move || {
            let mut worker = TcpWorkerTransport::connect(&addr).unwrap();
            worker
                .send(&Message::Hello {
                    version: PROTOCOL_VERSION,
                    rank: 0,
                    num_workers: 1,
                    config_digest: 7,
                })
                .unwrap();
            worker
                .send(&Message::Push {
                    iteration: 1,
                    grads: vec![0.5, -1.25],
                })
                .unwrap();
            let reply = worker.recv().unwrap();
            assert!(matches!(reply, Message::PushReply { version: 1, .. }));
        });
        let (rank, hello) = server.recv().unwrap();
        assert_eq!(rank, 0);
        assert!(matches!(
            hello,
            Message::Hello {
                config_digest: 7,
                ..
            }
        ));
        let (_, push) = server.recv().unwrap();
        match push {
            Message::Push { iteration, grads } => {
                assert_eq!(iteration, 1);
                assert_eq!(grads, vec![0.5, -1.25]);
            }
            other => panic!("unexpected: {other:?}"),
        }
        server
            .send(
                0,
                &Message::PushReply {
                    granted_extra: 0,
                    version: 1,
                },
            )
            .unwrap();
        client.join().unwrap();
    }

    #[test]
    fn non_hello_first_frame_is_a_protocol_error() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().to_string();
        let client = thread::spawn(move || {
            let mut worker = TcpWorkerTransport::connect(&addr).unwrap();
            worker.send(&Message::Pull).unwrap();
        });
        assert!(matches!(server.recv(), Err(NetError::Protocol(_))));
        client.join().unwrap();
    }

    #[test]
    fn out_of_range_rank_is_rejected() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr().to_string();
        let client = thread::spawn(move || {
            let mut worker = TcpWorkerTransport::connect(&addr).unwrap();
            worker
                .send(&Message::Hello {
                    version: PROTOCOL_VERSION,
                    rank: 9,
                    num_workers: 2,
                    config_digest: 0,
                })
                .unwrap();
        });
        assert!(matches!(server.recv(), Err(NetError::Protocol(_))));
        client.join().unwrap();
    }
}
