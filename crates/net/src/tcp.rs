//! The TCP transport: real sockets over `std::net`, one blocking reader thread per
//! connection.
//!
//! Threading model: the server binds a listener; an acceptor thread accepts exactly
//! `num_workers` connections; each connection gets a reader thread that blocks on
//! [`crate::wire::read_frame_payload`] and forwards decoded frames — attributed with
//! the rank announced in the connection's leading `Hello` — into one crossbeam channel.
//! The server's command loop is the only consumer of that channel and the only writer
//! to the sockets, so the parameter server itself stays single-threaded and lock-free.
//!
//! The steady-state frame path is allocation-free on both ends:
//!
//! * every connection reader reuses one payload buffer and decodes bulk messages
//!   (`Push` gradients, `PullDelta` version vectors) into `Vec`s recycled back from
//!   the command loop through per-rank pool channels;
//! * every writer encodes into a reusable scratch buffer and ships header + payload
//!   with one vectored `write_all` ([`crate::wire::write_frame_payload`]);
//! * pull replies are encoded straight from a borrowed [`PullView`] of the server's
//!   store — the weights are memcpy'd from the store into the frame buffer, never
//!   into an intermediate vector.
//!
//! A counting-allocator test (`tests/zero_alloc_net.rs`) enforces the zero-allocation
//! property end to end, the same way the compute kernels' steady state is enforced.
//!
//! This is a cooperative-cluster transport, not a hardened public endpoint: a peer
//! that violates the protocol (bad magic, wrong version, non-`Hello` first frame)
//! aborts the run with an error rather than being quarantined.

use crate::transport::{PullOutcome, PullView, ServerTransport, WorkerTransport};
use crate::wire::{
    self, read_frame_payload, write_frame_payload, Message, TAG_PULL_DELTA, TAG_PULL_REPLY,
    TAG_PULL_REPLY_DELTA, TAG_PULL_SHARDS, TAG_PUSH, TAG_PUSH_SLICE,
};
use crate::NetError;
use crossbeam_channel::{unbounded, Receiver, Sender, TryRecvError};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Byte and frame counters of one transport endpoint, for benchmarks and reports
/// (`repro -- bench-net` derives bytes/pull and messages/sec from these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Total bytes written to the socket(s), including frame headers.
    pub bytes_sent: u64,
    /// Total bytes read from the socket(s), including frame headers.
    pub bytes_received: u64,
    /// Frames written.
    pub frames_sent: u64,
    /// Frames read.
    pub frames_received: u64,
}

/// Receive-side counters shared with the connection reader threads.
#[derive(Debug, Default)]
struct RxCounters {
    bytes: AtomicU64,
    frames: AtomicU64,
}

impl RxCounters {
    fn record(&self, payload_len: usize) {
        self.bytes
            .fetch_add(payload_len as u64 + 4, Ordering::Relaxed);
        self.frames.fetch_add(1, Ordering::Relaxed);
    }
}

/// The recycle-channel senders of one rank's connection: the command loop pushes
/// consumed bulk buffers back so the reader can decode the next message into them.
struct RankPools {
    grads: Sender<Vec<f32>>,
    known: Sender<Vec<u64>>,
}

enum Event {
    /// A connection completed its `Hello`; `stream` is the write half for its rank and
    /// `pools` the recycle channels feeding its reader's decode buffers.
    Register {
        rank: usize,
        stream: TcpStream,
        pools: RankPools,
    },
    /// A decoded frame from `rank` (or the error that ended its connection).
    Frame(usize, Result<Message, NetError>),
    /// A failure on a connection that never identified itself.
    Unattributed(NetError),
}

/// Server end of the TCP transport.
pub struct TcpServerTransport {
    local_addr: SocketAddr,
    num_workers: usize,
    events: Receiver<Event>,
    writers: Vec<Option<TcpStream>>,
    pools: Vec<Option<RankPools>>,
    scratch: Vec<u8>,
    rx: Arc<RxCounters>,
    bytes_sent: u64,
    frames_sent: u64,
}

impl TcpServerTransport {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts accepting
    /// exactly `num_workers` connections in the background.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` is zero.
    pub fn bind(addr: &str, num_workers: usize) -> Result<Self, NetError> {
        assert!(num_workers > 0, "need at least one worker");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (event_tx, events) = unbounded();
        let rx = Arc::new(RxCounters::default());
        let rx_for_readers = Arc::clone(&rx);
        thread::Builder::new()
            .name("dssp-net-acceptor".into())
            .spawn(move || accept_loop(listener, num_workers, event_tx, rx_for_readers))
            .expect("spawn acceptor thread");
        Ok(Self {
            local_addr,
            num_workers,
            events,
            writers: (0..num_workers).map(|_| None).collect(),
            pools: (0..num_workers).map(|_| None).collect(),
            scratch: Vec::new(),
            rx,
            bytes_sent: 0,
            frames_sent: 0,
        })
    }

    /// The bound address (useful with port 0 to learn the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Byte/frame counters accumulated so far (receive side includes every
    /// connection's reader thread).
    pub fn stats(&self) -> TransportStats {
        TransportStats {
            bytes_sent: self.bytes_sent,
            bytes_received: self.rx.bytes.load(Ordering::Relaxed),
            frames_sent: self.frames_sent,
            frames_received: self.rx.frames.load(Ordering::Relaxed),
        }
    }

    /// Writes the already-encoded `scratch` payload to `rank`'s socket as one frame.
    fn flush_scratch_to(&mut self, rank: usize) -> Result<(), NetError> {
        let stream = self.writers[rank]
            .as_mut()
            .ok_or_else(|| NetError::Protocol(format!("worker {rank} never said Hello")))?;
        write_frame_payload(stream, &self.scratch)?;
        self.bytes_sent += self.scratch.len() as u64 + 4;
        self.frames_sent += 1;
        Ok(())
    }
}

impl Drop for TcpServerTransport {
    /// Mirrors what the kernel does for a killed server process: close every
    /// connection so peers blocked in `recv` observe EOF. The reader threads hold
    /// duplicated FDs, so merely dropping the write halves would leave the sockets
    /// open — and a worker with nothing left to send would block forever on a reply
    /// that cannot come. `shutdown` acts on the socket itself, across every
    /// duplicate, unblocking both the peer and this connection's reader thread.
    fn drop(&mut self) {
        while let Ok(event) = self.events.try_recv() {
            if let Event::Register { stream, .. } = event {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        for stream in self.writers.iter().flatten() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the acceptor if any client slot was never claimed (a coordinator
        // binds an optional admin slot that only `repro -- drain/rebalance` dials):
        // a bounded burst of self-connects makes `accept` return so the thread can
        // exit instead of leaking. Once the acceptor has exited and dropped the
        // listener, the next connect fails fast and the loop stops.
        for _ in 0..self.num_workers {
            match TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(50)) {
                Ok(poke) => {
                    let _ = poke.shutdown(std::net::Shutdown::Both);
                }
                Err(_) => break,
            }
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    num_workers: usize,
    event_tx: Sender<Event>,
    rx: Arc<RxCounters>,
) {
    for _ in 0..num_workers {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                let _ = event_tx.send(Event::Unattributed(e.into()));
                return;
            }
        };
        let tx = event_tx.clone();
        let rx = Arc::clone(&rx);
        let _ = thread::Builder::new()
            .name("dssp-net-reader".into())
            .spawn(move || reader_loop(stream, num_workers, tx, rx));
    }
}

fn reader_loop(stream: TcpStream, num_workers: usize, tx: Sender<Event>, rx: Arc<RxCounters>) {
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            let _ = tx.send(Event::Unattributed(e.into()));
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut payload: Vec<u8> = Vec::new();
    // The first frame must be a Hello (or, on a shard server, a GroupHello)
    // announcing the connection's rank.
    let hello = match read_frame_payload(&mut reader, &mut payload).and_then(|len| {
        rx.record(len);
        Ok(wire::decode(&payload)?)
    }) {
        Ok(msg @ (Message::Hello { .. } | Message::GroupHello { .. })) => msg,
        Ok(other) => {
            let _ = tx.send(Event::Unattributed(NetError::Protocol(format!(
                "first frame was {other:?}, expected Hello"
            ))));
            return;
        }
        Err(e) => {
            let _ = tx.send(Event::Unattributed(e));
            return;
        }
    };
    let announced = match &hello {
        Message::Hello { rank, .. } | Message::GroupHello { rank, .. } => *rank,
        _ => unreachable!("matched a hello above"),
    };
    // `num_workers` here is really the transport's client-slot count: a shard server
    // binds `workers + 1` slots and its coordinator announces the extra top rank.
    let rank = if (announced as usize) < num_workers {
        announced as usize
    } else {
        let _ = tx.send(Event::Unattributed(NetError::Protocol(format!(
            "rank {announced} out of range for {num_workers} client slots"
        ))));
        return;
    };
    // Recycle channels: the command loop returns consumed bulk buffers here so the
    // steady-state decode below never allocates.
    let (grads_tx, grads_pool) = unbounded::<Vec<f32>>();
    let (known_tx, known_pool) = unbounded::<Vec<u64>>();
    // Registration travels on the same channel before the Hello frame, so the command
    // loop always owns the write half by the time it sees the rank's first message.
    if tx
        .send(Event::Register {
            rank,
            stream: write_half,
            pools: RankPools {
                grads: grads_tx,
                known: known_tx,
            },
        })
        .is_err()
    {
        return;
    }
    if tx.send(Event::Frame(rank, Ok(hello))).is_err() {
        return;
    }
    loop {
        let msg = read_frame_payload(&mut reader, &mut payload).and_then(|len| {
            rx.record(len);
            decode_pooled(&payload, &grads_pool, &known_pool)
        });
        match msg {
            Ok(msg) => {
                if tx.send(Event::Frame(rank, Ok(msg))).is_err() {
                    return; // server gone
                }
            }
            Err(e) => {
                // EOF after shutdown is the normal end of a connection; the command
                // loop has stopped receiving by then, so a failed send is fine too.
                let _ = tx.send(Event::Frame(rank, Err(e)));
                return;
            }
        }
    }
}

/// Decodes a payload, routing bulk message kinds into buffers recycled from the
/// command loop (an empty pool falls back to a fresh `Vec`, so correctness never
/// depends on the recycling).
fn decode_pooled(
    payload: &[u8],
    grads_pool: &Receiver<Vec<f32>>,
    known_pool: &Receiver<Vec<u64>>,
) -> Result<Message, NetError> {
    fn recycled<T>(pool: &Receiver<Vec<T>>) -> Vec<T> {
        match pool.try_recv() {
            Ok(buf) => buf,
            Err(TryRecvError::Empty | TryRecvError::Disconnected) => Vec::new(),
        }
    }
    match payload.first() {
        Some(&TAG_PUSH) => {
            let mut grads = recycled(grads_pool);
            let (iteration, trace) = wire::decode_push_into(payload, &mut grads)?;
            Ok(Message::Push {
                iteration,
                trace,
                grads,
            })
        }
        Some(&TAG_PUSH_SLICE) => {
            let mut grads = recycled(grads_pool);
            let (iteration, epoch, trace) = wire::decode_push_slice_into(payload, &mut grads)?;
            Ok(Message::PushSlice {
                iteration,
                epoch,
                trace,
                grads,
            })
        }
        Some(&TAG_PULL_DELTA) => {
            let mut known = recycled(known_pool);
            let trace = wire::decode_pull_delta_into(payload, &mut known)?;
            Ok(Message::PullDelta {
                trace,
                known_versions: known,
            })
        }
        Some(&TAG_PULL_SHARDS) => {
            let mut known = recycled(known_pool);
            let (all, epoch, trace) = wire::decode_pull_shards_into(payload, &mut known)?;
            Ok(Message::PullShards {
                known_versions: known,
                all,
                epoch,
                trace,
            })
        }
        _ => Ok(wire::decode(payload)?),
    }
}

impl ServerTransport for TcpServerTransport {
    fn num_workers(&self) -> usize {
        self.num_workers
    }

    fn recv(&mut self) -> Result<(usize, Message), NetError> {
        loop {
            match self.events.recv().map_err(|_| NetError::Disconnected)? {
                Event::Register {
                    rank,
                    stream,
                    pools,
                } => {
                    let _ = stream.set_nodelay(true);
                    self.writers[rank] = Some(stream);
                    self.pools[rank] = Some(pools);
                }
                Event::Frame(rank, Ok(msg)) => return Ok((rank, msg)),
                // A clean EOF at a frame boundary keeps its rank so serving loops can
                // decide whether the departure is fatal (shard servers outlive their
                // finished workers; a single server does not). A reset carries the
                // same meaning: a killed worker with an unread reply in its receive
                // buffer closes with RST rather than FIN.
                Event::Frame(rank, Err(NetError::Disconnected)) => {
                    return Err(NetError::ClientLost { rank })
                }
                Event::Frame(rank, Err(NetError::Io(e)))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::BrokenPipe
                    ) =>
                {
                    return Err(NetError::ClientLost { rank })
                }
                Event::Frame(rank, Err(e)) => {
                    return Err(NetError::Protocol(format!(
                        "connection of worker {rank} failed: {e}"
                    )))
                }
                Event::Unattributed(e) => return Err(e),
            }
        }
    }

    fn send(&mut self, rank: usize, msg: &Message) -> Result<(), NetError> {
        self.scratch.clear();
        wire::encode(msg, &mut self.scratch);
        self.flush_scratch_to(rank)
    }

    fn send_pull_reply(&mut self, rank: usize, view: &PullView<'_>) -> Result<(), NetError> {
        self.scratch.clear();
        view.encode(&mut self.scratch);
        self.flush_scratch_to(rank)
    }

    fn send_payload(&mut self, rank: usize, payload: &[u8]) -> Result<(), NetError> {
        // The caller encoded straight into its own scratch; ship it as one frame
        // without a decode/re-encode round trip.
        let stream = self.writers[rank]
            .as_mut()
            .ok_or_else(|| NetError::Protocol(format!("worker {rank} never said Hello")))?;
        write_frame_payload(stream, payload)?;
        self.bytes_sent += payload.len() as u64 + 4;
        self.frames_sent += 1;
        Ok(())
    }

    fn transport_stats(&self) -> TransportStats {
        self.stats()
    }

    fn recycle_f32s(&mut self, rank: usize, buf: Vec<f32>) {
        if let Some(pools) = &self.pools[rank] {
            let _ = pools.grads.send(buf);
        }
    }

    fn recycle_u64s(&mut self, rank: usize, buf: Vec<u64>) {
        if let Some(pools) = &self.pools[rank] {
            let _ = pools.known.send(buf);
        }
    }
}

/// Worker end of the TCP transport.
pub struct TcpWorkerTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    scratch: Vec<u8>,
    payload: Vec<u8>,
    stats: TransportStats,
    /// Human-readable peer name used to attribute timeout/disconnect errors
    /// ("shard server 1 at 127.0.0.1:4242"). Defaults to "server at ADDR".
    peer: String,
    /// The address this transport connected to, kept so a [`NetError::PeerLost`]
    /// carries enough context to reconnect.
    addr: String,
    /// The rank this side announced in its `Hello`/`GroupHello`, once known.
    rank: Option<u32>,
    /// The last server clock (weight version) confirmed by a reply, once known.
    last_clock: Option<u64>,
    /// Active read timeout, if any (see [`TcpWorkerTransport::set_read_timeout`]).
    read_timeout: Option<Duration>,
}

impl TcpWorkerTransport {
    /// Connects to a server at `addr`, retrying for a few seconds so workers may be
    /// launched before (or concurrently with) the server process.
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        Self::connect_with_retry(addr, 50, Duration::from_millis(50))
    }

    /// Connects with an explicit retry schedule: `attempts` tries, starting
    /// `initial_pause` apart and backing off exponentially (doubling per attempt) up
    /// to a 2-second cap. Every sleep is scaled by a pseudo-random factor in
    /// `[0.5, 1.0)`, so a fleet of workers retrying against one restarted shard
    /// server does not hammer it in lockstep.
    pub fn connect_with_retry(
        addr: &str,
        attempts: u32,
        initial_pause: Duration,
    ) -> Result<Self, NetError> {
        const BACKOFF_CAP: Duration = Duration::from_secs(2);
        let mut jitter = Xorshift::from_entropy();
        let mut pause = initial_pause;
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                thread::sleep(jitter.scale(pause));
                pause = (pause * 2).min(BACKOFF_CAP);
            }
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok(Self {
                        reader,
                        writer: stream,
                        scratch: Vec::new(),
                        payload: Vec::new(),
                        stats: TransportStats::default(),
                        peer: format!("server at {addr}"),
                        addr: addr.to_string(),
                        rank: None,
                        last_clock: None,
                        read_timeout: None,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.map(NetError::Io).unwrap_or(NetError::Disconnected))
    }

    /// Names this connection's peer for error attribution: a group worker labels each
    /// link ("shard server 2 at ADDR") so losing one server of a fleet produces an
    /// error naming exactly which one, not a generic disconnect.
    pub fn set_peer_label(&mut self, label: impl Into<String>) {
        self.peer = label.into();
    }

    /// The peer label used in error messages.
    pub fn peer_label(&self) -> &str {
        &self.peer
    }

    /// The address this transport connected to.
    pub fn peer_addr(&self) -> &str {
        &self.addr
    }

    /// Arms (or disarms, with `None`) a socket read timeout. A blocking `recv` that
    /// sees no frame within the window fails with [`NetError::PeerTimeout`] naming the
    /// peer, instead of stalling forever on a dead shard server. The connection is not
    /// usable for further reads after a timeout fires (a frame may have been consumed
    /// partially); callers treat it as fatal.
    ///
    /// Workers arm this only on shard-server links, whose replies (slice acks, pull
    /// replies) are always prompt — the coordinator link stays blocking because a
    /// policy may legitimately defer an `OK` for a long time.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.read_timeout = timeout;
        Ok(())
    }

    /// Byte/frame counters accumulated so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Writes the already-encoded `scratch` payload as one frame.
    fn flush_scratch(&mut self) -> Result<(), NetError> {
        write_frame_payload(&mut self.writer, &self.scratch)
            .map_err(|e| self.attribute(e.into()))?;
        self.stats.bytes_sent += self.scratch.len() as u64 + 4;
        self.stats.frames_sent += 1;
        Ok(())
    }

    /// Reads the next frame into the reusable payload buffer.
    fn read_payload(&mut self) -> Result<(), NetError> {
        let len = read_frame_payload(&mut self.reader, &mut self.payload)
            .map_err(|e| self.attribute(e))?;
        self.stats.bytes_received += len as u64 + 4;
        self.stats.frames_received += 1;
        Ok(())
    }

    /// Rewrites anonymous transport failures into peer-attributed ones.
    fn attribute(&self, e: NetError) -> NetError {
        match e {
            NetError::Io(io)
                if matches!(
                    io.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) && self.read_timeout.is_some() =>
            {
                NetError::PeerTimeout {
                    peer: self.peer.clone(),
                    timeout_ms: self.read_timeout.map(|t| t.as_millis() as u64).unwrap_or(0),
                }
            }
            NetError::Disconnected => NetError::PeerLost {
                peer: self.peer.clone(),
                addr: Some(self.addr.clone()),
                rank: self.rank,
                last_clock: self.last_clock,
            },
            other => other,
        }
    }
}

/// Minimal xorshift64* generator used only to jitter reconnect backoff — not
/// statistical-quality randomness, just enough to break retry lockstep across a
/// fleet of workers.
struct Xorshift(u64);

impl Xorshift {
    fn from_entropy() -> Self {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Scales `pause` by a factor in `[0.5, 1.0)`.
    fn scale(&mut self, pause: Duration) -> Duration {
        let frac = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        pause.mul_f64(0.5 + frac / 2.0)
    }
}

impl WorkerTransport for TcpWorkerTransport {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        if let Message::Hello { rank, .. } | Message::GroupHello { rank, .. } = msg {
            self.rank = Some(*rank);
        }
        self.scratch.clear();
        wire::encode(msg, &mut self.scratch);
        self.flush_scratch()
    }

    fn note_confirmed_clock(&mut self, clock: u64) {
        self.last_clock = Some(clock);
    }

    fn recv(&mut self) -> Result<Message, NetError> {
        self.read_payload()?;
        Ok(wire::decode(&self.payload)?)
    }

    fn send_push(&mut self, iteration: u64, trace: u64, grads: &[f32]) -> Result<(), NetError> {
        self.scratch.clear();
        wire::encode_push(&mut self.scratch, iteration, trace, grads);
        self.flush_scratch()
    }

    fn pull_into(
        &mut self,
        delta: bool,
        trace: u64,
        weights: &mut Vec<f32>,
        versions: &mut Vec<u64>,
    ) -> Result<PullOutcome, NetError> {
        self.scratch.clear();
        if delta && !versions.is_empty() {
            wire::encode_pull_delta(&mut self.scratch, trace, versions);
        } else {
            wire::encode_pull(&mut self.scratch, trace);
        }
        self.flush_scratch()?;
        self.recv_pull_apply(weights, versions)
    }

    fn send_push_slice(
        &mut self,
        iteration: u64,
        epoch: u64,
        trace: u64,
        grads: &[f32],
    ) -> Result<(), NetError> {
        self.scratch.clear();
        wire::encode_push_slice(&mut self.scratch, iteration, epoch, trace, grads);
        self.flush_scratch()
    }

    fn send_pull_shards(
        &mut self,
        known_versions: &[u64],
        all: bool,
        epoch: u64,
        trace: u64,
    ) -> Result<(), NetError> {
        self.scratch.clear();
        wire::encode_pull_shards(&mut self.scratch, known_versions, all, epoch, trace);
        self.flush_scratch()
    }

    fn recv_pull_apply(
        &mut self,
        weights: &mut Vec<f32>,
        versions: &mut Vec<u64>,
    ) -> Result<PullOutcome, NetError> {
        self.read_payload()?;
        match self.payload.first() {
            Some(&TAG_PULL_REPLY) | Some(&TAG_PULL_REPLY_DELTA) => {
                let applied = wire::apply_pull_reply(&self.payload, weights, versions)?;
                Ok(PullOutcome::Applied(applied))
            }
            _ => match wire::decode(&self.payload)? {
                Message::Shutdown { reason } => Ok(PullOutcome::Shutdown { reason }),
                Message::EpochRefused { epoch, assignment } => {
                    Err(NetError::EpochRefused { epoch, assignment })
                }
                other => Err(NetError::Protocol(format!(
                    "expected a pull reply, got {other:?}"
                ))),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::PROTOCOL_VERSION;

    #[test]
    fn tcp_frames_flow_both_ways() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().to_string();
        let client = thread::spawn(move || {
            let mut worker = TcpWorkerTransport::connect(&addr).unwrap();
            worker
                .send(&Message::Hello {
                    version: PROTOCOL_VERSION,
                    rank: 0,
                    num_workers: 1,
                    config_digest: 7,
                })
                .unwrap();
            worker.send_push(1, 42, &[0.5, -1.25]).unwrap();
            let reply = worker.recv().unwrap();
            assert!(matches!(reply, Message::PushReply { version: 1, .. }));
            let stats = worker.stats();
            assert_eq!(stats.frames_sent, 2);
            assert_eq!(stats.frames_received, 1);
            assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);
        });
        let (rank, hello) = server.recv().unwrap();
        assert_eq!(rank, 0);
        assert!(matches!(
            hello,
            Message::Hello {
                config_digest: 7,
                ..
            }
        ));
        let (_, push) = server.recv().unwrap();
        match push {
            Message::Push {
                iteration,
                trace,
                grads,
            } => {
                assert_eq!(iteration, 1);
                assert_eq!(trace, 42);
                assert_eq!(grads, vec![0.5, -1.25]);
                server.recycle_f32s(0, grads);
            }
            other => panic!("unexpected: {other:?}"),
        }
        server
            .send(
                0,
                &Message::PushReply {
                    granted_extra: 0,
                    version: 1,
                },
            )
            .unwrap();
        let stats = server.stats();
        assert_eq!(stats.frames_received, 2);
        assert_eq!(stats.frames_sent, 1);
        client.join().unwrap();
    }

    #[test]
    fn tcp_delta_pull_round_trip_reconstructs_the_store() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().to_string();
        let client = thread::spawn(move || {
            let mut worker = TcpWorkerTransport::connect(&addr).unwrap();
            worker
                .send(&Message::Hello {
                    version: PROTOCOL_VERSION,
                    rank: 0,
                    num_workers: 1,
                    config_digest: 0,
                })
                .unwrap();
            let mut weights = Vec::new();
            let mut versions = Vec::new();
            // First pull: no cache yet, must arrive full.
            match worker
                .pull_into(true, 0, &mut weights, &mut versions)
                .unwrap()
            {
                PullOutcome::Applied(applied) => assert!(applied.full),
                other => panic!("unexpected: {other:?}"),
            }
            assert_eq!(weights, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
            assert_eq!(versions, vec![1, 1]);
            // Second pull: delta with one stale shard.
            match worker
                .pull_into(true, 0, &mut weights, &mut versions)
                .unwrap()
            {
                PullOutcome::Applied(applied) => {
                    assert!(!applied.full);
                    assert_eq!(applied.shards_updated, 1);
                }
                other => panic!("unexpected: {other:?}"),
            }
            assert_eq!(weights, vec![1.0, 2.0, 3.0, -4.0, -5.0]);
            assert_eq!(versions, vec![1, 2]);
        });
        // Server side: 5 weights over 2 shards ([0..3), [3..5)).
        let mut weights = vec![1.0f32, 2.0, 3.0, 4.0, 5.0];
        let offsets = [0usize, 3, 5];
        let mut versions = vec![1u64, 1];
        let (_, hello) = server.recv().unwrap();
        assert!(matches!(hello, Message::Hello { .. }));
        // Full pull.
        let (rank, msg) = server.recv().unwrap();
        assert!(matches!(msg, Message::Pull { .. }));
        server
            .send_pull_reply(
                rank,
                &PullView {
                    clock: 2,
                    versions: &versions,
                    offsets: &offsets,
                    weights: &weights,
                    known: None,
                },
            )
            .unwrap();
        // Mutate shard 1, then answer the delta pull.
        weights[3] = -4.0;
        weights[4] = -5.0;
        versions[1] = 2;
        let (rank, msg) = server.recv().unwrap();
        let known = match msg {
            Message::PullDelta { known_versions, .. } => known_versions,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(known, vec![1, 1]);
        server
            .send_pull_reply(
                rank,
                &PullView {
                    clock: 3,
                    versions: &versions,
                    offsets: &offsets,
                    weights: &weights,
                    known: Some(&known),
                },
            )
            .unwrap();
        server.recycle_u64s(rank, known);
        client.join().unwrap();
    }

    #[test]
    fn non_hello_first_frame_is_a_protocol_error() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().to_string();
        let client = thread::spawn(move || {
            let mut worker = TcpWorkerTransport::connect(&addr).unwrap();
            worker.send(&Message::Pull { trace: 0 }).unwrap();
        });
        assert!(matches!(server.recv(), Err(NetError::Protocol(_))));
        client.join().unwrap();
    }

    #[test]
    fn out_of_range_rank_is_rejected() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr().to_string();
        let client = thread::spawn(move || {
            let mut worker = TcpWorkerTransport::connect(&addr).unwrap();
            worker
                .send(&Message::Hello {
                    version: PROTOCOL_VERSION,
                    rank: 9,
                    num_workers: 2,
                    config_digest: 0,
                })
                .unwrap();
        });
        assert!(matches!(server.recv(), Err(NetError::Protocol(_))));
        client.join().unwrap();
    }
}
