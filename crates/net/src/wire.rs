//! The versioned, length-prefixed binary wire protocol.
//!
//! Every frame on the wire is
//!
//! ```text
//! [ payload length: u32 LE ][ payload ]
//! payload = [ tag: u8 ][ message fields, little-endian ]
//! ```
//!
//! The codec is hand-rolled (no serde — the serde shim only marks types, it does not
//! serialize) and strictly validating: truncated payloads, trailing bytes, unknown
//! tags and oversized frames are all rejected rather than guessed at. `f32`/`f64`
//! values travel as their IEEE-754 bit patterns, so weights and gradients cross the
//! network bitwise intact — the property the cross-substrate equivalence tests rely
//! on.
//!
//! Protocol flow (client = worker, server = parameter server):
//!
//! ```text
//! worker                               server
//!   | -- Hello{version,rank,digest} --> |   handshake, config fingerprint check
//!   | -- Pull ------------------------> |
//!   | <----- PullReply{clock,weights} - |   initial weights
//!   | == per iteration ================ |
//!   | -- Push{iteration,grads} -------> |   gradients applied, policy consulted
//!   | <-- PushReply{granted_extra} ---- |   (deferred while the policy blocks)
//!   | -- Pull ------------------------> |
//!   | <----- PullReply{clock,weights} - |
//!   | ================================= |
//!   | -- Done{iterations,...} --------> |   after the final push
//!   | <-- Shutdown{reason} ------------ |   broadcast once every worker is done
//! ```

/// Protocol version carried in [`Message::Hello`]; peers with a different version are
/// rejected during the handshake.
pub const PROTOCOL_VERSION: u16 = 1;

/// Magic number opening every `Hello` payload (`b"DSSP"` little-endian).
pub const HELLO_MAGIC: u32 = u32::from_le_bytes(*b"DSSP");

/// Upper bound on a frame payload (256 MiB ≈ a 64M-parameter pull); larger length
/// prefixes are rejected before any allocation happens.
pub const MAX_FRAME_LEN: usize = 256 * 1024 * 1024;

/// Shutdown reason: the run completed normally.
pub const SHUTDOWN_OK: u8 = 0;
/// Shutdown reason: the server failed or aborted; workers must discard the run.
pub const SHUTDOWN_SERVER_ERROR: u8 = 1;

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → server: connection handshake.
    Hello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: u16,
        /// The worker's rank, in `0..num_workers`.
        rank: u32,
        /// Number of workers the sender believes the job has.
        num_workers: u32,
        /// Fingerprint of the sender's `JobConfig` (`JobConfig::digest`); the server
        /// refuses workers whose training configuration differs from its own.
        config_digest: u64,
    },
    /// Worker → server: gradients of one completed iteration (1-based).
    Push {
        /// 1-based iteration number of this push.
        iteration: u64,
        /// Flat gradient vector.
        grads: Vec<f32>,
    },
    /// Server → worker: the `OK` of Algorithm 1 — the worker may start its next
    /// iteration. Sent immediately or deferred, according to the policy.
    PushReply {
        /// Extra iterations the DSSP controller granted at this push (`r*`; 0 for
        /// catch-up releases and non-DSSP policies).
        granted_extra: u64,
        /// Server weight version when the reply was issued.
        version: u64,
    },
    /// Worker → server: request the current global weights.
    Pull,
    /// Server → worker: the current global weights.
    PullReply {
        /// Server weight version (total pushes applied).
        clock: u64,
        /// Per-shard update versions of the server's `ShardedStore`, in shard order.
        shard_versions: Vec<u64>,
        /// The flat weight vector.
        weights: Vec<f32>,
    },
    /// Worker → server: all iterations complete (sent after the final push, without
    /// waiting for its reply).
    Done {
        /// Iterations the worker completed.
        iterations: u64,
        /// Epochs the worker completed.
        epochs: u64,
        /// Wall-clock seconds the worker spent waiting for deferred `OK`s.
        waiting_time_s: f64,
    },
    /// Server → worker (broadcast): the run is over; the worker process exits.
    Shutdown {
        /// [`SHUTDOWN_OK`] or [`SHUTDOWN_SERVER_ERROR`].
        reason: u8,
    },
}

impl Message {
    /// The payload tag identifying this message kind on the wire.
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 1,
            Message::Push { .. } => 2,
            Message::PushReply { .. } => 3,
            Message::Pull => 4,
            Message::PullReply { .. } => 5,
            Message::Done { .. } => 6,
            Message::Shutdown { .. } => 7,
        }
    }
}

/// A decoding failure. Every variant means the frame is unusable; the connection
/// should be torn down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the message was complete.
    Truncated,
    /// The payload had bytes left over after the message was complete.
    TrailingBytes {
        /// How many bytes were left.
        extra: usize,
    },
    /// The payload tag is not a known message kind.
    UnknownTag(u8),
    /// The frame length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared payload length.
        len: usize,
    },
    /// A `Hello` payload did not open with [`HELLO_MAGIC`].
    BadMagic(u32),
    /// An embedded vector declares more elements than the payload can hold.
    BadLength {
        /// The declared element count.
        declared: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message")
            }
            WireError::UnknownTag(tag) => write!(f, "unknown message tag {tag}"),
            WireError::Oversized { len } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
                )
            }
            WireError::BadMagic(m) => write!(f, "bad Hello magic {m:#010x}"),
            WireError::BadLength { declared } => {
                write!(
                    f,
                    "embedded vector declares {declared} elements beyond payload end"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Serializes `msg` into a payload (tag + fields, no length prefix), appending to
/// `buf`.
pub fn encode(msg: &Message, buf: &mut Vec<u8>) {
    buf.push(msg.tag());
    match msg {
        Message::Hello {
            version,
            rank,
            num_workers,
            config_digest,
        } => {
            buf.extend_from_slice(&HELLO_MAGIC.to_le_bytes());
            buf.extend_from_slice(&version.to_le_bytes());
            buf.extend_from_slice(&rank.to_le_bytes());
            buf.extend_from_slice(&num_workers.to_le_bytes());
            buf.extend_from_slice(&config_digest.to_le_bytes());
        }
        Message::Push { iteration, grads } => {
            buf.extend_from_slice(&iteration.to_le_bytes());
            put_f32s(buf, grads);
        }
        Message::PushReply {
            granted_extra,
            version,
        } => {
            buf.extend_from_slice(&granted_extra.to_le_bytes());
            buf.extend_from_slice(&version.to_le_bytes());
        }
        Message::Pull => {}
        Message::PullReply {
            clock,
            shard_versions,
            weights,
        } => {
            buf.extend_from_slice(&clock.to_le_bytes());
            put_u64s(buf, shard_versions);
            put_f32s(buf, weights);
        }
        Message::Done {
            iterations,
            epochs,
            waiting_time_s,
        } => {
            buf.extend_from_slice(&iterations.to_le_bytes());
            buf.extend_from_slice(&epochs.to_le_bytes());
            buf.extend_from_slice(&waiting_time_s.to_bits().to_le_bytes());
        }
        Message::Shutdown { reason } => buf.push(*reason),
    }
}

/// Deserializes one payload produced by [`encode`]. Strict: rejects unknown tags,
/// truncation and trailing bytes.
pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    let msg = match tag {
        1 => {
            let magic = r.u32()?;
            if magic != HELLO_MAGIC {
                return Err(WireError::BadMagic(magic));
            }
            Message::Hello {
                version: r.u16()?,
                rank: r.u32()?,
                num_workers: r.u32()?,
                config_digest: r.u64()?,
            }
        }
        2 => Message::Push {
            iteration: r.u64()?,
            grads: r.f32s()?,
        },
        3 => Message::PushReply {
            granted_extra: r.u64()?,
            version: r.u64()?,
        },
        4 => Message::Pull,
        5 => Message::PullReply {
            clock: r.u64()?,
            shard_versions: r.u64s()?,
            weights: r.f32s()?,
        },
        6 => Message::Done {
            iterations: r.u64()?,
            epochs: r.u64()?,
            waiting_time_s: f64::from_bits(r.u64()?),
        },
        7 => Message::Shutdown { reason: r.u8()? },
        other => return Err(WireError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(msg)
}

/// Writes one length-prefixed frame to `w`, reusing `scratch` as the serialization
/// buffer (cleared first).
pub fn write_frame<W: std::io::Write>(
    w: &mut W,
    msg: &Message,
    scratch: &mut Vec<u8>,
) -> std::io::Result<()> {
    scratch.clear();
    encode(msg, scratch);
    let len = u32::try_from(scratch.len()).expect("payload fits in u32");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(scratch)?;
    w.flush()
}

/// Reads one length-prefixed frame from `r` and decodes it. Returns
/// [`crate::NetError::Disconnected`] on a clean EOF at a frame boundary.
pub fn read_frame<R: std::io::Read>(r: &mut R) -> Result<Message, crate::NetError> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Err(crate::NetError::Disconnected)
        }
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized { len }.into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(decode(&payload)?)
}

fn put_f32s(buf: &mut Vec<u8>, values: &[f32]) {
    let len = u32::try_from(values.len()).expect("vector fits in u32");
    buf.extend_from_slice(&len.to_le_bytes());
    buf.reserve(values.len() * 4);
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_u64s(buf: &mut Vec<u8>, values: &[u64]) {
    let len = u32::try_from(values.len()).expect("vector fits in u32");
    buf.extend_from_slice(&len.to_le_bytes());
    buf.reserve(values.len() * 8);
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32s(&mut self) -> Result<Vec<f32>, WireError> {
        let declared = self.u32()? as usize;
        if declared.saturating_mul(4) > self.bytes.len() - self.pos {
            return Err(WireError::BadLength { declared });
        }
        let mut out = Vec::with_capacity(declared);
        for _ in 0..declared {
            out.push(f32::from_le_bytes(self.take(4)?.try_into().unwrap()));
        }
        Ok(out)
    }

    fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let declared = self.u32()? as usize;
        if declared.saturating_mul(8) > self.bytes.len() - self.pos {
            return Err(WireError::BadLength { declared });
        }
        let mut out = Vec::with_capacity(declared);
        for _ in 0..declared {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.bytes.len() - self.pos,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Message) -> Message {
        let mut buf = Vec::new();
        encode(msg, &mut buf);
        decode(&buf).expect("decodes")
    }

    #[test]
    fn every_message_kind_round_trips() {
        let messages = vec![
            Message::Hello {
                version: PROTOCOL_VERSION,
                rank: 2,
                num_workers: 4,
                config_digest: 0xdead_beef_cafe_f00d,
            },
            Message::Push {
                iteration: 7,
                grads: vec![1.5, -0.25, f32::MIN_POSITIVE, -0.0],
            },
            Message::PushReply {
                granted_extra: 3,
                version: 41,
            },
            Message::Pull,
            Message::PullReply {
                clock: 99,
                shard_versions: vec![99, 98, 99],
                weights: vec![0.125; 9],
            },
            Message::Done {
                iterations: 24,
                epochs: 2,
                waiting_time_s: 1.75,
            },
            Message::Shutdown {
                reason: SHUTDOWN_OK,
            },
        ];
        for msg in &messages {
            assert_eq!(&round_trip(msg), msg);
        }
    }

    #[test]
    fn special_floats_survive_bitwise() {
        let grads = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 1e-42];
        let mut buf = Vec::new();
        encode(
            &Message::Push {
                iteration: 1,
                grads: grads.clone(),
            },
            &mut buf,
        );
        match decode(&buf).unwrap() {
            Message::Push { grads: got, .. } => {
                assert_eq!(got.len(), grads.len());
                for (a, b) in got.iter().zip(&grads) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let mut buf = Vec::new();
        encode(
            &Message::Push {
                iteration: 3,
                grads: vec![1.0, 2.0],
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            let err = decode(&buf[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode(&Message::Pull, &mut buf);
        buf.push(0);
        assert_eq!(decode(&buf), Err(WireError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn unknown_tags_and_bad_magic_are_rejected() {
        assert_eq!(decode(&[42]), Err(WireError::UnknownTag(42)));
        let mut buf = Vec::new();
        encode(
            &Message::Hello {
                version: 1,
                rank: 0,
                num_workers: 1,
                config_digest: 0,
            },
            &mut buf,
        );
        buf[1] ^= 0xff; // corrupt the magic
        assert!(matches!(decode(&buf), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn absurd_vector_lengths_are_rejected_before_allocation() {
        // Push with a declared gradient count of u32::MAX but no data.
        let mut buf = vec![2u8];
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&buf), Err(WireError::BadLength { .. })));
    }

    #[test]
    fn oversized_frames_are_rejected_by_the_frame_reader() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(bytes);
        match read_frame(&mut cursor) {
            Err(crate::NetError::Wire(WireError::Oversized { len })) => {
                assert_eq!(len, u32::MAX as usize);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let messages = vec![
            Message::Pull,
            Message::Push {
                iteration: 1,
                grads: vec![0.5; 3],
            },
            Message::Shutdown {
                reason: SHUTDOWN_SERVER_ERROR,
            },
        ];
        let mut stream = Vec::new();
        let mut scratch = Vec::new();
        for msg in &messages {
            write_frame(&mut stream, msg, &mut scratch).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream);
        for msg in &messages {
            assert_eq!(&read_frame(&mut cursor).unwrap(), msg);
        }
        assert!(matches!(
            read_frame(&mut cursor),
            Err(crate::NetError::Disconnected)
        ));
    }
}
