//! The versioned, length-prefixed binary wire protocol.
//!
//! Every frame on the wire is
//!
//! ```text
//! [ payload length: u32 LE ][ payload ]
//! payload = [ tag: u8 ][ message fields, little-endian ]
//! ```
//!
//! The codec is hand-rolled (no serde — the serde shim only marks types, it does not
//! serialize) and strictly validating: truncated payloads, trailing bytes, unknown
//! tags and oversized frames are all rejected rather than guessed at. `f32`/`f64`
//! values travel as their IEEE-754 bit patterns, so weights and gradients cross the
//! network bitwise intact — the property the cross-substrate equivalence tests rely
//! on. Bulk `f32`/`u64` runs are converted in one chunked byte-cast on little-endian
//! hosts (a bounds-checked memcpy) with a per-element fallback elsewhere, so encoding
//! and decoding a model-sized vector costs a memcpy, not a loop of `extend_from_slice`
//! calls.
//!
//! Protocol flow (client = worker, server = parameter server):
//!
//! ```text
//! worker                               server
//!   | -- Hello{version,rank,digest} --> |   handshake, config fingerprint check
//!   | -- Pull ------------------------> |
//!   | <----- PullReply{clock,weights} - |   initial weights (always full)
//!   | == per iteration ================ |
//!   | -- Push{iteration,grads} -------> |   gradients applied, policy consulted
//!   | <-- PushReply{granted_extra} ---- |   (deferred while the policy blocks)
//!   | -- PullDelta{known_versions} ---> |   worker's cached per-shard versions
//!   | <-- PullReplyDelta{updates} ----- |   only shards whose version advanced
//!   | ================================= |
//!   | -- Done{iterations,...} --------> |   after the final push
//!   | <-- Shutdown{reason} ------------ |   broadcast once every worker is done
//! ```
//!
//! `PullDelta` is the protocol-v2 incremental pull: the worker keeps the per-shard
//! versions of its last reply and the server ships only the shards that advanced,
//! falling back to a full [`Message::PullReply`] on first contact or whenever the
//! client's version vector is incompatible (wrong shard count, or versions from a
//! server's earlier life). Workers that prefer the v1 behaviour simply keep sending
//! plain `Pull`. Shard key ranges are never carried on the wire: both ends derive them
//! from the parameter count and shard count via [`dssp_ps::shard_range`].
//!
//! # Protocol v3: multi-server groups
//!
//! Version 3 splits the single server into a **coordinator** (clock/policy only) and
//! N **shard servers** (storage only), each owning the contiguous run of global
//! shards `dssp_ps::shard_range(shards, servers, i)` — assignment, like key ranges,
//! is closed-form and never wire-carried. Workers exchange tiny clock messages with
//! the coordinator and bulk weight traffic with the shard servers directly:
//!
//! ```text
//! worker                    coordinator                 shard server i
//!   | -- Hello -------------> |                           |
//!   | ------------------------------ GroupHello --------> |  (rank, topology, digest)
//!   | ------------------------------ PullShards{all} ---> |
//!   | <----------------------------- PullReplyDelta ----- |  (global shard ids)
//!   | == per iteration ====== |                           |
//!   | ------------------------------ PushSlice ---------> |  (server's key range)
//!   | <----------------------------- SliceAck ----------- |
//!   | -- ClockPush ---------> |   gate + policy, no grads |
//!   | <-- ClockGrant -------- |   the OK (r* credits)     |
//!   | ------------------------------ PullShards --------> |  (stale shards only)
//!   | <----------------------------- PullReplyDelta ----- |
//!   | ======================= |                           |
//!   | -- Done --------------> |                           |
//!   |                         | -- StatsRequest/Reply --> |  (per-server counters)
//!   | <-- Shutdown ---------- | -- Shutdown ------------> |
//! ```
//!
//! Deterministic mode adds a serialization handshake so an N-server group is bitwise
//! equal to a single server: the coordinator answers each `ClockPush` with a
//! [`Message::PushGrant`] in canonical event order, the worker applies its slices and
//! confirms with [`Message::PushApplied`], and each completed pull fan-out is reported
//! with [`Message::PullDone`] before the coordinator dispatches the next mutating
//! event.

/// Protocol version carried in [`Message::Hello`]; peers with a different version are
/// rejected during the handshake. Version 2 added the incremental pull pair
/// ([`Message::PullDelta`] / [`Message::PullReplyDelta`]); version 3 added the
/// multi-server group messages ([`Message::GroupHello`], the `ClockPush`/`ClockGrant`
/// clock channel, shard-scoped `PushSlice`/`PullShards`, and the deterministic-mode
/// and stats handshakes); version 5 added live shard migration (the epoch-stamped
/// `Migrate*`/`LayoutUpdate`/`EpochRefused` family, layout epochs on the bulk
/// messages, and the `Drain`/`Rebalance` admin channel); version 6 added the causal
/// trace id — a `(rank, seq)` pair packed into a `u64` (see `dssp_core::events`) —
/// to every worker-originated operation (`Push`, `Pull`, `PullDelta`, `ClockPush`,
/// `PushSlice`, `PullShards`) and to the coordinator-driven migration legs
/// (`MigrateRequest`, `MigrateShard`), so receivers can stamp the id into their
/// event logs and the offline analyzer can join per-role timelines.
pub const PROTOCOL_VERSION: u16 = 6;

/// The `shard` value in a [`Message::MigrateAck`] acknowledging a control step
/// (prepare or commit) rather than one shard's transfer.
pub const MIGRATE_CONTROL: u32 = u32::MAX;

/// Magic number opening every `Hello` payload (`b"DSSP"` little-endian).
pub const HELLO_MAGIC: u32 = u32::from_le_bytes(*b"DSSP");

/// Upper bound on a frame payload (256 MiB ≈ a 64M-parameter pull); larger length
/// prefixes are rejected before any allocation happens.
pub const MAX_FRAME_LEN: usize = 256 * 1024 * 1024;

/// Shutdown reason: the run completed normally.
pub const SHUTDOWN_OK: u8 = 0;
/// Shutdown reason: the server failed or aborted; workers must discard the run.
pub const SHUTDOWN_SERVER_ERROR: u8 = 1;

/// One shard's contribution to a [`Message::PullReplyDelta`]: the weights of a shard
/// whose version advanced past what the client reported knowing.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardUpdate {
    /// Shard index in the server's [`dssp_ps::ShardedStore`].
    pub shard: u32,
    /// The shard's update version after this delta is applied.
    pub version: u64,
    /// The shard's current weights (its full key range).
    pub weights: Vec<f32>,
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → server: connection handshake.
    Hello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: u16,
        /// The worker's rank, in `0..num_workers`.
        rank: u32,
        /// Number of workers the sender believes the job has.
        num_workers: u32,
        /// Fingerprint of the sender's `JobConfig` (`JobConfig::digest`); the server
        /// refuses workers whose training configuration differs from its own.
        config_digest: u64,
    },
    /// Worker → server: gradients of one completed iteration (1-based).
    Push {
        /// 1-based iteration number of this push.
        iteration: u64,
        /// Causal trace id (`dssp_core::events::trace_id`), or 0 for untraced.
        trace: u64,
        /// Flat gradient vector.
        grads: Vec<f32>,
    },
    /// Server → worker: the `OK` of Algorithm 1 — the worker may start its next
    /// iteration. Sent immediately or deferred, according to the policy.
    PushReply {
        /// Extra iterations the DSSP controller granted at this push (`r*`; 0 for
        /// catch-up releases and non-DSSP policies).
        granted_extra: u64,
        /// Server weight version when the reply was issued.
        version: u64,
    },
    /// Worker → server: request the current global weights in full (first contact, or
    /// delta pulls disabled).
    Pull {
        /// Causal trace id (`dssp_core::events::trace_id`), or 0 for untraced.
        trace: u64,
    },
    /// Server → worker: the current global weights.
    PullReply {
        /// Server weight version (total pushes applied).
        clock: u64,
        /// Per-shard update versions of the server's `ShardedStore`, in shard order.
        shard_versions: Vec<u64>,
        /// The flat weight vector.
        weights: Vec<f32>,
    },
    /// Worker → server: request only the shards that advanced past the worker's cached
    /// per-shard versions (from its previous pull reply). Answered with
    /// [`Message::PullReplyDelta`], or a full [`Message::PullReply`] when the version
    /// vector is incompatible.
    PullDelta {
        /// Causal trace id (`dssp_core::events::trace_id`), or 0 for untraced.
        trace: u64,
        /// The per-shard versions the worker already holds, in shard order.
        known_versions: Vec<u64>,
    },
    /// Server → worker: the incremental pull reply — only the shards whose version
    /// advanced past the client's `known_versions`. May be empty (nothing changed).
    PullReplyDelta {
        /// Server weight version (total pushes applied).
        clock: u64,
        /// The stale shards' fresh weights, in ascending shard order.
        updates: Vec<ShardUpdate>,
    },
    /// Worker → server: all iterations complete (sent after the final push, without
    /// waiting for its reply).
    Done {
        /// Iterations the worker completed.
        iterations: u64,
        /// Epochs the worker completed.
        epochs: u64,
        /// Wall-clock seconds the worker spent waiting for deferred `OK`s.
        waiting_time_s: f64,
    },
    /// Server → worker (broadcast): the run is over; the worker process exits.
    Shutdown {
        /// [`SHUTDOWN_OK`] or [`SHUTDOWN_SERVER_ERROR`].
        reason: u8,
    },
    /// Client → shard server: the group-topology handshake (protocol v3). Sent by
    /// workers (`rank < num_workers`) and by the coordinator (`rank == num_workers`,
    /// the extra client slot every shard server reserves). The server refuses clients
    /// whose topology or job configuration differs from its own.
    GroupHello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: u16,
        /// The client's rank: `0..num_workers` for workers, `num_workers` for the
        /// coordinator.
        rank: u32,
        /// Number of workers the sender believes the job has.
        num_workers: u32,
        /// Fingerprint of the sender's `JobConfig` (covers shard count, server count
        /// and delta-pull mode).
        config_digest: u64,
        /// Number of shard servers the sender believes the group has.
        servers: u32,
        /// The index of the shard server the sender believes it is talking to.
        server_index: u32,
    },
    /// Worker → coordinator: the clock half of a push — "iteration `iteration`'s
    /// gradients are with the shard servers; may I proceed?" Carries no gradients:
    /// this is the tiny message that keeps the coordinator off the bulk data path.
    ClockPush {
        /// 1-based iteration number of the push.
        iteration: u64,
        /// Causal trace id (`dssp_core::events::trace_id`), or 0 for untraced.
        trace: u64,
    },
    /// Coordinator → worker: the `OK` of Algorithm 1 for a group run (the group
    /// analogue of [`Message::PushReply`]). Sent immediately or deferred, according to
    /// the policy.
    ClockGrant {
        /// Extra iterations the DSSP controller granted at this push (`r*`).
        granted_extra: u64,
        /// Coordinator clock (total pushes) when the grant was issued.
        version: u64,
    },
    /// Coordinator → worker (deterministic mode only): the worker's `ClockPush` has
    /// been released in canonical order — apply the gradient slices to the shard
    /// servers now and confirm with [`Message::PushApplied`].
    PushGrant,
    /// Worker → coordinator (deterministic mode only): every shard server acked this
    /// iteration's gradient slices; the coordinator may advance the clock and dispatch
    /// the next event.
    PushApplied {
        /// 1-based iteration number of the applied push.
        iteration: u64,
    },
    /// Worker → shard server: the gradient slice covering exactly the server's owned
    /// key range, for one iteration. Always acknowledged with [`Message::SliceAck`]
    /// once applied, so a worker's `Done` implies every slice it pushed is in the
    /// weights.
    PushSlice {
        /// 1-based iteration number of this push.
        iteration: u64,
        /// The layout epoch the sender sliced against. A server at a different epoch
        /// refuses the slice with [`Message::EpochRefused`] instead of applying it to
        /// the wrong key range.
        epoch: u64,
        /// Causal trace id (`dssp_core::events::trace_id`), or 0 for untraced.
        trace: u64,
        /// The gradient run for the server's key range (its owned shards, in order).
        grads: Vec<f32>,
    },
    /// Shard server → worker: the slice of a [`Message::PushSlice`] has been applied.
    SliceAck {
        /// The server's local weight version (slice pushes applied) after this one.
        version: u64,
    },
    /// Client → shard server: a shard-scoped pull. `known_versions` holds the
    /// client's cached versions of exactly the server's owned shards, in owned order;
    /// with `all` set (or an incompatible vector) the server ships every owned shard,
    /// otherwise only the stale ones. Answered with a [`Message::PullReplyDelta`]
    /// whose updates carry **global** shard indices, so the client applies them to its
    /// whole-model buffers with the ordinary global-layout [`apply_pull_reply`] path.
    PullShards {
        /// The client's cached per-shard versions of the server's owned shards.
        known_versions: Vec<u64>,
        /// Ship every owned shard regardless of staleness (full fan-out pull).
        all: bool,
        /// The layout epoch the sender routed against (see [`Message::PushSlice`]).
        epoch: u64,
        /// Causal trace id (`dssp_core::events::trace_id`), or 0 for untraced.
        trace: u64,
    },
    /// Worker → coordinator (deterministic mode only): the worker's pull fan-out
    /// completed on every shard server; mutating events may be dispatched again.
    PullDone,
    /// Coordinator → shard server: report your storage/transport counters (sent once,
    /// when the run ends, so group traces aggregate per-server statistics).
    StatsRequest,
    /// Shard server → coordinator: the counters a [`Message::StatsRequest`] asked for.
    StatsReply {
        /// Gradient-slice pushes applied.
        pushes: u64,
        /// Pulls answered with every owned shard.
        pulls_full: u64,
        /// Pulls answered incrementally.
        pulls_delta: u64,
        /// Bytes written to this server's sockets, frame headers included.
        bytes_sent: u64,
        /// Bytes read from this server's sockets, frame headers included.
        bytes_received: u64,
        /// The layout epoch the server is serving at — the coordinator's restore-skew
        /// check compares this against its own checkpointed epoch.
        epoch: u64,
    },
    /// Worker → coordinator: ask to be admitted to (or rejoin) the run. Sent right
    /// after the handshake; a fresh worker is admitted at clock 0, a restarted worker
    /// at whatever push count the coordinator has recorded for its rank.
    JoinRequest,
    /// Coordinator → worker: admission granted at `clock` (the number of this rank's
    /// pushes the coordinator has already counted). A restarted worker fast-forwards
    /// its batch schedule past `clock` iterations and resumes at `clock + 1`.
    JoinAck {
        /// Pushes already recorded for the joining worker's rank.
        clock: u64,
        /// The group's current layout epoch (0 for single-server runs and
        /// never-migrated groups).
        epoch: u64,
        /// The current shard → server assignment; empty for single-server runs and
        /// epoch-0 groups (where the joiner derives the closed form itself).
        assignment: Vec<u32>,
    },
    /// Coordinator → shard servers (or chaos driver → coordinator): worker `rank` is
    /// gone for good; reap its pending state via the eviction path instead of waiting
    /// on it.
    Evict {
        /// Rank of the departed worker.
        rank: u32,
    },
    /// Coordinator → shard server: a migration toward `epoch` is starting — freeze.
    /// Until the matching [`Message::LayoutUpdate`] or [`Message::MigrateAbort`]
    /// arrives, the server refuses every push and pull with
    /// [`Message::EpochRefused`]. Acked with a control [`Message::MigrateAck`].
    MigratePrepare {
        /// The epoch the group is migrating **to**.
        epoch: u64,
    },
    /// Coordinator → source shard server: extract one migrating shard (weights,
    /// momentum slice and version) and reply with [`Message::MigrateShard`].
    MigrateRequest {
        /// The epoch the group is migrating to (must match the prepared one).
        epoch: u64,
        /// Global index of the shard to extract.
        shard: u32,
        /// Causal trace id of this migration leg (rank slot `num_workers`), or 0.
        trace: u64,
    },
    /// One migrating shard's complete state. Source server → coordinator in reply to
    /// [`Message::MigrateRequest`]; relayed verbatim coordinator → destination server
    /// (servers never dial each other — the coordinator owns the only server links).
    MigrateShard {
        /// The epoch the group is migrating to.
        epoch: u64,
        /// Global index of the shard.
        shard: u32,
        /// The shard's update version (carried so the destination's version vector
        /// stays bitwise-equal to a never-migrated group's).
        version: u64,
        /// Causal trace id of this migration leg (rank slot `num_workers`), or 0.
        trace: u64,
        /// The shard's weights (its full key range).
        weights: Vec<f32>,
        /// The shard's SGD momentum slice, same length as `weights` (empty when the
        /// job runs without momentum).
        velocity: Vec<f32>,
    },
    /// Shard server → coordinator: a migration step landed. `shard` is the staged
    /// shard's index for transfer acks, [`MIGRATE_CONTROL`] for prepare/commit acks.
    MigrateAck {
        /// The epoch the group is migrating to.
        epoch: u64,
        /// The acknowledged shard, or [`MIGRATE_CONTROL`].
        shard: u32,
    },
    /// Coordinator → everyone: the migration **committed** — this is the new layout.
    /// Shard servers rebuild their stores from staged + retained shards and unfreeze;
    /// workers re-route their fan. Servers ack with a control
    /// [`Message::MigrateAck`]; workers adopt silently.
    LayoutUpdate {
        /// The now-current layout epoch.
        epoch: u64,
        /// The now-current shard → server assignment.
        assignment: Vec<u32>,
    },
    /// Coordinator → shard servers: the migration toward `epoch` is **rolled back** —
    /// discard staged shards, unfreeze, keep serving the old layout.
    MigrateAbort {
        /// The abandoned target epoch.
        epoch: u64,
    },
    /// Shard server → client: a typed, retryable refusal of an epoch-mismatched push
    /// or pull. With an empty `assignment` the server is frozen mid-migration (retry
    /// after a short wait); with a non-empty one the server has already committed a
    /// newer layout the client should adopt before retrying.
    EpochRefused {
        /// The epoch the server is at (or migrating to, while frozen).
        epoch: u64,
        /// The committed assignment to adopt, or empty while frozen.
        assignment: Vec<u32>,
    },
    /// Admin client → coordinator: drain shard server `server` (move its shards to a
    /// neighbor at the next round boundary, leaving it empty for decommission).
    Drain {
        /// Index of the server to drain.
        server: u32,
    },
    /// Admin client → coordinator: rebalance the shards over the active servers at
    /// the next round boundary.
    Rebalance,
    /// Coordinator → admin client: the verdict on a [`Message::Drain`] or
    /// [`Message::Rebalance`] command, sent after the migration commits (or refuses).
    AdminAck {
        /// The layout epoch after the command was handled.
        epoch: u64,
        /// Whether the migration committed.
        accepted: bool,
        /// Why the command was refused; empty on success.
        reason: String,
    },
}

/// Payload tag of [`Message::Hello`] (used by the transport's handshake fast path).
pub(crate) const TAG_HELLO: u8 = 1;
/// Payload tag of [`Message::Push`] (used by the transport's pooled-decode fast path).
pub(crate) const TAG_PUSH: u8 = 2;
/// Payload tag of [`Message::PullReply`].
pub(crate) const TAG_PULL_REPLY: u8 = 5;
/// Payload tag of [`Message::PullDelta`].
pub(crate) const TAG_PULL_DELTA: u8 = 8;
/// Payload tag of [`Message::PullReplyDelta`].
pub(crate) const TAG_PULL_REPLY_DELTA: u8 = 9;
/// Payload tag of [`Message::Shutdown`].
pub(crate) const TAG_SHUTDOWN: u8 = 7;
/// Payload tag of [`Message::GroupHello`].
pub(crate) const TAG_GROUP_HELLO: u8 = 10;
/// Payload tag of [`Message::PushSlice`].
pub(crate) const TAG_PUSH_SLICE: u8 = 15;
/// Payload tag of [`Message::PullShards`].
pub(crate) const TAG_PULL_SHARDS: u8 = 17;
/// Payload tag of [`Message::MigrateShard`] (the bulk migration transfer).
pub(crate) const TAG_MIGRATE_SHARD: u8 = 26;

impl Message {
    /// The payload tag identifying this message kind on the wire.
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => TAG_HELLO,
            Message::Push { .. } => TAG_PUSH,
            Message::PushReply { .. } => 3,
            Message::Pull { .. } => 4,
            Message::PullReply { .. } => TAG_PULL_REPLY,
            Message::Done { .. } => 6,
            Message::Shutdown { .. } => TAG_SHUTDOWN,
            Message::PullDelta { .. } => TAG_PULL_DELTA,
            Message::PullReplyDelta { .. } => TAG_PULL_REPLY_DELTA,
            Message::GroupHello { .. } => TAG_GROUP_HELLO,
            Message::ClockPush { .. } => 11,
            Message::ClockGrant { .. } => 12,
            Message::PushGrant => 13,
            Message::PushApplied { .. } => 14,
            Message::PushSlice { .. } => TAG_PUSH_SLICE,
            Message::SliceAck { .. } => 16,
            Message::PullShards { .. } => TAG_PULL_SHARDS,
            Message::PullDone => 18,
            Message::StatsRequest => 19,
            Message::StatsReply { .. } => 20,
            Message::JoinRequest => 21,
            Message::JoinAck { .. } => 22,
            Message::Evict { .. } => 23,
            Message::MigratePrepare { .. } => 24,
            Message::MigrateRequest { .. } => 25,
            Message::MigrateShard { .. } => TAG_MIGRATE_SHARD,
            Message::MigrateAck { .. } => 27,
            Message::LayoutUpdate { .. } => 28,
            Message::MigrateAbort { .. } => 29,
            Message::EpochRefused { .. } => 30,
            Message::Drain { .. } => 31,
            Message::Rebalance => 32,
            Message::AdminAck { .. } => 33,
        }
    }
}

/// A decoding failure. Every variant means the frame is unusable; the connection
/// should be torn down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the message was complete.
    Truncated,
    /// The payload had bytes left over after the message was complete.
    TrailingBytes {
        /// How many bytes were left.
        extra: usize,
    },
    /// The payload tag is not a known message kind.
    UnknownTag(u8),
    /// The frame length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared payload length.
        len: usize,
    },
    /// A `Hello` payload did not open with [`HELLO_MAGIC`].
    BadMagic(u32),
    /// An embedded vector declares more elements than the payload can hold.
    BadLength {
        /// The declared element count.
        declared: usize,
    },
    /// A delta update references a shard the receiver does not have, or its weight
    /// run does not match that shard's key range.
    BadShard {
        /// The offending shard index.
        shard: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message")
            }
            WireError::UnknownTag(tag) => write!(f, "unknown message tag {tag}"),
            WireError::Oversized { len } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
                )
            }
            WireError::BadMagic(m) => write!(f, "bad Hello magic {m:#010x}"),
            WireError::BadLength { declared } => {
                write!(
                    f,
                    "embedded vector declares {declared} elements beyond payload end"
                )
            }
            WireError::BadShard { shard } => {
                write!(
                    f,
                    "delta update for shard {shard} does not fit the receiver"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Bulk little-endian conversions.
//
// On little-endian hosts an `f32`/`u64` run's in-memory bytes *are* its wire bytes, so
// the conversions below degenerate to bounds-checked memcpys. The big-endian fallback
// converts element-wise. Both directions are exercised against the per-element
// reference in the tests, and every decode keeps the strict truncation semantics: the
// byte count is validated before a single element is converted.
// ---------------------------------------------------------------------------

/// Appends the little-endian bytes of `values` to `buf` in one chunk.
fn extend_f32_bytes(buf: &mut Vec<u8>, values: &[f32]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: an f32 slice is valid to view as its raw bytes (alignment of u8 is
        // 1, the length is exact, and the borrow of `values` outlives the view).
        let bytes =
            unsafe { std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), values.len() * 4) };
        buf.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    {
        buf.reserve(values.len() * 4);
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Appends the little-endian bytes of `values` to `buf` in one chunk.
fn extend_u64_bytes(buf: &mut Vec<u8>, values: &[u64]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: as in `extend_f32_bytes` — a plain byte view of the u64 run.
        let bytes =
            unsafe { std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), values.len() * 8) };
        buf.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    {
        buf.reserve(values.len() * 8);
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Appends `bytes.len() / 4` f32s decoded from little-endian `bytes` to `out`.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of 4 (callers validate the byte count
/// against the declared element count first).
pub(crate) fn append_f32s_from_le(bytes: &[u8], out: &mut Vec<f32>) {
    assert_eq!(bytes.len() % 4, 0, "byte run is not a whole number of f32s");
    let n = bytes.len() / 4;
    #[cfg(target_endian = "little")]
    {
        out.reserve(n);
        // SAFETY: `reserve` guarantees capacity for `n` more elements; the unaligned
        // source bytes are memcpy'd into the (aligned) spare capacity, and every bit
        // pattern is a valid f32, so `set_len` exposes only initialized values.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                out.as_mut_ptr().add(out.len()).cast::<u8>(),
                bytes.len(),
            );
            out.set_len(out.len() + n);
        }
    }
    #[cfg(not(target_endian = "little"))]
    {
        out.extend(
            bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap())),
        );
    }
}

/// Overwrites `out` with the f32s decoded from little-endian `bytes`.
///
/// # Panics
///
/// Panics if `bytes.len() != out.len() * 4`.
pub(crate) fn copy_f32s_from_le(bytes: &[u8], out: &mut [f32]) {
    assert_eq!(
        bytes.len(),
        out.len() * 4,
        "byte run / slice length mismatch"
    );
    #[cfg(target_endian = "little")]
    {
        // SAFETY: destination is exactly `bytes.len()` bytes of initialized f32s; the
        // memcpy handles the (possibly unaligned) source.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                out.as_mut_ptr().cast::<u8>(),
                bytes.len(),
            );
        }
    }
    #[cfg(not(target_endian = "little"))]
    {
        for (chunk, v) in bytes.chunks_exact(4).zip(out.iter_mut()) {
            *v = f32::from_le_bytes(chunk.try_into().unwrap());
        }
    }
}

/// Appends `bytes.len() / 8` u64s decoded from little-endian `bytes` to `out`.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of 8.
pub(crate) fn append_u64s_from_le(bytes: &[u8], out: &mut Vec<u64>) {
    assert_eq!(bytes.len() % 8, 0, "byte run is not a whole number of u64s");
    let n = bytes.len() / 8;
    #[cfg(target_endian = "little")]
    {
        out.reserve(n);
        // SAFETY: as in `append_f32s_from_le`.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                out.as_mut_ptr().add(out.len()).cast::<u8>(),
                bytes.len(),
            );
            out.set_len(out.len() + n);
        }
    }
    #[cfg(not(target_endian = "little"))]
    {
        out.extend(
            bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap())),
        );
    }
}

/// Appends the little-endian bytes of `values` to `buf` in one chunk.
fn extend_u32_bytes(buf: &mut Vec<u8>, values: &[u32]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: as in `extend_f32_bytes` — a plain byte view of the u32 run.
        let bytes =
            unsafe { std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), values.len() * 4) };
        buf.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    {
        buf.reserve(values.len() * 4);
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Appends `bytes.len() / 4` u32s decoded from little-endian `bytes` to `out`.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of 4.
pub(crate) fn append_u32s_from_le(bytes: &[u8], out: &mut Vec<u32>) {
    assert_eq!(bytes.len() % 4, 0, "byte run is not a whole number of u32s");
    let n = bytes.len() / 4;
    #[cfg(target_endian = "little")]
    {
        out.reserve(n);
        // SAFETY: as in `append_f32s_from_le`.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                out.as_mut_ptr().add(out.len()).cast::<u8>(),
                bytes.len(),
            );
            out.set_len(out.len() + n);
        }
    }
    #[cfg(not(target_endian = "little"))]
    {
        out.extend(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        );
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Serializes `msg` into a payload (tag + fields, no length prefix), appending to
/// `buf`.
pub fn encode(msg: &Message, buf: &mut Vec<u8>) {
    match msg {
        Message::Hello {
            version,
            rank,
            num_workers,
            config_digest,
        } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&HELLO_MAGIC.to_le_bytes());
            buf.extend_from_slice(&version.to_le_bytes());
            buf.extend_from_slice(&rank.to_le_bytes());
            buf.extend_from_slice(&num_workers.to_le_bytes());
            buf.extend_from_slice(&config_digest.to_le_bytes());
        }
        Message::Push {
            iteration,
            trace,
            grads,
        } => encode_push(buf, *iteration, *trace, grads),
        Message::PushReply {
            granted_extra,
            version,
        } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&granted_extra.to_le_bytes());
            buf.extend_from_slice(&version.to_le_bytes());
        }
        Message::Pull { trace } => encode_pull(buf, *trace),
        Message::PullReply {
            clock,
            shard_versions,
            weights,
        } => encode_pull_reply(buf, *clock, shard_versions, weights),
        Message::PullDelta {
            trace,
            known_versions,
        } => encode_pull_delta(buf, *trace, known_versions),
        Message::PullReplyDelta { clock, updates } => encode_pull_reply_delta(
            buf,
            *clock,
            updates
                .iter()
                .map(|u| (u.shard, u.version, u.weights.as_slice())),
        ),
        Message::Done {
            iterations,
            epochs,
            waiting_time_s,
        } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&iterations.to_le_bytes());
            buf.extend_from_slice(&epochs.to_le_bytes());
            buf.extend_from_slice(&waiting_time_s.to_bits().to_le_bytes());
        }
        Message::Shutdown { reason } => {
            buf.push(msg.tag());
            buf.push(*reason);
        }
        Message::GroupHello {
            version,
            rank,
            num_workers,
            config_digest,
            servers,
            server_index,
        } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&HELLO_MAGIC.to_le_bytes());
            buf.extend_from_slice(&version.to_le_bytes());
            buf.extend_from_slice(&rank.to_le_bytes());
            buf.extend_from_slice(&num_workers.to_le_bytes());
            buf.extend_from_slice(&config_digest.to_le_bytes());
            buf.extend_from_slice(&servers.to_le_bytes());
            buf.extend_from_slice(&server_index.to_le_bytes());
        }
        Message::ClockPush { iteration, trace } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&iteration.to_le_bytes());
            buf.extend_from_slice(&trace.to_le_bytes());
        }
        Message::ClockGrant {
            granted_extra,
            version,
        } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&granted_extra.to_le_bytes());
            buf.extend_from_slice(&version.to_le_bytes());
        }
        Message::PushGrant => buf.push(msg.tag()),
        Message::PushApplied { iteration } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&iteration.to_le_bytes());
        }
        Message::PushSlice {
            iteration,
            epoch,
            trace,
            grads,
        } => encode_push_slice(buf, *iteration, *epoch, *trace, grads),
        Message::SliceAck { version } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&version.to_le_bytes());
        }
        Message::PullShards {
            known_versions,
            all,
            epoch,
            trace,
        } => encode_pull_shards(buf, known_versions, *all, *epoch, *trace),
        Message::PullDone => buf.push(msg.tag()),
        Message::StatsRequest => buf.push(msg.tag()),
        Message::StatsReply {
            pushes,
            pulls_full,
            pulls_delta,
            bytes_sent,
            bytes_received,
            epoch,
        } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&pushes.to_le_bytes());
            buf.extend_from_slice(&pulls_full.to_le_bytes());
            buf.extend_from_slice(&pulls_delta.to_le_bytes());
            buf.extend_from_slice(&bytes_sent.to_le_bytes());
            buf.extend_from_slice(&bytes_received.to_le_bytes());
            buf.extend_from_slice(&epoch.to_le_bytes());
        }
        Message::JoinRequest => buf.push(msg.tag()),
        Message::JoinAck {
            clock,
            epoch,
            assignment,
        } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&clock.to_le_bytes());
            buf.extend_from_slice(&epoch.to_le_bytes());
            put_u32s(buf, assignment);
        }
        Message::Evict { rank } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&rank.to_le_bytes());
        }
        Message::MigratePrepare { epoch } | Message::MigrateAbort { epoch } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&epoch.to_le_bytes());
        }
        Message::MigrateRequest {
            epoch,
            shard,
            trace,
        } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&epoch.to_le_bytes());
            buf.extend_from_slice(&shard.to_le_bytes());
            buf.extend_from_slice(&trace.to_le_bytes());
        }
        Message::MigrateAck { epoch, shard } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&epoch.to_le_bytes());
            buf.extend_from_slice(&shard.to_le_bytes());
        }
        Message::MigrateShard {
            epoch,
            shard,
            version,
            trace,
            weights,
            velocity,
        } => encode_migrate_shard(buf, *epoch, *shard, *version, *trace, weights, velocity),
        Message::LayoutUpdate { epoch, assignment }
        | Message::EpochRefused { epoch, assignment } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&epoch.to_le_bytes());
            put_u32s(buf, assignment);
        }
        Message::Drain { server } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&server.to_le_bytes());
        }
        Message::Rebalance => buf.push(msg.tag()),
        Message::AdminAck {
            epoch,
            accepted,
            reason,
        } => {
            buf.push(msg.tag());
            buf.extend_from_slice(&epoch.to_le_bytes());
            buf.push(u8::from(*accepted));
            let len = u32::try_from(reason.len()).expect("reason fits in u32");
            buf.extend_from_slice(&len.to_le_bytes());
            buf.extend_from_slice(reason.as_bytes());
        }
    }
}

/// Appends a [`Message::Push`] payload built from a borrowed gradient slice — the
/// worker's zero-copy push path (no owned `Message` is materialized).
pub fn encode_push(buf: &mut Vec<u8>, iteration: u64, trace: u64, grads: &[f32]) {
    buf.push(TAG_PUSH);
    buf.extend_from_slice(&iteration.to_le_bytes());
    buf.extend_from_slice(&trace.to_le_bytes());
    put_f32s(buf, grads);
}

/// Appends a [`Message::Pull`] payload.
pub fn encode_pull(buf: &mut Vec<u8>, trace: u64) {
    buf.push(4);
    buf.extend_from_slice(&trace.to_le_bytes());
}

/// Appends a [`Message::PullDelta`] payload built from a borrowed version slice.
pub fn encode_pull_delta(buf: &mut Vec<u8>, trace: u64, known_versions: &[u64]) {
    buf.push(TAG_PULL_DELTA);
    buf.extend_from_slice(&trace.to_le_bytes());
    put_u64s(buf, known_versions);
}

/// Appends a [`Message::PushSlice`] payload built from a borrowed gradient slice — a
/// group worker's zero-copy push path: the grads are the sub-slice of its full
/// gradient buffer covering one shard server's key range under layout `epoch`.
pub fn encode_push_slice(buf: &mut Vec<u8>, iteration: u64, epoch: u64, trace: u64, grads: &[f32]) {
    buf.push(TAG_PUSH_SLICE);
    buf.extend_from_slice(&iteration.to_le_bytes());
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&trace.to_le_bytes());
    put_f32s(buf, grads);
}

/// Appends a [`Message::PullShards`] payload built from a borrowed version slice (the
/// sub-range of the client's global version cache owned by one shard server under
/// layout `epoch`).
pub fn encode_pull_shards(
    buf: &mut Vec<u8>,
    known_versions: &[u64],
    all: bool,
    epoch: u64,
    trace: u64,
) {
    buf.push(TAG_PULL_SHARDS);
    buf.push(u8::from(all));
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&trace.to_le_bytes());
    put_u64s(buf, known_versions);
}

/// Appends a [`Message::MigrateShard`] payload from borrowed store state — the source
/// server's zero-copy transfer path: weights and the momentum slice are memcpy'd
/// straight out of the store and optimizer into the frame buffer.
pub fn encode_migrate_shard(
    buf: &mut Vec<u8>,
    epoch: u64,
    shard: u32,
    version: u64,
    trace: u64,
    weights: &[f32],
    velocity: &[f32],
) {
    buf.push(TAG_MIGRATE_SHARD);
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&shard.to_le_bytes());
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&trace.to_le_bytes());
    put_f32s(buf, weights);
    put_f32s(buf, velocity);
}

/// Appends a [`Message::PullReply`] payload built from borrowed server state — the
/// server's zero-copy full-pull path.
pub fn encode_pull_reply(buf: &mut Vec<u8>, clock: u64, shard_versions: &[u64], weights: &[f32]) {
    buf.push(TAG_PULL_REPLY);
    buf.extend_from_slice(&clock.to_le_bytes());
    put_u64s(buf, shard_versions);
    put_f32s(buf, weights);
}

/// Appends a [`Message::PullReplyDelta`] payload from an iterator of
/// `(shard, version, weights)` updates — the server's zero-copy delta path (shard
/// weights are memcpy'd straight from the store into the frame buffer).
pub fn encode_pull_reply_delta<'a>(
    buf: &mut Vec<u8>,
    clock: u64,
    updates: impl Iterator<Item = (u32, u64, &'a [f32])>,
) {
    buf.push(TAG_PULL_REPLY_DELTA);
    buf.extend_from_slice(&clock.to_le_bytes());
    // The update count is only known after iterating; write a placeholder and patch.
    let count_at = buf.len();
    buf.extend_from_slice(&0u32.to_le_bytes());
    let mut count: u32 = 0;
    for (shard, version, weights) in updates {
        buf.extend_from_slice(&shard.to_le_bytes());
        buf.extend_from_slice(&version.to_le_bytes());
        put_f32s(buf, weights);
        count += 1;
    }
    buf[count_at..count_at + 4].copy_from_slice(&count.to_le_bytes());
}

fn put_f32s(buf: &mut Vec<u8>, values: &[f32]) {
    let len = u32::try_from(values.len()).expect("vector fits in u32");
    buf.extend_from_slice(&len.to_le_bytes());
    extend_f32_bytes(buf, values);
}

fn put_u64s(buf: &mut Vec<u8>, values: &[u64]) {
    let len = u32::try_from(values.len()).expect("vector fits in u32");
    buf.extend_from_slice(&len.to_le_bytes());
    extend_u64_bytes(buf, values);
}

fn put_u32s(buf: &mut Vec<u8>, values: &[u32]) {
    let len = u32::try_from(values.len()).expect("vector fits in u32");
    buf.extend_from_slice(&len.to_le_bytes());
    extend_u32_bytes(buf, values);
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Deserializes one payload produced by [`encode`]. Strict: rejects unknown tags,
/// truncation and trailing bytes.
pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    let msg = match tag {
        TAG_HELLO => {
            let magic = r.u32()?;
            if magic != HELLO_MAGIC {
                return Err(WireError::BadMagic(magic));
            }
            Message::Hello {
                version: r.u16()?,
                rank: r.u32()?,
                num_workers: r.u32()?,
                config_digest: r.u64()?,
            }
        }
        TAG_GROUP_HELLO => {
            let magic = r.u32()?;
            if magic != HELLO_MAGIC {
                return Err(WireError::BadMagic(magic));
            }
            Message::GroupHello {
                version: r.u16()?,
                rank: r.u32()?,
                num_workers: r.u32()?,
                config_digest: r.u64()?,
                servers: r.u32()?,
                server_index: r.u32()?,
            }
        }
        11 => Message::ClockPush {
            iteration: r.u64()?,
            trace: r.u64()?,
        },
        12 => Message::ClockGrant {
            granted_extra: r.u64()?,
            version: r.u64()?,
        },
        13 => Message::PushGrant,
        14 => Message::PushApplied {
            iteration: r.u64()?,
        },
        TAG_PUSH_SLICE => Message::PushSlice {
            iteration: r.u64()?,
            epoch: r.u64()?,
            trace: r.u64()?,
            grads: r.f32s()?,
        },
        16 => Message::SliceAck { version: r.u64()? },
        TAG_PULL_SHARDS => {
            let all = match r.u8()? {
                0 => false,
                1 => true,
                other => return Err(WireError::UnknownTag(other)),
            };
            Message::PullShards {
                all,
                epoch: r.u64()?,
                trace: r.u64()?,
                known_versions: r.u64s()?,
            }
        }
        18 => Message::PullDone,
        19 => Message::StatsRequest,
        21 => Message::JoinRequest,
        22 => Message::JoinAck {
            clock: r.u64()?,
            epoch: r.u64()?,
            assignment: r.u32s()?,
        },
        23 => Message::Evict { rank: r.u32()? },
        20 => Message::StatsReply {
            pushes: r.u64()?,
            pulls_full: r.u64()?,
            pulls_delta: r.u64()?,
            bytes_sent: r.u64()?,
            bytes_received: r.u64()?,
            epoch: r.u64()?,
        },
        24 => Message::MigratePrepare { epoch: r.u64()? },
        25 => Message::MigrateRequest {
            epoch: r.u64()?,
            shard: r.u32()?,
            trace: r.u64()?,
        },
        TAG_MIGRATE_SHARD => Message::MigrateShard {
            epoch: r.u64()?,
            shard: r.u32()?,
            version: r.u64()?,
            trace: r.u64()?,
            weights: r.f32s()?,
            velocity: r.f32s()?,
        },
        27 => Message::MigrateAck {
            epoch: r.u64()?,
            shard: r.u32()?,
        },
        28 => Message::LayoutUpdate {
            epoch: r.u64()?,
            assignment: r.u32s()?,
        },
        29 => Message::MigrateAbort { epoch: r.u64()? },
        30 => Message::EpochRefused {
            epoch: r.u64()?,
            assignment: r.u32s()?,
        },
        31 => Message::Drain { server: r.u32()? },
        32 => Message::Rebalance,
        33 => {
            let epoch = r.u64()?;
            let accepted = match r.u8()? {
                0 => false,
                1 => true,
                other => return Err(WireError::UnknownTag(other)),
            };
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            Message::AdminAck {
                epoch,
                accepted,
                reason: String::from_utf8_lossy(bytes).into_owned(),
            }
        }
        TAG_PUSH => Message::Push {
            iteration: r.u64()?,
            trace: r.u64()?,
            grads: r.f32s()?,
        },
        3 => Message::PushReply {
            granted_extra: r.u64()?,
            version: r.u64()?,
        },
        4 => Message::Pull { trace: r.u64()? },
        TAG_PULL_REPLY => Message::PullReply {
            clock: r.u64()?,
            shard_versions: r.u64s()?,
            weights: r.f32s()?,
        },
        6 => Message::Done {
            iterations: r.u64()?,
            epochs: r.u64()?,
            waiting_time_s: f64::from_bits(r.u64()?),
        },
        TAG_SHUTDOWN => Message::Shutdown { reason: r.u8()? },
        TAG_PULL_DELTA => Message::PullDelta {
            trace: r.u64()?,
            known_versions: r.u64s()?,
        },
        TAG_PULL_REPLY_DELTA => {
            let clock = r.u64()?;
            let count = r.delta_update_count()?;
            let mut updates = Vec::with_capacity(count);
            for _ in 0..count {
                let shard = r.u32()?;
                let version = r.u64()?;
                let weights = r.f32s()?;
                updates.push(ShardUpdate {
                    shard,
                    version,
                    weights,
                });
            }
            Message::PullReplyDelta { clock, updates }
        }
        other => return Err(WireError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(msg)
}

/// Decodes a [`Message::Push`] payload into a caller-owned gradient buffer (cleared
/// first; no allocation once warm) and returns the push's `(iteration, trace)` pair.
/// Same strictness as [`decode`].
///
/// Returns [`WireError::UnknownTag`] if the payload is not a `Push`.
pub fn decode_push_into(payload: &[u8], grads: &mut Vec<f32>) -> Result<(u64, u64), WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    if tag != TAG_PUSH {
        return Err(WireError::UnknownTag(tag));
    }
    let iteration = r.u64()?;
    let trace = r.u64()?;
    grads.clear();
    r.f32s_into(grads)?;
    r.finish()?;
    Ok((iteration, trace))
}

/// Decodes a [`Message::PullDelta`] payload into a caller-owned version buffer
/// (cleared first; no allocation once warm) and returns the pull's trace id. Same
/// strictness as [`decode`].
///
/// Returns [`WireError::UnknownTag`] if the payload is not a `PullDelta`.
pub fn decode_pull_delta_into(payload: &[u8], known: &mut Vec<u64>) -> Result<u64, WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    if tag != TAG_PULL_DELTA {
        return Err(WireError::UnknownTag(tag));
    }
    let trace = r.u64()?;
    known.clear();
    r.u64s_into(known)?;
    r.finish()?;
    Ok(trace)
}

/// Decodes a [`Message::PushSlice`] payload into a caller-owned gradient buffer
/// (cleared first; no allocation once warm) and returns the push's
/// `(iteration, epoch, trace)` triple. Same strictness as [`decode`].
///
/// Returns [`WireError::UnknownTag`] if the payload is not a `PushSlice`.
pub fn decode_push_slice_into(
    payload: &[u8],
    grads: &mut Vec<f32>,
) -> Result<(u64, u64, u64), WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    if tag != TAG_PUSH_SLICE {
        return Err(WireError::UnknownTag(tag));
    }
    let iteration = r.u64()?;
    let epoch = r.u64()?;
    let trace = r.u64()?;
    grads.clear();
    r.f32s_into(grads)?;
    r.finish()?;
    Ok((iteration, epoch, trace))
}

/// Decodes a [`Message::PullShards`] payload into a caller-owned version buffer
/// (cleared first; no allocation once warm) and returns the `(all, epoch, trace)`
/// triple. Same strictness as [`decode`].
///
/// Returns [`WireError::UnknownTag`] if the payload is not a `PullShards`.
pub fn decode_pull_shards_into(
    payload: &[u8],
    known: &mut Vec<u64>,
) -> Result<(bool, u64, u64), WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    if tag != TAG_PULL_SHARDS {
        return Err(WireError::UnknownTag(tag));
    }
    let all = match r.u8()? {
        0 => false,
        1 => true,
        other => return Err(WireError::UnknownTag(other)),
    };
    let epoch = r.u64()?;
    let trace = r.u64()?;
    known.clear();
    r.u64s_into(known)?;
    r.finish()?;
    Ok((all, epoch, trace))
}

/// What [`apply_pull_reply`] reconstructed from a pull reply payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PullApplied {
    /// Server weight version at reply time.
    pub clock: u64,
    /// Whether the reply was a full [`Message::PullReply`] (versus a delta).
    pub full: bool,
    /// Number of shards whose weights this reply carried.
    pub shards_updated: usize,
}

/// Applies a pull reply payload — full ([`Message::PullReply`]) or incremental
/// ([`Message::PullReplyDelta`]) — to a worker's cached weight vector and per-shard
/// version vector, in place. This is the worker's zero-copy receive path: a full reply
/// overwrites both buffers wholesale; a delta memcpys each update into its shard's key
/// range (derived via [`dssp_ps::shard_range`]) and bumps that shard's cached version.
///
/// Strict like [`decode`], plus layout validation: a delta against an empty cache, an
/// out-of-range shard index, or a weight run that does not exactly fill its shard's
/// key range is rejected with [`WireError::BadShard`].
///
/// Returns [`WireError::UnknownTag`] if the payload is neither reply kind.
pub fn apply_pull_reply(
    payload: &[u8],
    weights: &mut Vec<f32>,
    versions: &mut Vec<u64>,
) -> Result<PullApplied, WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    match tag {
        TAG_PULL_REPLY => {
            let clock = r.u64()?;
            versions.clear();
            r.u64s_into(versions)?;
            weights.clear();
            r.f32s_into(weights)?;
            r.finish()?;
            Ok(PullApplied {
                clock,
                full: true,
                shards_updated: versions.len(),
            })
        }
        TAG_PULL_REPLY_DELTA => {
            let clock = r.u64()?;
            let count = r.delta_update_count()?;
            for _ in 0..count {
                let shard = r.u32()?;
                let version = r.u64()?;
                let declared = r.f32_run_len()?;
                let bytes = r.take(declared * 4)?;
                if (shard as usize) >= versions.len() {
                    return Err(WireError::BadShard { shard });
                }
                let (start, end) =
                    dssp_ps::shard_range(weights.len(), versions.len(), shard as usize);
                if declared != end - start {
                    return Err(WireError::BadShard { shard });
                }
                copy_f32s_from_le(bytes, &mut weights[start..end]);
                versions[shard as usize] = version;
            }
            r.finish()?;
            Ok(PullApplied {
                clock,
                full: false,
                shards_updated: count,
            })
        }
        other => Err(WireError::UnknownTag(other)),
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame to `w`, reusing `scratch` as the serialization
/// buffer (cleared first). The header and payload go out in one vectored write.
pub fn write_frame<W: std::io::Write>(
    w: &mut W,
    msg: &Message,
    scratch: &mut Vec<u8>,
) -> std::io::Result<()> {
    scratch.clear();
    encode(msg, scratch);
    write_frame_payload(w, scratch)
}

/// Writes an already-encoded payload as one length-prefixed frame, using a vectored
/// `write_all` so header and payload reach the socket in a single syscall without
/// being copied into a combined buffer first.
pub fn write_frame_payload<W: std::io::Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).expect("payload fits in u32");
    let header = len.to_le_bytes();
    let mut head: &[u8] = &header;
    let mut body: &[u8] = payload;
    while !head.is_empty() || !body.is_empty() {
        let written = if head.is_empty() {
            w.write(body)
        } else {
            let slices = [std::io::IoSlice::new(head), std::io::IoSlice::new(body)];
            w.write_vectored(&slices)
        };
        match written {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "failed to write whole frame",
                ))
            }
            Ok(n) => {
                let from_head = n.min(head.len());
                head = &head[from_head..];
                body = &body[n - from_head..];
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    w.flush()
}

/// Reads one length-prefixed frame from `r` into the caller-owned `payload` buffer
/// (cleared first; no allocation once the buffer reached the connection's steady-state
/// frame size) and returns the payload length. Returns
/// [`crate::NetError::Disconnected`] on a clean EOF at a frame boundary.
pub fn read_frame_payload<R: std::io::Read>(
    r: &mut R,
    payload: &mut Vec<u8>,
) -> Result<usize, crate::NetError> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Err(crate::NetError::Disconnected)
        }
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized { len }.into());
    }
    // No clear() first: resize alone truncates or zero-extends to exactly `len`, so a
    // steady-state constant-size frame costs no memset before read_exact overwrites it.
    payload.resize(len, 0);
    r.read_exact(payload)?;
    Ok(len)
}

/// Reads one length-prefixed frame from `r` and decodes it. Returns
/// [`crate::NetError::Disconnected`] on a clean EOF at a frame boundary.
pub fn read_frame<R: std::io::Read>(r: &mut R) -> Result<Message, crate::NetError> {
    let mut payload = Vec::new();
    read_frame_payload(r, &mut payload)?;
    Ok(decode(&payload)?)
}

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an f32 run's length prefix and validates it against the remaining bytes.
    fn f32_run_len(&mut self) -> Result<usize, WireError> {
        let declared = self.u32()? as usize;
        if declared.saturating_mul(4) > self.bytes.len() - self.pos {
            return Err(WireError::BadLength { declared });
        }
        Ok(declared)
    }

    fn f32s(&mut self) -> Result<Vec<f32>, WireError> {
        let mut out = Vec::new();
        self.f32s_into(&mut out)?;
        Ok(out)
    }

    /// Appends a length-prefixed f32 run to `out` with one bulk conversion.
    fn f32s_into(&mut self, out: &mut Vec<f32>) -> Result<(), WireError> {
        let declared = self.f32_run_len()?;
        let bytes = self.take(declared * 4)?;
        append_f32s_from_le(bytes, out);
        Ok(())
    }

    fn u32s(&mut self) -> Result<Vec<u32>, WireError> {
        let declared = self.u32()? as usize;
        if declared.saturating_mul(4) > self.bytes.len() - self.pos {
            return Err(WireError::BadLength { declared });
        }
        let bytes = self.take(declared * 4)?;
        let mut out = Vec::new();
        append_u32s_from_le(bytes, &mut out);
        Ok(out)
    }

    fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let mut out = Vec::new();
        self.u64s_into(&mut out)?;
        Ok(out)
    }

    /// Appends a length-prefixed u64 run to `out` with one bulk conversion.
    fn u64s_into(&mut self, out: &mut Vec<u64>) -> Result<(), WireError> {
        let declared = self.u32()? as usize;
        if declared.saturating_mul(8) > self.bytes.len() - self.pos {
            return Err(WireError::BadLength { declared });
        }
        let bytes = self.take(declared * 8)?;
        append_u64s_from_le(bytes, out);
        Ok(())
    }

    /// Reads a delta-reply update count and validates it against the minimum encoded
    /// size of an update (shard + version + empty weight run = 16 bytes), so an absurd
    /// count is rejected before any allocation.
    fn delta_update_count(&mut self) -> Result<usize, WireError> {
        let declared = self.u32()? as usize;
        if declared.saturating_mul(16) > self.bytes.len() - self.pos {
            return Err(WireError::BadLength { declared });
        }
        Ok(declared)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.bytes.len() - self.pos,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Message) -> Message {
        let mut buf = Vec::new();
        encode(msg, &mut buf);
        decode(&buf).expect("decodes")
    }

    #[test]
    fn every_message_kind_round_trips() {
        let messages = vec![
            Message::Hello {
                version: PROTOCOL_VERSION,
                rank: 2,
                num_workers: 4,
                config_digest: 0xdead_beef_cafe_f00d,
            },
            Message::Push {
                iteration: 7,
                trace: (2u64 << 32) | 7,
                grads: vec![1.5, -0.25, f32::MIN_POSITIVE, -0.0],
            },
            Message::PushReply {
                granted_extra: 3,
                version: 41,
            },
            Message::Pull { trace: 0 },
            Message::Pull { trace: u64::MAX },
            Message::PullReply {
                clock: 99,
                shard_versions: vec![99, 98, 99],
                weights: vec![0.125; 9],
            },
            Message::PullDelta {
                trace: (2u64 << 32) | 8,
                known_versions: vec![4, 0, u64::MAX],
            },
            Message::PullReplyDelta {
                clock: 12,
                updates: vec![
                    ShardUpdate {
                        shard: 0,
                        version: 12,
                        weights: vec![1.0, 2.0],
                    },
                    ShardUpdate {
                        shard: 3,
                        version: 11,
                        weights: vec![],
                    },
                ],
            },
            Message::Done {
                iterations: 24,
                epochs: 2,
                waiting_time_s: 1.75,
            },
            Message::Shutdown {
                reason: SHUTDOWN_OK,
            },
            Message::GroupHello {
                version: PROTOCOL_VERSION,
                rank: 3,
                num_workers: 3, // the coordinator slot
                config_digest: 0x0123_4567_89ab_cdef,
                servers: 4,
                server_index: 2,
            },
            Message::ClockPush {
                iteration: 17,
                trace: (1u64 << 32) | 17,
            },
            Message::ClockGrant {
                granted_extra: 2,
                version: 40,
            },
            Message::PushGrant,
            Message::PushApplied { iteration: 17 },
            Message::PushSlice {
                iteration: 9,
                epoch: 1,
                trace: (3u64 << 32) | 9,
                grads: vec![0.5, -2.0, 1e-6],
            },
            Message::SliceAck { version: 9 },
            Message::PullShards {
                known_versions: vec![7, 7, 8],
                all: false,
                epoch: 0,
                trace: (3u64 << 32) | 10,
            },
            Message::PullShards {
                known_versions: vec![],
                all: true,
                epoch: 3,
                trace: 0,
            },
            Message::PullDone,
            Message::StatsRequest,
            Message::StatsReply {
                pushes: 100,
                pulls_full: 3,
                pulls_delta: 97,
                bytes_sent: 1 << 33,
                bytes_received: 12345,
                epoch: 2,
            },
            Message::JoinRequest,
            Message::JoinAck {
                clock: 42,
                epoch: 1,
                assignment: vec![0, 0, 1, 1],
            },
            Message::JoinAck {
                clock: 0,
                epoch: 0,
                assignment: vec![],
            },
            Message::Evict { rank: 2 },
            Message::MigratePrepare { epoch: 5 },
            Message::MigrateRequest {
                epoch: 5,
                shard: 3,
                trace: (4u64 << 32) | 1,
            },
            Message::MigrateShard {
                epoch: 5,
                shard: 3,
                version: 120,
                trace: (4u64 << 32) | 1,
                weights: vec![1.0, -0.5, f32::MIN_POSITIVE],
                velocity: vec![0.25, -0.0, 3e-12],
            },
            Message::MigrateShard {
                epoch: 5,
                shard: 3,
                version: 120,
                trace: 0,
                weights: vec![2.0],
                velocity: vec![], // momentum-free job
            },
            Message::MigrateAck { epoch: 5, shard: 3 },
            Message::MigrateAck {
                epoch: 5,
                shard: MIGRATE_CONTROL,
            },
            Message::LayoutUpdate {
                epoch: 5,
                assignment: vec![0, 1, 1, 1],
            },
            Message::MigrateAbort { epoch: 5 },
            Message::EpochRefused {
                epoch: 5,
                assignment: vec![],
            },
            Message::EpochRefused {
                epoch: 5,
                assignment: vec![2, 2, 0, 0],
            },
            Message::Drain { server: 2 },
            Message::Rebalance,
            Message::AdminAck {
                epoch: 6,
                accepted: true,
                reason: String::new(),
            },
            Message::AdminAck {
                epoch: 5,
                accepted: false,
                reason: "server 2 is already drained".into(),
            },
        ];
        for msg in &messages {
            assert_eq!(&round_trip(msg), msg);
        }
    }

    #[test]
    fn group_borrowed_encoders_match_the_owned_message_encoding() {
        let grads = vec![0.25, -0.75];
        let trace = (6u64 << 32) | 4;
        let mut borrowed = Vec::new();
        encode_push_slice(&mut borrowed, 4, 2, trace, &grads);
        let mut owned = Vec::new();
        encode(
            &Message::PushSlice {
                iteration: 4,
                epoch: 2,
                trace,
                grads: grads.clone(),
            },
            &mut owned,
        );
        assert_eq!(borrowed, owned);

        let known = vec![1u64, 9];
        for all in [false, true] {
            let mut borrowed = Vec::new();
            encode_pull_shards(&mut borrowed, &known, all, 1, trace);
            let mut owned = Vec::new();
            encode(
                &Message::PullShards {
                    known_versions: known.clone(),
                    all,
                    epoch: 1,
                    trace,
                },
                &mut owned,
            );
            assert_eq!(borrowed, owned);
        }

        let weights = vec![0.5, f32::NAN];
        let velocity = vec![-0.25, 0.0];
        let mut borrowed = Vec::new();
        encode_migrate_shard(&mut borrowed, 3, 7, 55, trace, &weights, &velocity);
        let mut owned = Vec::new();
        encode(
            &Message::MigrateShard {
                epoch: 3,
                shard: 7,
                version: 55,
                trace,
                weights: weights.clone(),
                velocity: velocity.clone(),
            },
            &mut owned,
        );
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn group_pooled_decoders_match_the_owned_decode() {
        let mut buf = Vec::new();
        encode_push_slice(&mut buf, 6, 2, 77, &[3.0, -4.0]);
        let mut grads = vec![1.0; 5]; // stale content must be cleared
        assert_eq!(decode_push_slice_into(&buf, &mut grads), Ok((6, 2, 77)));
        assert_eq!(grads, vec![3.0, -4.0]);
        assert_eq!(
            decode_push_slice_into(&[4u8], &mut grads),
            Err(WireError::UnknownTag(4))
        );

        let mut buf = Vec::new();
        encode_pull_shards(&mut buf, &[2, 3], true, 1, 78);
        let mut known = vec![0u64; 4];
        assert_eq!(decode_pull_shards_into(&buf, &mut known), Ok((true, 1, 78)));
        assert_eq!(known, vec![2, 3]);
        // A corrupt bool discriminant is rejected, not guessed at.
        buf[1] = 7;
        assert!(decode_pull_shards_into(&buf, &mut known).is_err());
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn special_floats_survive_bitwise() {
        let grads = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 1e-42];
        let mut buf = Vec::new();
        encode(
            &Message::Push {
                iteration: 1,
                trace: 0,
                grads: grads.clone(),
            },
            &mut buf,
        );
        match decode(&buf).unwrap() {
            Message::Push { grads: got, .. } => {
                assert_eq!(got.len(), grads.len());
                for (a, b) in got.iter().zip(&grads) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn bulk_conversions_match_the_per_element_reference() {
        let values: Vec<f32> = (0..257)
            .map(|i| f32::from_bits(0x9e37_79b9_u32.wrapping_mul(i as u32 + 1)))
            .collect();
        let mut bulk = Vec::new();
        extend_f32_bytes(&mut bulk, &values);
        let mut reference = Vec::new();
        for v in &values {
            reference.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(bulk, reference);
        let mut decoded = Vec::new();
        append_f32s_from_le(&bulk, &mut decoded);
        assert_eq!(
            decoded.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let u64s: Vec<u64> = (0..129).map(|i| u64::MAX / 3 + i * 0x1_0001).collect();
        let mut bulk = Vec::new();
        extend_u64_bytes(&mut bulk, &u64s);
        let mut reference = Vec::new();
        for v in &u64s {
            reference.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(bulk, reference);
        let mut decoded = Vec::new();
        append_u64s_from_le(&bulk, &mut decoded);
        assert_eq!(decoded, u64s);

        let u32s: Vec<u32> = (0..67).map(|i| u32::MAX / 7 + i * 0x101).collect();
        let mut bulk = Vec::new();
        extend_u32_bytes(&mut bulk, &u32s);
        let mut reference = Vec::new();
        for v in &u32s {
            reference.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(bulk, reference);
        let mut decoded = Vec::new();
        append_u32s_from_le(&bulk, &mut decoded);
        assert_eq!(decoded, u32s);
    }

    #[test]
    fn borrowed_encoders_match_the_owned_message_encoding() {
        let grads = vec![0.5, -1.5, 3.25];
        let trace = (1u64 << 32) | 9;
        let mut borrowed = Vec::new();
        encode_push(&mut borrowed, 9, trace, &grads);
        let mut owned = Vec::new();
        encode(
            &Message::Push {
                iteration: 9,
                trace,
                grads: grads.clone(),
            },
            &mut owned,
        );
        assert_eq!(borrowed, owned);

        let mut borrowed = Vec::new();
        encode_pull(&mut borrowed, trace);
        let mut owned = Vec::new();
        encode(&Message::Pull { trace }, &mut owned);
        assert_eq!(borrowed, owned);

        let known = vec![3u64, 7, 0];
        let mut borrowed = Vec::new();
        encode_pull_delta(&mut borrowed, trace, &known);
        let mut owned = Vec::new();
        encode(
            &Message::PullDelta {
                trace,
                known_versions: known,
            },
            &mut owned,
        );
        assert_eq!(borrowed, owned);

        let updates = vec![ShardUpdate {
            shard: 1,
            version: 5,
            weights: vec![2.0, 4.0],
        }];
        let mut borrowed = Vec::new();
        encode_pull_reply_delta(
            &mut borrowed,
            77,
            updates
                .iter()
                .map(|u| (u.shard, u.version, u.weights.as_slice())),
        );
        let mut owned = Vec::new();
        encode(&Message::PullReplyDelta { clock: 77, updates }, &mut owned);
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn pooled_decoders_match_the_owned_decode() {
        let mut buf = Vec::new();
        encode_push(&mut buf, 21, 99, &[1.0, -2.0]);
        let mut grads = vec![9.0; 7]; // stale content must be cleared
        assert_eq!(decode_push_into(&buf, &mut grads), Ok((21, 99)));
        assert_eq!(grads, vec![1.0, -2.0]);
        assert_eq!(
            decode_push_into(&[4u8, 0, 0, 0, 0, 0, 0, 0, 0], &mut grads),
            Err(WireError::UnknownTag(4))
        );

        let mut buf = Vec::new();
        encode_pull_delta(&mut buf, 100, &[5, 6]);
        let mut known = vec![0u64; 3];
        assert_eq!(decode_pull_delta_into(&buf, &mut known), Ok(100));
        assert_eq!(known, vec![5, 6]);
    }

    #[test]
    fn apply_pull_reply_reconstructs_full_and_delta_replies() {
        let mut weights = Vec::new();
        let mut versions = Vec::new();
        // Full reply establishes the cache.
        let mut buf = Vec::new();
        encode_pull_reply(&mut buf, 10, &[1, 1, 1], &[0.0, 1.0, 2.0, 3.0, 4.0]);
        let applied = apply_pull_reply(&buf, &mut weights, &mut versions).unwrap();
        assert_eq!(
            applied,
            PullApplied {
                clock: 10,
                full: true,
                shards_updated: 3
            }
        );
        // Layout of 5 params over 3 shards: [0..2), [2..4), [4..5).
        // Delta updates shards 0 and 2.
        let mut buf = Vec::new();
        encode_pull_reply_delta(
            &mut buf,
            12,
            vec![(0u32, 3u64, &[-1.0f32, -2.0f32][..]), (2, 2, &[9.0][..])].into_iter(),
        );
        let applied = apply_pull_reply(&buf, &mut weights, &mut versions).unwrap();
        assert_eq!(
            applied,
            PullApplied {
                clock: 12,
                full: false,
                shards_updated: 2
            }
        );
        assert_eq!(weights, vec![-1.0, -2.0, 2.0, 3.0, 9.0]);
        assert_eq!(versions, vec![3, 1, 2]);
    }

    #[test]
    fn apply_pull_reply_rejects_incompatible_deltas() {
        let mut weights = vec![0.0; 4];
        let mut versions = vec![0u64; 2];
        // Out-of-range shard index.
        let mut buf = Vec::new();
        encode_pull_reply_delta(&mut buf, 1, vec![(5u32, 1u64, &[1.0f32][..])].into_iter());
        assert_eq!(
            apply_pull_reply(&buf, &mut weights, &mut versions),
            Err(WireError::BadShard { shard: 5 })
        );
        // Wrong run length for the shard's key range ([0..2) expects 2 weights).
        let mut buf = Vec::new();
        encode_pull_reply_delta(&mut buf, 1, vec![(0u32, 1u64, &[1.0f32][..])].into_iter());
        assert_eq!(
            apply_pull_reply(&buf, &mut weights, &mut versions),
            Err(WireError::BadShard { shard: 0 })
        );
        // Delta against an empty cache.
        let mut empty_w = Vec::new();
        let mut empty_v = Vec::new();
        let mut buf = Vec::new();
        encode_pull_reply_delta(&mut buf, 1, vec![(0u32, 1u64, &[][..])].into_iter());
        assert_eq!(
            apply_pull_reply(&buf, &mut empty_w, &mut empty_v),
            Err(WireError::BadShard { shard: 0 })
        );
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let mut messages = vec![
            Message::Push {
                iteration: 3,
                trace: (1u64 << 32) | 3,
                grads: vec![1.0, 2.0],
            },
            Message::Pull { trace: 5 },
            Message::PullDelta {
                trace: (1u64 << 32) | 4,
                known_versions: vec![1, 2, 3],
            },
            Message::PullReplyDelta {
                clock: 4,
                updates: vec![ShardUpdate {
                    shard: 0,
                    version: 1,
                    weights: vec![1.0, 2.0],
                }],
            },
            Message::GroupHello {
                version: PROTOCOL_VERSION,
                rank: 1,
                num_workers: 2,
                config_digest: 9,
                servers: 2,
                server_index: 0,
            },
            Message::PushSlice {
                iteration: 2,
                epoch: 0,
                trace: 9,
                grads: vec![1.0],
            },
            Message::PullShards {
                known_versions: vec![5],
                all: false,
                epoch: 0,
                trace: 9,
            },
            Message::ClockPush {
                iteration: 4,
                trace: 9,
            },
            Message::StatsReply {
                pushes: 1,
                pulls_full: 2,
                pulls_delta: 3,
                bytes_sent: 4,
                bytes_received: 5,
                epoch: 0,
            },
            Message::JoinAck {
                clock: 7,
                epoch: 1,
                assignment: vec![0, 1],
            },
            Message::Evict { rank: 1 },
            Message::MigrateShard {
                epoch: 1,
                shard: 0,
                version: 3,
                trace: 9,
                weights: vec![1.0, 2.0],
                velocity: vec![3.0, 4.0],
            },
            Message::LayoutUpdate {
                epoch: 1,
                assignment: vec![0, 0, 1],
            },
            Message::EpochRefused {
                epoch: 1,
                assignment: vec![1, 1],
            },
            Message::AdminAck {
                epoch: 1,
                accepted: false,
                reason: "nope".into(),
            },
            Message::MigrateRequest {
                epoch: 1,
                shard: 2,
                trace: 9,
            },
        ];
        for msg in messages.drain(..) {
            let mut buf = Vec::new();
            encode(&msg, &mut buf);
            for cut in 0..buf.len() {
                let err = decode(&buf[..cut]);
                assert!(err.is_err(), "prefix of {cut} bytes must not decode");
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode(&Message::Pull { trace: 0 }, &mut buf);
        buf.push(0);
        assert_eq!(decode(&buf), Err(WireError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn unknown_tags_and_bad_magic_are_rejected() {
        assert_eq!(decode(&[42]), Err(WireError::UnknownTag(42)));
        let mut buf = Vec::new();
        encode(
            &Message::Hello {
                version: 1,
                rank: 0,
                num_workers: 1,
                config_digest: 0,
            },
            &mut buf,
        );
        buf[1] ^= 0xff; // corrupt the magic
        assert!(matches!(decode(&buf), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn absurd_vector_lengths_are_rejected_before_allocation() {
        // Push with a declared gradient count of u32::MAX but no data.
        let mut buf = vec![2u8];
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // trace id
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&buf), Err(WireError::BadLength { .. })));
        // Delta reply with a declared update count of u32::MAX but no data.
        let mut buf = vec![TAG_PULL_REPLY_DELTA];
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&buf), Err(WireError::BadLength { .. })));
    }

    #[test]
    fn oversized_frames_are_rejected_by_the_frame_reader() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(bytes);
        match read_frame(&mut cursor) {
            Err(crate::NetError::Wire(WireError::Oversized { len })) => {
                assert_eq!(len, u32::MAX as usize);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let messages = vec![
            Message::Pull { trace: 1 },
            Message::Push {
                iteration: 1,
                trace: 2,
                grads: vec![0.5; 3],
            },
            Message::PullDelta {
                trace: 3,
                known_versions: vec![8, 9],
            },
            Message::Shutdown {
                reason: SHUTDOWN_SERVER_ERROR,
            },
        ];
        let mut stream = Vec::new();
        let mut scratch = Vec::new();
        for msg in &messages {
            write_frame(&mut stream, msg, &mut scratch).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream);
        for msg in &messages {
            assert_eq!(&read_frame(&mut cursor).unwrap(), msg);
        }
        assert!(matches!(
            read_frame(&mut cursor),
            Err(crate::NetError::Disconnected)
        ));
    }

    #[test]
    fn frame_payload_reader_reuses_its_buffer() {
        let mut stream = Vec::new();
        let mut scratch = Vec::new();
        let big = Message::Push {
            iteration: 1,
            trace: 0,
            grads: vec![1.0; 64],
        };
        write_frame(&mut stream, &big, &mut scratch).unwrap();
        write_frame(&mut stream, &Message::Pull { trace: 7 }, &mut scratch).unwrap();
        let mut cursor = std::io::Cursor::new(stream);
        let mut payload = Vec::new();
        let len = read_frame_payload(&mut cursor, &mut payload).unwrap();
        assert_eq!(payload.len(), len);
        let cap_after_big = payload.capacity();
        let len = read_frame_payload(&mut cursor, &mut payload).unwrap();
        assert_eq!(len, 9);
        assert_eq!(decode(&payload), Ok(Message::Pull { trace: 7 }));
        assert_eq!(payload.capacity(), cap_after_big, "buffer must be reused");
    }

    /// A writer that fragments every write to exercise the vectored-write resume loop.
    struct TrickleWriter {
        out: Vec<u8>,
    }

    impl std::io::Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(3);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[std::io::IoSlice<'_>]) -> std::io::Result<usize> {
            // Take at most 3 bytes from the first non-empty slice.
            for b in bufs {
                if !b.is_empty() {
                    let n = b.len().min(3);
                    self.out.extend_from_slice(&b[..n]);
                    return Ok(n);
                }
            }
            Ok(0)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_frame_writes_survive_partial_writes() {
        let msg = Message::Push {
            iteration: 5,
            trace: (2u64 << 32) | 5,
            grads: vec![0.25; 11],
        };
        let mut scratch = Vec::new();
        let mut trickle = TrickleWriter { out: Vec::new() };
        write_frame(&mut trickle, &msg, &mut scratch).unwrap();
        let mut cursor = std::io::Cursor::new(trickle.out);
        assert_eq!(read_frame(&mut cursor).unwrap(), msg);
    }
}
