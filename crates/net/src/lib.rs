//! `dssp-net` — the networked DSSP parameter server.
//!
//! The simulator (`dssp-sim`) and the threaded runtime (`dssp-core::runtime`) exercise
//! the paper's server and synchronization controller inside one process. This crate
//! adds the boundary that defines production parameter-server systems (Li et al.'s
//! Parameter Server, MXNet's KVStore): a wire protocol, a transport, and per-worker
//! connection state, so the *same* decision logic gates workers across OS processes —
//! the single-machine analogue of the paper's 4-node testbed.
//!
//! Layers, bottom to top:
//!
//! | module | provides |
//! |---|---|
//! | [`wire`] | versioned, length-prefixed little-endian codec for the protocol messages (v3: 20 kinds incl. the multi-server group set), bulk LE fast paths |
//! | [`transport`] | [`ServerTransport`]/[`WorkerTransport`] traits + in-process [`transport::loopback`] |
//! | [`tcp`] | the real-socket transport (`std::net`, blocking reader thread per connection, read-timeout peer attribution) |
//! | [`server`] | [`serve`]: the single-threaded, lock-free server command loop |
//! | [`worker`] | [`run_worker`]: the client step-loop (shared with the threaded runtime) |
//! | [`launch`] | [`launch::launch`]: server in-process + one child process per worker |
//! | [`cli`] | flag parsing shared by the `repro` subcommands and the launchers |
//! | [`metrics`] | atomic counter registry + hand-rolled Prometheus `GET /metrics` endpoint (`--metrics-addr`) |
//! | [`obs`] | the per-process observability bundle: event log + metrics + endpoint behind one set of hot-path hooks |
//!
//! The multi-server group deployment — N storage-only shard servers plus a
//! clock-only coordinator speaking this crate's protocol — lives one layer up in
//! `dssp-coord`.
//!
//! Both runtimes sit on `dssp_core::driver`, so a `LoopbackTransport` run in
//! deterministic mode is bitwise-equal to a deterministic threaded run — the
//! workspace-level `net_equivalence` test asserts exactly that, and the TCP transport
//! ships IEEE-754 bit patterns verbatim so the equality extends across real sockets.
//!
//! Since protocol v2 the steady-state frame path is **delta-pulling and
//! allocation-free**: workers cache per-shard versions and request only the shards
//! that advanced (`PullDelta`/`PullReplyDelta`, with a full-pull fallback on first
//! contact or version mismatch), and the TCP transport reuses pooled encode/decode
//! buffers, recycles bulk vectors between the command loop and each connection's
//! reader, and writes frames with one vectored syscall — zero heap allocations per
//! message on both ends once warm (enforced by a counting-allocator test).
//!
//! # Example (in-process loopback)
//!
//! ```
//! use dssp_core::driver::JobConfig;
//! use dssp_net::{serve, run_worker, transport::loopback};
//! use dssp_ps::PolicyKind;
//!
//! let mut job = JobConfig::small(PolicyKind::Bsp);
//! job.epochs = 1;
//! let (mut server, workers) = loopback(job.num_workers);
//! let handles: Vec<_> = workers
//!     .into_iter()
//!     .enumerate()
//!     .map(|(rank, mut transport)| {
//!         let job = job.clone();
//!         std::thread::spawn(move || run_worker(&job, rank, &mut transport).unwrap())
//!     })
//!     .collect();
//! let trace = serve(&job, &mut server).unwrap();
//! for handle in handles {
//!     handle.join().unwrap();
//! }
//! assert!(trace.total_pushes > 0);
//! ```

#![deny(missing_docs)]

pub mod cli;
pub mod elastic;
mod error;
pub mod launch;
pub mod metrics;
pub mod obs;
pub mod server;
pub mod tcp;
pub mod transport;
pub mod wire;
pub mod worker;

pub use elastic::{fault_due, CheckpointSink, FaultClock};
pub use error::{NetError, FAULT_EXIT_CODE};
pub use metrics::{Metrics, MetricsServer};
pub use obs::Obs;
pub use server::{require_helloed, serve, validate_hello};
pub use tcp::{TcpServerTransport, TcpWorkerTransport, TransportStats};
pub use transport::{apply_pull_message, PullOutcome, PullView, ServerTransport, WorkerTransport};
pub use wire::{Message, PullApplied, ShardUpdate, PROTOCOL_VERSION};
pub use worker::{run_worker, WorkerReport};
