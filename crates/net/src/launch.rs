//! Multi-process deployment on one machine: run the server in-process and spawn one
//! OS process per worker, connected over localhost TCP.
//!
//! This is the `repro -- launch` backend and the networked analogue of the paper's
//! 4-node testbed, collapsed onto one host: every worker is a real process with its own
//! address space, exchanging gradients and weights through the wire protocol.

use crate::server::serve;
use crate::tcp::TcpServerTransport;
use crate::NetError;
use dssp_core::driver::JobConfig;
use dssp_sim::RunTrace;
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};

/// The result of a multi-process launch.
#[derive(Debug)]
pub struct LaunchOutcome {
    /// The server's run trace.
    pub trace: RunTrace,
    /// The address the server listened on.
    pub addr: SocketAddr,
}

/// Binds `listen` (use port 0 for an ephemeral port), spawns `job.num_workers` child
/// processes running `worker_exe worker --connect <addr> --rank K <job flags>`, serves
/// the run in-process, and reaps every child.
///
/// `worker_exe` is typically `std::env::current_exe()` of the `repro` binary. Worker
/// stdout/stderr are inherited so their logs interleave with the server's.
///
/// On any server-side failure the children are killed before the error is returned; a
/// child that exits unsuccessfully after a successful run turns the launch into an
/// error too.
///
/// # Panics
///
/// Panics if the configuration is inconsistent ([`JobConfig::validate`]).
pub fn launch(job: &JobConfig, listen: &str, worker_exe: &Path) -> Result<LaunchOutcome, NetError> {
    job.validate();
    let mut transport = TcpServerTransport::bind(listen, job.num_workers)?;
    let addr = transport.local_addr();

    let mut children: Vec<Child> = Vec::with_capacity(job.num_workers);
    for rank in 0..job.num_workers {
        let spawned = Command::new(worker_exe)
            .arg("worker")
            .arg("--connect")
            .arg(addr.to_string())
            .arg("--rank")
            .arg(rank.to_string())
            .args(crate::cli::job_args(job))
            .stdin(Stdio::null())
            .spawn();
        match spawned {
            Ok(child) => children.push(child),
            Err(e) => {
                reap(&mut children, true);
                return Err(NetError::WorkerProcess(format!(
                    "failed to spawn worker {rank}: {e}"
                )));
            }
        }
    }

    let result = serve(job, &mut transport);
    let kill = result.is_err();
    let failures = reap(&mut children, kill);

    let trace = result?;
    if !failures.is_empty() {
        return Err(NetError::WorkerProcess(format!(
            "worker processes exited unsuccessfully: {failures:?}"
        )));
    }
    Ok(LaunchOutcome { trace, addr })
}

/// Waits for every child (killing first if `kill`), returning the ranks that failed.
fn reap(children: &mut [Child], kill: bool) -> Vec<usize> {
    let mut failures = Vec::new();
    for (rank, child) in children.iter_mut().enumerate() {
        if kill {
            let _ = child.kill();
        }
        match child.wait() {
            Ok(status) if status.success() || kill => {}
            Ok(status) => failures.push({
                eprintln!("worker {rank} exited with {status}");
                rank
            }),
            Err(e) => failures.push({
                eprintln!("failed to wait for worker {rank}: {e}");
                rank
            }),
        }
    }
    failures
}
