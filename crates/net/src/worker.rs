//! The networked worker client: the same training step-loop as the threaded runtime
//! ([`dssp_core::driver::WorkerStep`]), talking to the server over a
//! [`WorkerTransport`].
//!
//! The steady-state loop reuses three buffers across the whole run — the cached
//! weight vector, the cached per-shard version vector, and the gradient vector — so a
//! TCP worker performs zero heap allocations per message: gradients are computed into
//! the reused buffer and encoded straight from it ([`WorkerTransport::send_push`]),
//! and pull replies are applied in place ([`WorkerTransport::pull_into`]), with
//! delta replies memcpy'd into the stale shards' key ranges only. When
//! `JobConfig::delta_pulls` is set (the default) every pull after the first sends the
//! cached versions so the server ships only the shards that advanced; a fresh process
//! (or a reconnect) starts with an empty cache and therefore always begins with a
//! full pull.

use crate::elastic::fault_due;
use crate::transport::{PullOutcome, WorkerTransport};
use crate::wire::{Message, PROTOCOL_VERSION, SHUTDOWN_OK};
use crate::NetError;
use dssp_core::driver::{FaultPhase, FaultRole, JobConfig, WorkerStep};
use dssp_core::events::{trace_id, EventKind, EventLog, Role, SpanOp};
use std::time::Instant;

/// Records one structured event when the worker's event log is enabled.
#[inline]
fn ev(log: Option<&EventLog>, kind: EventKind, payload: u64) {
    if let Some(log) = log {
        log.record(kind, payload);
    }
}

/// Records one traced event when the worker's event log is enabled.
#[inline]
fn ev_traced(log: Option<&EventLog>, kind: EventKind, payload: u64, trace: u64) {
    if let Some(log) = log {
        log.record_traced(kind, payload, trace);
    }
}

/// This worker's causal trace-id source: a per-rank sequence starting at 1 (so id 0
/// stays [`dssp_core::events::NO_TRACE`]), one fresh id per worker-originated
/// operation. The id rides the v6 wire frames and is stamped into both ends' event
/// logs, which is what lets `repro analyze` join a worker's span to the server
/// events it caused.
struct TraceSource {
    rank: u32,
    seq: u32,
}

impl TraceSource {
    fn new(rank: usize) -> Self {
        Self {
            rank: rank as u32,
            seq: 0,
        }
    }

    /// Mints the next trace id.
    fn next(&mut self) -> u64 {
        self.seq = self.seq.wrapping_add(1);
        trace_id(self.rank, self.seq)
    }
}

/// What a worker experienced during its run, for logging and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// This worker's rank.
    pub rank: usize,
    /// Iterations actually completed.
    pub iterations: u64,
    /// Epochs completed over its shard.
    pub epochs: usize,
    /// Wall-clock seconds spent waiting for deferred `OK`s.
    pub waiting_time_s: f64,
    /// Sum of `granted_extra` over every push reply — nonzero means the DSSP
    /// controller let this worker run ahead (`r* > 0`).
    pub granted_extra_total: u64,
    /// Per-shard versions reported by the last pull (length = server shard count).
    pub last_shard_versions: Vec<u64>,
    /// Pull replies that arrived as full models (always ≥ 1: the initial pull).
    pub full_pulls: u64,
    /// Pull replies that arrived as shard deltas (0 when `delta_pulls` is off).
    pub delta_pulls: u64,
    /// Whether the server shut the run down before this worker finished (chaos abort
    /// or server failure). The worker still exited cleanly.
    pub shutdown_early: bool,
}

/// Runs the worker side of a training job over the given transport: handshake, initial
/// pull, then push/pull rounds until the iteration target is reached.
///
/// A mid-run `Shutdown` from the server (abort paths) ends the loop cleanly with
/// [`WorkerReport::shutdown_early`] set rather than erroring, so chaos-testing a server
/// does not turn healthy workers into crashed processes.
///
/// # Panics
///
/// Panics if the configuration is inconsistent or `rank` is out of range.
pub fn run_worker(
    job: &JobConfig,
    rank: usize,
    transport: &mut dyn WorkerTransport,
) -> Result<WorkerReport, NetError> {
    // The worker's event timeline (`--event-log DIR` → `DIR/worker-<rank>.ndjson`):
    // join/push/pull plus the gate-block/gate-release pair bracketing every deferred
    // `OK` wait, from which the chrome-trace exporter reconstructs the per-worker
    // compute/blocked/pull lanes. Flushed on every exit path — including errors, so an
    // evicted or chaos-killed worker still leaves its timeline behind.
    let log = job
        .event_log
        .as_ref()
        .map(|_| EventLog::new(Role::Worker, rank as u32));
    let result = run_worker_inner(job, rank, transport, log.as_ref());
    if let (Some(log), Some(dir)) = (&log, &job.event_log) {
        let flushed = log.flush_to_dir(dir);
        if result.is_ok() {
            flushed?;
        }
    }
    result
}

fn run_worker_inner(
    job: &JobConfig,
    rank: usize,
    transport: &mut dyn WorkerTransport,
    log: Option<&EventLog>,
) -> Result<WorkerReport, NetError> {
    let mut step = WorkerStep::for_rank(job, rank);
    let mut report = WorkerReport {
        rank,
        iterations: 0,
        epochs: 0,
        waiting_time_s: 0.0,
        granted_extra_total: 0,
        last_shard_versions: Vec::new(),
        full_pulls: 0,
        delta_pulls: 0,
        shutdown_early: false,
    };
    // The three buffers of the steady-state loop, reused across every iteration.
    let mut weights: Vec<f32> = Vec::new();
    let mut versions: Vec<u64> = Vec::new();
    let mut grads: Vec<f32> = Vec::new();

    transport.send(&Message::Hello {
        version: PROTOCOL_VERSION,
        rank: rank as u32,
        num_workers: job.num_workers as u32,
        config_digest: job.stable_digest(),
    })?;

    // Membership handshake: the server answers with the number of pushes it has
    // already confirmed from this rank — zero on a fresh run, the restored count when
    // the server came back from a checkpoint. The worker fast-forwards its batch
    // schedule to that point and resumes at the next iteration.
    transport.send(&Message::JoinRequest)?;
    let resume_from = match transport.recv()? {
        Message::JoinAck { clock, .. } => clock,
        Message::Shutdown { .. } => {
            report.shutdown_early = true;
            report.last_shard_versions = versions;
            return Ok(report);
        }
        other => return Err(unexpected(rank, &other)),
    };
    ev(log, EventKind::Join, resume_from);
    if resume_from > 0 {
        step.skip_to(resume_from.min(step.target()));
        report.iterations = step.completed();
        report.epochs = step.epoch();
    }

    // This process's structured chaos hook, if the plan targets this rank.
    let fault = job.fault_plan.filter(|p| p.role == FaultRole::Worker(rank));
    let mut pulls_done: u64 = 0;
    let mut traces = TraceSource::new(rank);

    // Initial pull: the version cache is empty, so this is always a full pull.
    let pull_trace = traces.next();
    ev_traced(log, EventKind::SpanBegin, SpanOp::Pull.code(), pull_trace);
    match transport.pull_into(job.delta_pulls, pull_trace, &mut weights, &mut versions)? {
        PullOutcome::Applied(applied) => {
            record_pull(&mut report, applied.full);
            ev_traced(log, EventKind::Pull, applied.clock, pull_trace);
            ev_traced(log, EventKind::SpanEnd, SpanOp::Pull.code(), pull_trace);
        }
        PullOutcome::Shutdown { .. } => {
            report.shutdown_early = true;
            report.last_shard_versions = versions;
            return Ok(report);
        }
    }
    pulls_done += 1;
    fault_due(fault.as_ref(), FaultPhase::Pull, pulls_done)?;

    let target = step.target();
    for iter in step.completed()..target {
        step.compute_gradient_into(&weights, &mut grads);
        report.iterations = step.completed();
        report.epochs = step.epoch();
        // One trace id per push; its span covers the send plus the gate wait, so the
        // analyzer can split "network + apply" from "blocked on the DSSP gate".
        let push_trace = traces.next();
        ev_traced(log, EventKind::SpanBegin, SpanOp::Push.code(), push_trace);
        transport.send_push(iter + 1, push_trace, &grads)?;
        ev_traced(log, EventKind::Push, iter + 1, push_trace);
        fault_due(fault.as_ref(), FaultPhase::Push, iter + 1)?;
        if iter + 1 == target {
            // Final push: report Done without waiting for the OK.
            ev_traced(log, EventKind::SpanEnd, SpanOp::Push.code(), push_trace);
            break;
        }
        fault_due(fault.as_ref(), FaultPhase::GateBlocked, iter + 1)?;
        ev_traced(log, EventKind::GateBlock, iter + 1, push_trace);
        let wait_start = Instant::now();
        match transport.recv()? {
            Message::PushReply { granted_extra, .. } => {
                let waited = wait_start.elapsed();
                report.waiting_time_s += waited.as_secs_f64();
                report.granted_extra_total += granted_extra;
                ev_traced(
                    log,
                    EventKind::GateRelease,
                    waited.as_micros() as u64,
                    push_trace,
                );
                if granted_extra > 0 {
                    ev_traced(log, EventKind::CreditGrant, granted_extra, push_trace);
                }
                ev_traced(log, EventKind::SpanEnd, SpanOp::Push.code(), push_trace);
            }
            Message::Shutdown { reason } => {
                report.shutdown_early = reason != SHUTDOWN_OK || !step.finished();
                report.last_shard_versions = versions;
                return Ok(report);
            }
            other => return Err(unexpected(rank, &other)),
        }
        let pull_trace = traces.next();
        ev_traced(log, EventKind::SpanBegin, SpanOp::Pull.code(), pull_trace);
        match transport.pull_into(job.delta_pulls, pull_trace, &mut weights, &mut versions)? {
            PullOutcome::Applied(applied) => {
                record_pull(&mut report, applied.full);
                transport.note_confirmed_clock(applied.clock);
                ev_traced(log, EventKind::Pull, applied.clock, pull_trace);
                ev_traced(log, EventKind::SpanEnd, SpanOp::Pull.code(), pull_trace);
            }
            PullOutcome::Shutdown { reason } => {
                report.shutdown_early = reason != SHUTDOWN_OK || !step.finished();
                report.last_shard_versions = versions;
                return Ok(report);
            }
        }
        pulls_done += 1;
        fault_due(fault.as_ref(), FaultPhase::Pull, pulls_done)?;
    }

    transport.send(&Message::Done {
        iterations: step.completed(),
        epochs: step.epoch() as u64,
        waiting_time_s: report.waiting_time_s,
    })?;

    // Drain until the shutdown broadcast; a PushReply for the final push may still be
    // in flight (the server answers every granted push, even the last one).
    loop {
        match transport.recv()? {
            Message::Shutdown { reason } => {
                report.shutdown_early = reason != SHUTDOWN_OK;
                report.last_shard_versions = versions;
                return Ok(report);
            }
            Message::PushReply { granted_extra, .. } => {
                report.granted_extra_total += granted_extra;
            }
            Message::PullReply { .. } | Message::PullReplyDelta { .. } => {}
            other => return Err(unexpected(rank, &other)),
        }
    }
}

fn record_pull(report: &mut WorkerReport, full: bool) {
    if full {
        report.full_pulls += 1;
    } else {
        report.delta_pulls += 1;
    }
}

fn unexpected(rank: usize, msg: &Message) -> NetError {
    NetError::Protocol(format!("worker {rank} received unexpected {msg:?}"))
}
