//! The networked worker client: the same training step-loop as the threaded runtime
//! ([`dssp_core::driver::WorkerStep`]), talking to the server over a
//! [`WorkerTransport`].

use crate::transport::WorkerTransport;
use crate::wire::{Message, PROTOCOL_VERSION, SHUTDOWN_OK};
use crate::NetError;
use dssp_core::driver::{JobConfig, WorkerStep};
use std::time::Instant;

/// What a worker experienced during its run, for logging and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// This worker's rank.
    pub rank: usize,
    /// Iterations actually completed.
    pub iterations: u64,
    /// Epochs completed over its shard.
    pub epochs: usize,
    /// Wall-clock seconds spent waiting for deferred `OK`s.
    pub waiting_time_s: f64,
    /// Sum of `granted_extra` over every push reply — nonzero means the DSSP
    /// controller let this worker run ahead (`r* > 0`).
    pub granted_extra_total: u64,
    /// Per-shard versions reported by the last pull (length = server shard count).
    pub last_shard_versions: Vec<u64>,
    /// Whether the server shut the run down before this worker finished (chaos abort
    /// or server failure). The worker still exited cleanly.
    pub shutdown_early: bool,
}

/// Runs the worker side of a training job over the given transport: handshake, initial
/// pull, then push/pull rounds until the iteration target is reached.
///
/// A mid-run `Shutdown` from the server (abort paths) ends the loop cleanly with
/// [`WorkerReport::shutdown_early`] set rather than erroring, so chaos-testing a server
/// does not turn healthy workers into crashed processes.
///
/// # Panics
///
/// Panics if the configuration is inconsistent or `rank` is out of range.
pub fn run_worker(
    job: &JobConfig,
    rank: usize,
    transport: &mut dyn WorkerTransport,
) -> Result<WorkerReport, NetError> {
    let mut step = WorkerStep::for_rank(job, rank);
    let mut report = WorkerReport {
        rank,
        iterations: 0,
        epochs: 0,
        waiting_time_s: 0.0,
        granted_extra_total: 0,
        last_shard_versions: Vec::new(),
        shutdown_early: false,
    };

    transport.send(&Message::Hello {
        version: PROTOCOL_VERSION,
        rank: rank as u32,
        num_workers: job.num_workers as u32,
        config_digest: job.digest(),
    })?;

    // Initial pull: fetch the server's starting weights.
    transport.send(&Message::Pull)?;
    let mut weights = match transport.recv()? {
        Message::PullReply {
            weights,
            shard_versions,
            ..
        } => {
            report.last_shard_versions = shard_versions;
            weights
        }
        Message::Shutdown { .. } => {
            report.shutdown_early = true;
            return Ok(report);
        }
        other => return Err(unexpected(rank, &other)),
    };

    let target = step.target();
    for iter in 0..target {
        let grads = step.compute_gradient(&weights);
        report.iterations = step.completed();
        report.epochs = step.epoch();
        transport.send(&Message::Push {
            iteration: iter + 1,
            grads,
        })?;
        if iter + 1 == target {
            break; // final push: report Done without waiting for the OK
        }
        let wait_start = Instant::now();
        match transport.recv()? {
            Message::PushReply { granted_extra, .. } => {
                report.waiting_time_s += wait_start.elapsed().as_secs_f64();
                report.granted_extra_total += granted_extra;
            }
            Message::Shutdown { reason } => {
                report.shutdown_early = reason != SHUTDOWN_OK || !step.finished();
                return Ok(report);
            }
            other => return Err(unexpected(rank, &other)),
        }
        transport.send(&Message::Pull)?;
        match transport.recv()? {
            Message::PullReply {
                weights: fresh,
                shard_versions,
                ..
            } => {
                weights = fresh;
                report.last_shard_versions = shard_versions;
            }
            Message::Shutdown { reason } => {
                report.shutdown_early = reason != SHUTDOWN_OK || !step.finished();
                return Ok(report);
            }
            other => return Err(unexpected(rank, &other)),
        }
    }

    transport.send(&Message::Done {
        iterations: step.completed(),
        epochs: step.epoch() as u64,
        waiting_time_s: report.waiting_time_s,
    })?;

    // Drain until the shutdown broadcast; a PushReply for the final push may still be
    // in flight (the server answers every granted push, even the last one).
    loop {
        match transport.recv()? {
            Message::Shutdown { reason } => {
                report.shutdown_early = reason != SHUTDOWN_OK;
                return Ok(report);
            }
            Message::PushReply { granted_extra, .. } => {
                report.granted_extra_total += granted_extra;
            }
            Message::PullReply { .. } => {}
            other => return Err(unexpected(rank, &other)),
        }
    }
}

fn unexpected(rank: usize, msg: &Message) -> NetError {
    NetError::Protocol(format!("worker {rank} received unexpected {msg:?}"))
}
