//! Error types of the networked runtime.

use crate::wire::WireError;

/// Process exit code for a run ended by [`NetError::FaultInjected`]. A chaos
/// harness supervising real processes uses this to tell a planned kill from an
/// incidental crash (which exits 1) without parsing stderr.
pub const FAULT_EXIT_CODE: i32 = 43;

/// Anything that can go wrong in the networked runtime: transport I/O, malformed
/// frames, or protocol violations.
#[derive(Debug)]
pub enum NetError {
    /// An underlying socket or channel operation failed.
    Io(std::io::Error),
    /// A frame failed to decode.
    Wire(WireError),
    /// The peer hung up mid-run.
    Disconnected,
    /// The peer violated the protocol (wrong message, bad handshake, config mismatch).
    Protocol(String),
    /// The server aborted the run (the `fail_after_pushes` chaos hook) and shut the
    /// cluster down.
    Aborted {
        /// Pushes applied when the abort tripped.
        pushes: u64,
    },
    /// A spawned worker process failed.
    WorkerProcess(String),
    /// A labelled peer (e.g. one shard server of a group) produced no frame within the
    /// connection's read timeout. Raised instead of stalling forever on a blocking
    /// read, so losing one shard server turns into a clear, attributable error.
    PeerTimeout {
        /// Human-readable name of the unresponsive peer ("shard server 1 at ADDR").
        peer: String,
        /// The read timeout that elapsed, in milliseconds.
        timeout_ms: u64,
    },
    /// A labelled peer closed its connection mid-run. Carries everything a
    /// reconnecting client needs: where the peer lived, which rank this side spoke
    /// as, and the last weight version confirmed before the loss (so a resumed
    /// session can pull deltas against its cache instead of the full model).
    PeerLost {
        /// Human-readable name of the lost peer.
        peer: String,
        /// The peer's address, when known (`None` for in-process loopback links).
        addr: Option<String>,
        /// The rank this side identified as, when known.
        rank: Option<u32>,
        /// The last server clock (weight version) confirmed before the loss.
        last_clock: Option<u64>,
    },
    /// The structured chaos hook fired: this process killed itself on schedule
    /// according to its fault plan. Distinct from [`NetError::Aborted`] so the chaos
    /// matrix can tell a planned fault from an incidental failure.
    FaultInjected {
        /// The plan that fired, in the CLI `role:phase:action:after` form.
        plan: String,
    },
    /// Writing or reading a durable checkpoint failed (I/O, truncation, corruption,
    /// or job-digest skew).
    Checkpoint(dssp_ps::CheckpointError),
    /// A shard server refused an epoch-stamped request because the client routed by a
    /// retired (or not-yet-committed) group layout. Retryable: an empty `assignment`
    /// means the server is frozen mid-migration (wait and retry), a non-empty one
    /// carries the committed layout to adopt before retrying.
    EpochRefused {
        /// The epoch the server is at (or frozen toward).
        epoch: u64,
        /// The committed shard→server assignment, empty while the server is frozen.
        assignment: Vec<u32>,
    },
    /// A ranked client connection closed cleanly mid-run (server side). The serving
    /// loop decides whether that is fatal — a single server treats any worker EOF as a
    /// failed run, while a shard server outlives workers that already finished and
    /// only treats its *coordinator*'s disappearance as fatal.
    ClientLost {
        /// The transport rank of the closed connection.
        rank: usize,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport I/O error: {e}"),
            NetError::Wire(e) => write!(f, "wire protocol error: {e}"),
            NetError::Disconnected => write!(f, "peer disconnected mid-run"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Aborted { pushes } => {
                write!(f, "server aborted after {pushes} pushes (chaos hook)")
            }
            NetError::WorkerProcess(msg) => write!(f, "worker process failed: {msg}"),
            NetError::PeerTimeout { peer, timeout_ms } => {
                write!(
                    f,
                    "no frame from {peer} within {timeout_ms} ms (peer dead or stalled)"
                )
            }
            NetError::PeerLost {
                peer,
                addr,
                rank,
                last_clock,
            } => {
                write!(f, "{peer} closed the connection mid-run")?;
                if let Some(addr) = addr {
                    write!(f, " (addr {addr}")?;
                    if let Some(rank) = rank {
                        write!(f, ", rank {rank}")?;
                    }
                    if let Some(clock) = last_clock {
                        write!(f, ", last confirmed clock {clock}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            NetError::FaultInjected { plan } => {
                write!(f, "fault plan fired: {plan}")
            }
            NetError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            NetError::EpochRefused { epoch, assignment } => {
                if assignment.is_empty() {
                    write!(
                        f,
                        "request refused: layout epoch {epoch} migration in flight"
                    )
                } else {
                    write!(
                        f,
                        "request refused: retired layout, group committed epoch {epoch}"
                    )
                }
            }
            NetError::ClientLost { rank } => {
                write!(f, "client {rank} closed its connection mid-run")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            NetError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<dssp_ps::CheckpointError> for NetError {
    fn from(e: dssp_ps::CheckpointError) -> Self {
        NetError::Checkpoint(e)
    }
}
