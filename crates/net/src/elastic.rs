//! Elasticity plumbing shared by every serving loop: structured fault injection
//! ([`FaultClock`]) and durable checkpoint cadence ([`CheckpointSink`]).
//!
//! The chaos matrix in the workspace tests kills processes at precise protocol
//! phases. Rather than each loop re-implementing "count occurrences of phase X and
//! die after N", a [`FaultClock`] owns the per-role occurrence counters and returns
//! [`NetError::FaultInjected`] the moment the configured plan comes due — the loop
//! propagates that error and the process exits *without* a protocol goodbye, so
//! peers observe the same abrupt connection loss a real crash produces.
//!
//! [`CheckpointSink`] is the durable half: it decides *when* a snapshot is due
//! (every [`CheckpointSpec::every_pushes`] applied pushes) and writes it atomically
//! (temp file + rename, via [`Checkpoint::save_atomic`]) under the role-conventional
//! file name, so a restarted process can pick the run back up with
//! `--restore`.

use crate::NetError;
use dssp_core::driver::{CheckpointSpec, FaultPhase, FaultPlan, FaultRole, JobConfig};
use dssp_ps::Checkpoint;
use std::path::PathBuf;

/// Per-role occurrence counters for the fault phases, firing the job's
/// [`FaultPlan`] when it comes due.
///
/// Each serving loop creates one clock for its own role and calls the phase hook at
/// the canonical point: [`FaultClock::push`] after a push is applied (or granted),
/// [`FaultClock::pull`] after a pull is served, [`FaultClock::gate_blocked`] when a
/// push is deferred by the synchronization policy, and [`FaultClock::checkpoint`]
/// right after a checkpoint file lands. A plan for a *different* role is ignored, so
/// every process can carry the full job config unchanged.
///
/// The plan fires on `count >= after` rather than strict equality: a restarted
/// process that is *not* given the plan again (the harness drops `--fault` on
/// restart legs) runs clean, while a plan accidentally left in place still fires
/// instead of being skipped over.
#[derive(Debug, Clone)]
pub struct FaultClock {
    plan: Option<FaultPlan>,
    pushes: u64,
    pulls: u64,
    blocked: u64,
    checkpoints: u64,
    prepares: u64,
    transfers: u64,
    commits: u64,
}

impl FaultClock {
    /// A clock for `role`, armed with the job's plan if it targets that role.
    pub fn new(job: &JobConfig, role: FaultRole) -> Self {
        Self {
            plan: job.fault_plan.filter(|p| p.role == role),
            pushes: 0,
            pulls: 0,
            blocked: 0,
            checkpoints: 0,
            prepares: 0,
            transfers: 0,
            commits: 0,
        }
    }

    /// Counts one applied (or granted) push; errs if the plan's push phase is due.
    pub fn push(&mut self) -> Result<(), NetError> {
        self.pushes += 1;
        self.due(FaultPhase::Push, self.pushes)
    }

    /// Counts one served pull; errs if the plan's pull phase is due.
    pub fn pull(&mut self) -> Result<(), NetError> {
        self.pulls += 1;
        self.due(FaultPhase::Pull, self.pulls)
    }

    /// Counts one gate-deferred push; errs if the plan's gate phase is due.
    pub fn gate_blocked(&mut self) -> Result<(), NetError> {
        self.blocked += 1;
        self.due(FaultPhase::GateBlocked, self.blocked)
    }

    /// Counts one written checkpoint; errs if the plan's checkpoint phase is due.
    pub fn checkpoint(&mut self) -> Result<(), NetError> {
        self.checkpoints += 1;
        self.due(FaultPhase::Checkpoint, self.checkpoints)
    }

    /// Counts one migration prepare handled; errs if the plan's prepare phase is due.
    pub fn migrate_prepare(&mut self) -> Result<(), NetError> {
        self.prepares += 1;
        self.due(FaultPhase::MigratePrepare, self.prepares)
    }

    /// Counts one shard transfer leg handled; errs if the plan's transfer phase is due.
    pub fn migrate_transfer(&mut self) -> Result<(), NetError> {
        self.transfers += 1;
        self.due(FaultPhase::MigrateTransfer, self.transfers)
    }

    /// Counts one migration commit handled; errs if the plan's commit phase is due.
    pub fn migrate_commit(&mut self) -> Result<(), NetError> {
        self.commits += 1;
        self.due(FaultPhase::MigrateCommit, self.commits)
    }

    fn due(&self, phase: FaultPhase, count: u64) -> Result<(), NetError> {
        match self.plan {
            Some(p) if p.phase == phase && count >= p.after => {
                Err(NetError::FaultInjected { plan: p.to_spec() })
            }
            _ => Ok(()),
        }
    }
}

/// Standalone form of [`FaultClock`]'s due-check for loops that count occurrences
/// themselves (the worker step-loop counts iterations, not server-side events).
pub fn fault_due(plan: Option<&FaultPlan>, phase: FaultPhase, count: u64) -> Result<(), NetError> {
    match plan {
        Some(p) if p.phase == phase && count >= p.after => {
            Err(NetError::FaultInjected { plan: p.to_spec() })
        }
        _ => Ok(()),
    }
}

/// Writes a role's checkpoint file on the configured push cadence, always
/// atomically (temp + rename), and once more unconditionally at run end.
///
/// Inactive when the job carries no [`CheckpointSpec`] — every hook is then a no-op,
/// so serving loops call the sink unconditionally.
#[derive(Debug)]
pub struct CheckpointSink {
    path: Option<PathBuf>,
    every: u64,
    next_at: u64,
    /// Checkpoint files written so far (tests assert cadence through this).
    pub written: u64,
}

impl CheckpointSink {
    /// A sink writing `file_name` inside the spec's directory, or an inert sink when
    /// the job has no checkpoint spec.
    pub fn new(spec: Option<&CheckpointSpec>, file_name: &str) -> Self {
        match spec {
            Some(s) => Self {
                path: Some(s.dir.join(file_name)),
                every: s.every_pushes.max(1),
                next_at: s.every_pushes.max(1),
                written: 0,
            },
            None => Self {
                path: None,
                every: 0,
                next_at: u64::MAX,
                written: 0,
            },
        }
    }

    /// Whether this sink actually persists anything.
    pub fn active(&self) -> bool {
        self.path.is_some()
    }

    /// The file this sink writes, when active.
    pub fn path(&self) -> Option<&PathBuf> {
        self.path.as_ref()
    }

    /// Writes a checkpoint if `version` (applied pushes so far) reached the cadence
    /// mark. `make` is only invoked when a write actually happens. Returns whether a
    /// file was written.
    pub fn maybe_write(
        &mut self,
        version: u64,
        make: impl FnOnce() -> Checkpoint,
    ) -> Result<bool, NetError> {
        let Some(path) = &self.path else {
            return Ok(false);
        };
        if version < self.next_at {
            return Ok(false);
        }
        make().save_atomic(path)?;
        self.written += 1;
        // Catch up past `version` so a burst of pushes between polls writes once.
        while self.next_at <= version {
            self.next_at += self.every;
        }
        Ok(true)
    }

    /// Writes the final checkpoint unconditionally (run end), so `--restore` always
    /// finds the run's terminal state regardless of cadence alignment.
    pub fn finalize(&mut self, make: impl FnOnce() -> Checkpoint) -> Result<(), NetError> {
        if let Some(path) = &self.path {
            make().save_atomic(path)?;
            self.written += 1;
        }
        Ok(())
    }

    /// Writes a checkpoint now regardless of cadence (migration commits force one, so
    /// a post-commit restore never resurrects a pre-migration layout). No-op when
    /// inert; does not advance the cadence mark.
    pub fn force(&mut self, make: impl FnOnce() -> Checkpoint) -> Result<(), NetError> {
        if let Some(path) = &self.path {
            make().save_atomic(path)?;
            self.written += 1;
        }
        Ok(())
    }
}
