//! The per-process observability bundle: one [`EventLog`] (when `--event-log DIR` is
//! set), one [`Metrics`] registry, and one [`MetricsServer`] (when `--metrics-addr`
//! is set), wired together behind methods the serving loops call from their hot
//! paths.
//!
//! Everything here respects PR 4's zero-allocation guarantee: when observability is
//! enabled, each hook is a handful of relaxed atomic operations (an [`EventLog`]
//! slot claim plus counter updates); when disabled, the event hooks reduce to an
//! `Option` check and the metric stores still land in the preallocated registry
//! (nobody scrapes them, but keeping them unconditional keeps the hot path
//! branch-free). Rendering, serving and NDJSON flushing all happen off the serving
//! loop — on the scrape thread or after the run.
//!
//! The single server, the shard servers and the coordinator each own one `Obs`
//! ([`Role::Server`], [`Role::ShardServer`], [`Role::Coordinator`]); workers carry
//! only an event log (no endpoint) and use [`EventLog`] directly.

use crate::metrics::{Metrics, MetricsServer, MAX_STRAGGLER_RANKS};
use crate::tcp::TransportStats;
use crate::NetError;
use dssp_core::driver::{OkReply, ServerLoop};
use dssp_core::events::{EventKind, EventLog, Role, NO_TRACE};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Z-score threshold above which a worker's cumulative gate wait flags it as a
/// straggler on the `dssp_straggler` gauge.
pub const STRAGGLER_Z: f64 = 2.0;

/// Current Unix time in microseconds (the clock the event log shares, so live
/// latency windows and offline analysis agree).
#[inline]
fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// One serving process's observability state. See the module docs for the contract.
pub struct Obs {
    log: Option<Arc<EventLog>>,
    dir: Option<PathBuf>,
    metrics: Arc<Metrics>,
    server: Option<MetricsServer>,
    /// Per-rank µs timestamp of the last push (0 = none yet); consecutive pushes
    /// yield the `dssp_round_time` samples.
    last_push_us: [AtomicU64; MAX_STRAGGLER_RANKS],
    /// Per-rank µs timestamp of the rank's gate block (0 = not blocked); the matching
    /// release yields a `dssp_push_latency` sample and the rank's wait total.
    blocked_since_us: [AtomicU64; MAX_STRAGGLER_RANKS],
    /// Per-rank cumulative gate wait (µs), the input of the z-score straggler check.
    wait_total_us: [AtomicU64; MAX_STRAGGLER_RANKS],
}

impl Obs {
    /// Builds the bundle for a serving role: an event log when `event_dir` is set
    /// (flushed to `dir/<role file name>` by [`Obs::flush`]) and a live `GET /metrics`
    /// endpoint when `metrics_addr` is set. Failing to bind the metrics listener is a
    /// startup error, not a silent no-op — a scrape target the operator asked for must
    /// exist or the run must say why.
    pub fn new(
        role: Role,
        rank: u32,
        event_dir: Option<&Path>,
        metrics_addr: Option<&str>,
    ) -> Result<Self, NetError> {
        let log = event_dir.map(|_| Arc::new(EventLog::new(role, rank)));
        let metrics = Arc::new(Metrics::new(role, rank));
        let server =
            match metrics_addr {
                Some(addr) => Some(MetricsServer::start(addr, Arc::clone(&metrics)).map_err(
                    |e| NetError::Protocol(format!("cannot serve metrics on {addr}: {e}")),
                )?),
                None => None,
            };
        Ok(Self {
            log,
            dir: event_dir.map(Path::to_path_buf),
            metrics,
            server,
            last_push_us: std::array::from_fn(|_| AtomicU64::new(0)),
            blocked_since_us: std::array::from_fn(|_| AtomicU64::new(0)),
            wait_total_us: std::array::from_fn(|_| AtomicU64::new(0)),
        })
    }

    /// The metric registry (shared with the scrape thread).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The event log, for sharing with helpers that record events of their own (the
    /// coordinator hands it to its shard fan so re-dials surface as `reconnect`
    /// events). `None` when event logging is off.
    pub fn event_log(&self) -> Option<&Arc<EventLog>> {
        self.log.as_ref()
    }

    /// The address the metrics listener actually bound (resolves an ephemeral `:0`
    /// request), `None` when no endpoint was asked for.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.server.as_ref().map(MetricsServer::local_addr)
    }

    /// Records one structured event when the event log is enabled; a single branch
    /// otherwise. The log's dropped-slot count is mirrored into
    /// `dssp_events_dropped_total` on every record, so a live scrape sees drops as
    /// they happen instead of only after the flush.
    #[inline]
    pub fn event(&self, kind: EventKind, payload: u64) {
        self.event_traced(kind, payload, NO_TRACE);
    }

    /// [`Obs::event`] with a causal trace id stamped into the event.
    #[inline]
    pub fn event_traced(&self, kind: EventKind, payload: u64, trace: u64) {
        if let Some(log) = &self.log {
            log.record_traced(kind, payload, trace);
            self.metrics.events_dropped.store(log.dropped(), Relaxed);
        }
    }

    /// Mirrors the decision loop's cumulative counters into the registry: pushes,
    /// blocked pushes, r* credits granted and reclaimed, the model-version gauge and
    /// the blocked-worker gauge. The loop already keeps these totals for the run
    /// trace, so the registry stores them instead of double-counting — the scrape can
    /// never drift from the trace.
    #[inline]
    pub fn sync_loop(&self, sl: &ServerLoop) {
        let stats = sl.stats();
        self.metrics.pushes.store(stats.pushes, Relaxed);
        self.metrics
            .blocked_pushes
            .store(stats.blocked_pushes, Relaxed);
        self.metrics
            .credits_granted
            .store(stats.credits_granted, Relaxed);
        self.metrics
            .credits_reclaimed
            .store(stats.credits_reclaimed, Relaxed);
        self.metrics.version.store(sl.version(), Relaxed);
        self.metrics
            .blocked_workers
            .store(sl.blocked_count() as u64, Relaxed);
    }

    /// The per-push hook: a `push` event, the staleness sample (when the serving loop
    /// has one — the borrowed hot path does, the deterministic replay path does not),
    /// `gate-block`/`gate-release`/`credit-grant` events derived from the reply set,
    /// and a counter sync. `payload` conventions: the worker rank for `push`,
    /// `gate-block` and `gate-release`; the granted r* for `credit-grant`.
    ///
    /// `traces` maps worker rank to that rank's outstanding push trace id (a worker
    /// has at most one push in flight, so one slot per rank suffices); events about a
    /// rank — including a `gate-release` caused by someone else's push — carry the
    /// *released* rank's trace, keeping the causal chain attached to the operation
    /// that actually waited. This hook also feeds the live fleet-health metrics:
    /// consecutive pushes from a rank bound one round (`dssp_round_time`), a
    /// block→release window is that push's gate latency (`dssp_push_latency`, 0 for
    /// immediate grants), and cumulative waits run through the z-score straggler
    /// check behind the `dssp_straggler` gauge.
    #[inline]
    pub fn on_push(
        &self,
        pusher: usize,
        staleness: Option<u64>,
        replies: &[OkReply],
        sl: &ServerLoop,
        traces: &[u64],
    ) {
        let now = now_us();
        let trace_of = |rank: usize| traces.get(rank).copied().unwrap_or(NO_TRACE);
        self.event_traced(EventKind::Push, pusher as u64, trace_of(pusher));
        if let Some(staleness) = staleness {
            self.metrics.observe_staleness(staleness);
        }
        if pusher < MAX_STRAGGLER_RANKS {
            let prev = self.last_push_us[pusher].swap(now, Relaxed);
            if prev != 0 && now > prev {
                self.metrics.observe_round_time(now - prev);
            }
        }
        let mut granted = false;
        for reply in replies {
            if reply.worker == pusher {
                granted = true;
                self.metrics.observe_push_latency(0);
                if reply.granted_extra > 0 {
                    self.event_traced(
                        EventKind::CreditGrant,
                        reply.granted_extra,
                        trace_of(pusher),
                    );
                }
            } else {
                self.event_traced(
                    EventKind::GateRelease,
                    reply.worker as u64,
                    trace_of(reply.worker),
                );
                if reply.worker < MAX_STRAGGLER_RANKS {
                    let since = self.blocked_since_us[reply.worker].swap(0, Relaxed);
                    if since != 0 && now > since {
                        let wait = now - since;
                        self.metrics.observe_push_latency(wait);
                        self.wait_total_us[reply.worker].fetch_add(wait, Relaxed);
                    }
                }
            }
        }
        if !granted {
            self.event_traced(EventKind::GateBlock, pusher as u64, trace_of(pusher));
            if pusher < MAX_STRAGGLER_RANKS {
                self.blocked_since_us[pusher].store(now, Relaxed);
            }
        }
        self.update_stragglers();
        self.sync_loop(sl);
    }

    /// Re-runs the z-score straggler check over every rank that has pushed at least
    /// once: a rank whose cumulative gate wait sits more than [`STRAGGLER_Z`]
    /// standard deviations above the fleet mean is flagged on the `dssp_straggler`
    /// gauge, and unflagged once it catches back up. A fixed sweep over the
    /// preallocated per-rank slots — no allocation, called from the push hot path.
    #[inline]
    fn update_stragglers(&self) {
        let mut n = 0u64;
        let mut sum = 0u64;
        let mut sumsq = 0u128;
        for rank in 0..MAX_STRAGGLER_RANKS {
            if self.last_push_us[rank].load(Relaxed) != 0 {
                let wait = self.wait_total_us[rank].load(Relaxed);
                n += 1;
                sum += wait;
                sumsq += (wait as u128) * (wait as u128);
            }
        }
        if n < 2 {
            return;
        }
        let mean = sum as f64 / n as f64;
        let var = (sumsq as f64 / n as f64 - mean * mean).max(0.0);
        let std = var.sqrt();
        for rank in 0..MAX_STRAGGLER_RANKS {
            if self.last_push_us[rank].load(Relaxed) != 0 {
                let wait = self.wait_total_us[rank].load(Relaxed) as f64;
                let flagged = std > 0.0 && (wait - mean) / std > STRAGGLER_Z;
                self.metrics.set_straggler(rank, flagged);
            }
        }
    }

    /// The per-pull hook: one served pull, full or delta (`delta` is whether the
    /// reply actually shipped incrementally, not what the client asked for — the
    /// exported ratio is the delta *hit* rate). `trace` is the pulling worker's
    /// trace id ([`NO_TRACE`] when the client predates v6 tracing).
    #[inline]
    pub fn on_pull(&self, rank: usize, delta: bool, trace: u64) {
        if delta {
            self.metrics.pulls_delta.fetch_add(1, Relaxed);
        } else {
            self.metrics.pulls_full.fetch_add(1, Relaxed);
        }
        self.event_traced(EventKind::Pull, rank as u64, trace);
    }

    /// A completed membership join (`JoinRequest`/`JoinAck` exchange).
    #[inline]
    pub fn on_join(&self, rank: usize) {
        self.metrics.joins.fetch_add(1, Relaxed);
        self.event(EventKind::Join, rank as u64);
    }

    /// A worker reaped from the run (death or explicit `Evict`). Counter syncing is
    /// the caller's job (via the surrounding [`Obs::on_push`]/[`Obs::sync_loop`]) —
    /// eviction reclaims credits, which the sync mirrors.
    #[inline]
    pub fn on_eviction(&self, rank: usize) {
        self.metrics.evictions.fetch_add(1, Relaxed);
        self.event(EventKind::Eviction, rank as u64);
    }

    /// A durable checkpoint landed at model version `version`.
    pub fn on_checkpoint(&self, version: u64) {
        self.metrics.checkpoints_written.fetch_add(1, Relaxed);
        let unix_now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        self.metrics.checkpoint_last_unix.store(unix_now, Relaxed);
        self.event(EventKind::Checkpoint, version);
    }

    /// Mirrors a layout change into the registry gauges: the epoch the process now
    /// runs at and the shards it now owns (group total on the coordinator).
    #[inline]
    pub fn set_layout(&self, epoch: u64, shards_owned: u64) {
        self.metrics.layout_epoch.store(epoch, Relaxed);
        self.metrics.shards_owned.store(shards_owned, Relaxed);
    }

    /// Mirrors the transport's byte counters into the registry (two stores).
    #[inline]
    pub fn mirror_transport(&self, stats: &TransportStats) {
        self.metrics.bytes_sent.store(stats.bytes_sent, Relaxed);
        self.metrics
            .bytes_received
            .store(stats.bytes_received, Relaxed);
    }

    /// Flushes the event log to its NDJSON file (`DIR/<role file name>`), returning
    /// the path written, or `None` when event logging is off. Also folds the log's
    /// dropped-event count into the registry so a scrape after the run sees it.
    pub fn flush(&self) -> std::io::Result<Option<PathBuf>> {
        let (Some(log), Some(dir)) = (&self.log, &self.dir) else {
            return Ok(None);
        };
        self.metrics.events_dropped.store(log.dropped(), Relaxed);
        log.flush_to_dir(dir).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssp_core::driver::JobConfig;
    use dssp_ps::PolicyKind;

    #[test]
    fn disabled_bundle_is_inert_and_flushes_to_nothing() {
        let obs = Obs::new(Role::Server, 0, None, None).unwrap();
        obs.event(EventKind::Push, 1);
        obs.on_pull(0, true, NO_TRACE);
        obs.on_join(2);
        assert_eq!(obs.flush().unwrap(), None);
        assert!(obs.metrics_addr().is_none());
        // Metric stores still land even without an endpoint.
        assert_eq!(obs.metrics().pulls_delta.load(Relaxed), 1);
        assert_eq!(obs.metrics().joins.load(Relaxed), 1);
    }

    #[test]
    fn push_hook_classifies_grants_blocks_and_releases() {
        let dir = std::env::temp_dir().join(format!("dssp-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let obs = Obs::new(Role::Server, 0, Some(&dir), None).unwrap();
        let job = JobConfig::small(PolicyKind::Dssp { s_l: 2, r_max: 4 });
        let sl = ServerLoop::new(&job);
        // Pusher granted with 3 extra credits, worker 1 released alongside.
        let traces = [
            dssp_core::events::trace_id(0, 7),
            dssp_core::events::trace_id(1, 3),
        ];
        obs.on_push(
            0,
            Some(5),
            &[
                OkReply {
                    worker: 0,
                    granted_extra: 3,
                },
                OkReply {
                    worker: 1,
                    granted_extra: 0,
                },
            ],
            &sl,
            &traces,
        );
        // Pusher blocked: no reply addressed to it (rank 2 is past the trace table,
        // so its events carry NO_TRACE — mixed-version fleets stay legal).
        obs.on_push(2, Some(0), &[], &sl, &traces);
        let path = obs.flush().unwrap().expect("log enabled");
        let text = std::fs::read_to_string(&path).unwrap();
        for needle in [
            "\"push\"",
            "\"credit-grant\"",
            "\"gate-release\"",
            "\"gate-block\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        // The pusher's events carry its trace; the released worker's release carries
        // the *released* rank's trace, not the pusher's.
        let lines: Vec<&str> = text.lines().collect();
        let release = lines
            .iter()
            .find(|l| l.contains("\"gate-release\""))
            .expect("release line");
        assert!(
            release.contains(&format!("\"trace\": {}", dssp_core::events::trace_id(1, 3))),
            "release should carry rank 1's trace: {release}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn straggler_flags_worker_with_outsized_wait() {
        let obs = Obs::new(Role::Server, 0, None, None).unwrap();
        let job = JobConfig::small(PolicyKind::Dssp { s_l: 2, r_max: 4 });
        let sl = ServerLoop::new(&job);
        let grant = |worker| OkReply {
            worker,
            granted_extra: 0,
        };
        // Six workers push so they count as active (a lone outlier among n ranks can
        // reach at most z = √(n−1), so n = 6 clears the 2.0 threshold); worker 3 then
        // sits blocked for a long window before being released, which should trip the
        // z-score check.
        for rank in 0..6 {
            obs.on_push(rank, None, &[grant(rank)], &sl, &[]);
        }
        obs.on_push(3, None, &[], &sl, &[]); // blocked
        obs.blocked_since_us[3].store(1, Relaxed); // pretend the block started eons ago
        obs.on_push(0, None, &[grant(0), grant(3)], &sl, &[]); // release rank 3
        let flags = obs.metrics().straggler_flags();
        assert_eq!(flags, 1 << 3, "only rank 3 should be flagged: {flags:#b}");
        // Wait totals equalize: flag must clear.
        for rank in (0..6).filter(|&r| r != 3) {
            obs.wait_total_us[rank].store(obs.wait_total_us[3].load(Relaxed), Relaxed);
        }
        obs.on_push(1, None, &[grant(1)], &sl, &[]);
        assert_eq!(obs.metrics().straggler_flags(), 0);
    }
}
