//! The per-process observability bundle: one [`EventLog`] (when `--event-log DIR` is
//! set), one [`Metrics`] registry, and one [`MetricsServer`] (when `--metrics-addr`
//! is set), wired together behind methods the serving loops call from their hot
//! paths.
//!
//! Everything here respects PR 4's zero-allocation guarantee: when observability is
//! enabled, each hook is a handful of relaxed atomic operations (an [`EventLog`]
//! slot claim plus counter updates); when disabled, the event hooks reduce to an
//! `Option` check and the metric stores still land in the preallocated registry
//! (nobody scrapes them, but keeping them unconditional keeps the hot path
//! branch-free). Rendering, serving and NDJSON flushing all happen off the serving
//! loop — on the scrape thread or after the run.
//!
//! The single server, the shard servers and the coordinator each own one `Obs`
//! ([`Role::Server`], [`Role::ShardServer`], [`Role::Coordinator`]); workers carry
//! only an event log (no endpoint) and use [`EventLog`] directly.

use crate::metrics::{Metrics, MetricsServer};
use crate::tcp::TransportStats;
use crate::NetError;
use dssp_core::driver::{OkReply, ServerLoop};
use dssp_core::events::{EventKind, EventLog, Role};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// One serving process's observability state. See the module docs for the contract.
pub struct Obs {
    log: Option<Arc<EventLog>>,
    dir: Option<PathBuf>,
    metrics: Arc<Metrics>,
    server: Option<MetricsServer>,
}

impl Obs {
    /// Builds the bundle for a serving role: an event log when `event_dir` is set
    /// (flushed to `dir/<role file name>` by [`Obs::flush`]) and a live `GET /metrics`
    /// endpoint when `metrics_addr` is set. Failing to bind the metrics listener is a
    /// startup error, not a silent no-op — a scrape target the operator asked for must
    /// exist or the run must say why.
    pub fn new(
        role: Role,
        rank: u32,
        event_dir: Option<&Path>,
        metrics_addr: Option<&str>,
    ) -> Result<Self, NetError> {
        let log = event_dir.map(|_| Arc::new(EventLog::new(role, rank)));
        let metrics = Arc::new(Metrics::new(role, rank));
        let server =
            match metrics_addr {
                Some(addr) => Some(MetricsServer::start(addr, Arc::clone(&metrics)).map_err(
                    |e| NetError::Protocol(format!("cannot serve metrics on {addr}: {e}")),
                )?),
                None => None,
            };
        Ok(Self {
            log,
            dir: event_dir.map(Path::to_path_buf),
            metrics,
            server,
        })
    }

    /// The metric registry (shared with the scrape thread).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The event log, for sharing with helpers that record events of their own (the
    /// coordinator hands it to its shard fan so re-dials surface as `reconnect`
    /// events). `None` when event logging is off.
    pub fn event_log(&self) -> Option<&Arc<EventLog>> {
        self.log.as_ref()
    }

    /// The address the metrics listener actually bound (resolves an ephemeral `:0`
    /// request), `None` when no endpoint was asked for.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.server.as_ref().map(MetricsServer::local_addr)
    }

    /// Records one structured event when the event log is enabled; a single branch
    /// otherwise.
    #[inline]
    pub fn event(&self, kind: EventKind, payload: u64) {
        if let Some(log) = &self.log {
            log.record(kind, payload);
        }
    }

    /// Mirrors the decision loop's cumulative counters into the registry: pushes,
    /// blocked pushes, r* credits granted and reclaimed, the model-version gauge and
    /// the blocked-worker gauge. The loop already keeps these totals for the run
    /// trace, so the registry stores them instead of double-counting — the scrape can
    /// never drift from the trace.
    #[inline]
    pub fn sync_loop(&self, sl: &ServerLoop) {
        let stats = sl.stats();
        self.metrics.pushes.store(stats.pushes, Relaxed);
        self.metrics
            .blocked_pushes
            .store(stats.blocked_pushes, Relaxed);
        self.metrics
            .credits_granted
            .store(stats.credits_granted, Relaxed);
        self.metrics
            .credits_reclaimed
            .store(stats.credits_reclaimed, Relaxed);
        self.metrics.version.store(sl.version(), Relaxed);
        self.metrics
            .blocked_workers
            .store(sl.blocked_count() as u64, Relaxed);
    }

    /// The per-push hook: a `push` event, the staleness sample (when the serving loop
    /// has one — the borrowed hot path does, the deterministic replay path does not),
    /// `gate-block`/`gate-release`/`credit-grant` events derived from the reply set,
    /// and a counter sync. `payload` conventions: the worker rank for `push`,
    /// `gate-block` and `gate-release`; the granted r* for `credit-grant`.
    #[inline]
    pub fn on_push(
        &self,
        pusher: usize,
        staleness: Option<u64>,
        replies: &[OkReply],
        sl: &ServerLoop,
    ) {
        self.event(EventKind::Push, pusher as u64);
        if let Some(staleness) = staleness {
            self.metrics.observe_staleness(staleness);
        }
        let mut granted = false;
        for reply in replies {
            if reply.worker == pusher {
                granted = true;
                if reply.granted_extra > 0 {
                    self.event(EventKind::CreditGrant, reply.granted_extra);
                }
            } else {
                self.event(EventKind::GateRelease, reply.worker as u64);
            }
        }
        if !granted {
            self.event(EventKind::GateBlock, pusher as u64);
        }
        self.sync_loop(sl);
    }

    /// The per-pull hook: one served pull, full or delta (`delta` is whether the
    /// reply actually shipped incrementally, not what the client asked for — the
    /// exported ratio is the delta *hit* rate).
    #[inline]
    pub fn on_pull(&self, rank: usize, delta: bool) {
        if delta {
            self.metrics.pulls_delta.fetch_add(1, Relaxed);
        } else {
            self.metrics.pulls_full.fetch_add(1, Relaxed);
        }
        self.event(EventKind::Pull, rank as u64);
    }

    /// A completed membership join (`JoinRequest`/`JoinAck` exchange).
    #[inline]
    pub fn on_join(&self, rank: usize) {
        self.metrics.joins.fetch_add(1, Relaxed);
        self.event(EventKind::Join, rank as u64);
    }

    /// A worker reaped from the run (death or explicit `Evict`). Counter syncing is
    /// the caller's job (via the surrounding [`Obs::on_push`]/[`Obs::sync_loop`]) —
    /// eviction reclaims credits, which the sync mirrors.
    #[inline]
    pub fn on_eviction(&self, rank: usize) {
        self.metrics.evictions.fetch_add(1, Relaxed);
        self.event(EventKind::Eviction, rank as u64);
    }

    /// A durable checkpoint landed at model version `version`.
    pub fn on_checkpoint(&self, version: u64) {
        self.metrics.checkpoints_written.fetch_add(1, Relaxed);
        let unix_now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        self.metrics.checkpoint_last_unix.store(unix_now, Relaxed);
        self.event(EventKind::Checkpoint, version);
    }

    /// Mirrors a layout change into the registry gauges: the epoch the process now
    /// runs at and the shards it now owns (group total on the coordinator).
    #[inline]
    pub fn set_layout(&self, epoch: u64, shards_owned: u64) {
        self.metrics.layout_epoch.store(epoch, Relaxed);
        self.metrics.shards_owned.store(shards_owned, Relaxed);
    }

    /// Mirrors the transport's byte counters into the registry (two stores).
    #[inline]
    pub fn mirror_transport(&self, stats: &TransportStats) {
        self.metrics.bytes_sent.store(stats.bytes_sent, Relaxed);
        self.metrics
            .bytes_received
            .store(stats.bytes_received, Relaxed);
    }

    /// Flushes the event log to its NDJSON file (`DIR/<role file name>`), returning
    /// the path written, or `None` when event logging is off. Also folds the log's
    /// dropped-event count into the registry so a scrape after the run sees it.
    pub fn flush(&self) -> std::io::Result<Option<PathBuf>> {
        let (Some(log), Some(dir)) = (&self.log, &self.dir) else {
            return Ok(None);
        };
        self.metrics.events_dropped.store(log.dropped(), Relaxed);
        log.flush_to_dir(dir).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssp_core::driver::JobConfig;
    use dssp_ps::PolicyKind;

    #[test]
    fn disabled_bundle_is_inert_and_flushes_to_nothing() {
        let obs = Obs::new(Role::Server, 0, None, None).unwrap();
        obs.event(EventKind::Push, 1);
        obs.on_pull(0, true);
        obs.on_join(2);
        assert_eq!(obs.flush().unwrap(), None);
        assert!(obs.metrics_addr().is_none());
        // Metric stores still land even without an endpoint.
        assert_eq!(obs.metrics().pulls_delta.load(Relaxed), 1);
        assert_eq!(obs.metrics().joins.load(Relaxed), 1);
    }

    #[test]
    fn push_hook_classifies_grants_blocks_and_releases() {
        let dir = std::env::temp_dir().join(format!("dssp-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let obs = Obs::new(Role::Server, 0, Some(&dir), None).unwrap();
        let job = JobConfig::small(PolicyKind::Dssp { s_l: 2, r_max: 4 });
        let sl = ServerLoop::new(&job);
        // Pusher granted with 3 extra credits, worker 1 released alongside.
        obs.on_push(
            0,
            Some(5),
            &[
                OkReply {
                    worker: 0,
                    granted_extra: 3,
                },
                OkReply {
                    worker: 1,
                    granted_extra: 0,
                },
            ],
            &sl,
        );
        // Pusher blocked: no reply addressed to it.
        obs.on_push(2, Some(0), &[], &sl);
        let path = obs.flush().unwrap().expect("log enabled");
        let text = std::fs::read_to_string(&path).unwrap();
        for needle in [
            "\"push\"",
            "\"credit-grant\"",
            "\"gate-release\"",
            "\"gate-block\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
