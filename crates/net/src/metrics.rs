//! Live metrics: atomically-updated counters with a hand-rolled Prometheus
//! text-format `GET /metrics` endpoint.
//!
//! Every serving role (single server, shard server, coordinator) owns a [`Metrics`]
//! registry — a fixed set of `AtomicU64` counters, gauges and one staleness histogram
//! — and, when `--metrics-addr` is set, a [`MetricsServer`]: a tiny dedicated
//! listener that answers `GET /metrics` with the Prometheus text exposition format
//! (version 0.0.4). There is no HTTP library in this offline workspace and none is
//! needed: the endpoint reads one request head and writes one `Content-Length`
//! response.
//!
//! The hot-path contract matches PR 4's zero-allocation guarantee: every update is a
//! plain `fetch_add`/`store` on a preallocated atomic — rendering (which does
//! allocate) happens only on the scrape thread, never on the serving loop.
//!
//! [`parse_exposition`] is the inverse of [`Metrics::render`], used by the
//! `repro -- stats` fleet summary and by the golden-format tests (HELP/TYPE
//! discipline, label escaping, histogram bucket monotonicity).

use dssp_core::events::Role;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bounds of the staleness histogram buckets (`le` labels); an implicit `+Inf`
/// bucket follows. Powers of two past 2 because DSSP leads concentrate near the
/// threshold.
pub const STALENESS_LE: [u64; 7] = [0, 1, 2, 4, 8, 16, 32];

const BUCKETS: usize = STALENESS_LE.len() + 1;

/// Upper bounds (µs) of the `dssp_round_time` histogram buckets — the per-worker
/// inter-push gap observed at the serving role. Spans sub-millisecond loopback
/// rounds to multi-second straggler rounds.
pub const ROUND_TIME_LE: [u64; 10] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000, 1_000_000,
];

const ROUND_BUCKETS: usize = ROUND_TIME_LE.len() + 1;

/// Upper bounds (µs) of the `dssp_push_latency` histogram buckets — the time between
/// a push's apply and its grant (0 for immediate grants; the gate wait for deferred
/// ones).
pub const PUSH_LATENCY_LE: [u64; 10] = [
    50, 100, 250, 500, 1_000, 2_500, 10_000, 50_000, 250_000, 1_000_000,
];

const LATENCY_BUCKETS: usize = PUSH_LATENCY_LE.len() + 1;

/// Highest worker rank the per-rank straggler bitmask gauges can represent.
pub const MAX_STRAGGLER_RANKS: usize = 64;

/// The fixed metric registry of one serving role. All fields are plain atomics so
/// serving loops update them allocation-free; [`Metrics::render`] snapshots them into
/// the Prometheus text format on the scrape thread.
#[derive(Debug)]
pub struct Metrics {
    role: Role,
    rank: u32,
    /// Pushes applied (or, on the coordinator, clock pushes gated).
    pub pushes: AtomicU64,
    /// Pushes whose worker was blocked by the synchronization gate.
    pub blocked_pushes: AtomicU64,
    /// Full-model pulls served.
    pub pulls_full: AtomicU64,
    /// Incremental (delta) pulls served.
    pub pulls_delta: AtomicU64,
    /// Bytes written to the data transport (frames + length prefixes).
    pub bytes_sent: AtomicU64,
    /// Bytes read from the data transport.
    pub bytes_received: AtomicU64,
    /// Gauge: workers currently blocked waiting for a deferred `OK`.
    pub blocked_workers: AtomicU64,
    /// Gauge: the current model version (total pushes applied).
    pub version: AtomicU64,
    /// Extra-iteration credits granted by the DSSP controller (sum of r*).
    pub credits_granted: AtomicU64,
    /// Unspent credits reclaimed from evicted workers.
    pub credits_reclaimed: AtomicU64,
    /// Checkpoints written by this process.
    pub checkpoints_written: AtomicU64,
    /// Gauge: Unix seconds of the most recent checkpoint (0 = none yet).
    pub checkpoint_last_unix: AtomicU64,
    /// Worker↔server links re-established after a drop.
    pub reconnects: AtomicU64,
    /// Workers evicted from the run.
    pub evictions: AtomicU64,
    /// Join/Hello handshakes completed.
    pub joins: AtomicU64,
    /// Structured events dropped because the event log was full.
    pub events_dropped: AtomicU64,
    /// Gauge: the layout epoch this process currently runs at (bumped by each
    /// committed live migration).
    pub layout_epoch: AtomicU64,
    /// Gauge: shards this process currently owns (coordinator reports the group
    /// total; a drained server reports 0).
    pub shards_owned: AtomicU64,
    staleness_buckets: [AtomicU64; BUCKETS],
    staleness_sum: AtomicU64,
    staleness_count: AtomicU64,
    round_time_buckets: [AtomicU64; ROUND_BUCKETS],
    round_time_sum: AtomicU64,
    round_time_count: AtomicU64,
    push_latency_buckets: [AtomicU64; LATENCY_BUCKETS],
    push_latency_sum: AtomicU64,
    push_latency_count: AtomicU64,
    /// Bitmask of ranks (< [`MAX_STRAGGLER_RANKS`]) that ever had a straggler verdict.
    straggler_seen: AtomicU64,
    /// Bitmask of ranks currently flagged as stragglers.
    straggler_flags: AtomicU64,
}

impl Metrics {
    /// A zeroed registry labelled `role`/`rank` (the labels on every exported series).
    pub fn new(role: Role, rank: u32) -> Self {
        Self {
            role,
            rank,
            pushes: AtomicU64::new(0),
            blocked_pushes: AtomicU64::new(0),
            pulls_full: AtomicU64::new(0),
            pulls_delta: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            blocked_workers: AtomicU64::new(0),
            version: AtomicU64::new(0),
            credits_granted: AtomicU64::new(0),
            credits_reclaimed: AtomicU64::new(0),
            checkpoints_written: AtomicU64::new(0),
            checkpoint_last_unix: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            joins: AtomicU64::new(0),
            events_dropped: AtomicU64::new(0),
            layout_epoch: AtomicU64::new(0),
            shards_owned: AtomicU64::new(0),
            staleness_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            staleness_sum: AtomicU64::new(0),
            staleness_count: AtomicU64::new(0),
            round_time_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            round_time_sum: AtomicU64::new(0),
            round_time_count: AtomicU64::new(0),
            push_latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            push_latency_sum: AtomicU64::new(0),
            push_latency_count: AtomicU64::new(0),
            straggler_seen: AtomicU64::new(0),
            straggler_flags: AtomicU64::new(0),
        }
    }

    /// The role label value.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The rank label value.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Records one per-push staleness sample into the histogram. Allocation-free:
    /// one bucket `fetch_add` plus sum/count updates.
    #[inline]
    pub fn observe_staleness(&self, staleness: u64) {
        let idx = STALENESS_LE
            .iter()
            .position(|le| staleness <= *le)
            .unwrap_or(BUCKETS - 1);
        self.staleness_buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.staleness_sum.fetch_add(staleness, Ordering::Relaxed);
        self.staleness_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one per-worker round time (inter-push gap, µs) into the
    /// `dssp_round_time` histogram. Allocation-free.
    #[inline]
    pub fn observe_round_time(&self, us: u64) {
        let idx = ROUND_TIME_LE
            .iter()
            .position(|le| us <= *le)
            .unwrap_or(ROUND_BUCKETS - 1);
        self.round_time_buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.round_time_sum.fetch_add(us, Ordering::Relaxed);
        self.round_time_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cross-role push latency sample (apply → grant, µs) into the
    /// `dssp_push_latency` histogram. Allocation-free.
    #[inline]
    pub fn observe_push_latency(&self, us: u64) {
        let idx = PUSH_LATENCY_LE
            .iter()
            .position(|le| us <= *le)
            .unwrap_or(LATENCY_BUCKETS - 1);
        self.push_latency_buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.push_latency_sum.fetch_add(us, Ordering::Relaxed);
        self.push_latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the straggler verdict for one rank (z-score of its cumulative gate wait
    /// above threshold → 1, otherwise 0). Two bitmask updates; ranks at or beyond
    /// [`MAX_STRAGGLER_RANKS`] are silently unrepresented.
    #[inline]
    pub fn set_straggler(&self, rank: usize, flagged: bool) {
        if rank >= MAX_STRAGGLER_RANKS {
            return;
        }
        let bit = 1u64 << rank;
        self.straggler_seen.fetch_or(bit, Ordering::Relaxed);
        if flagged {
            self.straggler_flags.fetch_or(bit, Ordering::Relaxed);
        } else {
            self.straggler_flags.fetch_and(!bit, Ordering::Relaxed);
        }
    }

    /// The current straggler bitmask (bit k = rank k flagged), for tests and the
    /// offline analyzer's live cross-check.
    pub fn straggler_flags(&self) -> u64 {
        self.straggler_flags.load(Ordering::Relaxed)
    }

    /// Renders the registry in the Prometheus text exposition format (0.0.4):
    /// `# HELP` / `# TYPE` headers, `role`/`rank` labels on every series, and a
    /// cumulative `dssp_staleness` histogram.
    pub fn render(&self) -> String {
        let labels = format!(
            "role=\"{}\",rank=\"{}\"",
            escape_label(self.role.as_str()),
            self.rank
        );
        let mut out = String::with_capacity(4096);
        let mut counter = |name: &str, help: &str, value: u64, extra: &str| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name}{{{labels}{extra}}} {value}");
        };
        counter(
            "dssp_pushes_total",
            "Gradient pushes applied (clock pushes gated, on the coordinator).",
            self.pushes.load(Ordering::Relaxed),
            "",
        );
        counter(
            "dssp_blocked_pushes_total",
            "Pushes whose worker was blocked by the synchronization gate.",
            self.blocked_pushes.load(Ordering::Relaxed),
            "",
        );
        counter(
            "dssp_credits_granted_total",
            "Extra-iteration credits granted by the DSSP controller (sum of r*).",
            self.credits_granted.load(Ordering::Relaxed),
            "",
        );
        counter(
            "dssp_credits_reclaimed_total",
            "Unspent credits reclaimed from evicted workers.",
            self.credits_reclaimed.load(Ordering::Relaxed),
            "",
        );
        counter(
            "dssp_checkpoints_written_total",
            "Checkpoints written by this process.",
            self.checkpoints_written.load(Ordering::Relaxed),
            "",
        );
        counter(
            "dssp_reconnects_total",
            "Worker-to-server links re-established after a drop.",
            self.reconnects.load(Ordering::Relaxed),
            "",
        );
        counter(
            "dssp_evictions_total",
            "Workers evicted from the run.",
            self.evictions.load(Ordering::Relaxed),
            "",
        );
        counter(
            "dssp_joins_total",
            "Join and Hello handshakes completed.",
            self.joins.load(Ordering::Relaxed),
            "",
        );
        counter(
            "dssp_events_dropped_total",
            "Structured events dropped because the event log was full.",
            self.events_dropped.load(Ordering::Relaxed),
            "",
        );

        // Labelled counter families share one HELP/TYPE header.
        let _ = writeln!(out, "# HELP dssp_pulls_total Pulls served, by mode.");
        let _ = writeln!(out, "# TYPE dssp_pulls_total counter");
        let _ = writeln!(
            out,
            "dssp_pulls_total{{{labels},mode=\"full\"}} {}",
            self.pulls_full.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "dssp_pulls_total{{{labels},mode=\"delta\"}} {}",
            self.pulls_delta.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# HELP dssp_bytes_total Bytes moved over the data transport, by direction."
        );
        let _ = writeln!(out, "# TYPE dssp_bytes_total counter");
        let _ = writeln!(
            out,
            "dssp_bytes_total{{{labels},direction=\"sent\"}} {}",
            self.bytes_sent.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "dssp_bytes_total{{{labels},direction=\"received\"}} {}",
            self.bytes_received.load(Ordering::Relaxed)
        );

        let mut gauge = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name}{{{labels}}} {value}");
        };
        gauge(
            "dssp_blocked_workers",
            "Workers currently blocked waiting for a deferred OK.",
            self.blocked_workers.load(Ordering::Relaxed),
        );
        gauge(
            "dssp_model_version",
            "Current model version (total pushes applied).",
            self.version.load(Ordering::Relaxed),
        );
        gauge(
            "dssp_checkpoint_last_timestamp_seconds",
            "Unix time of the most recent checkpoint (0 = none).",
            self.checkpoint_last_unix.load(Ordering::Relaxed),
        );
        gauge(
            "dssp_layout_epoch",
            "Layout epoch this process runs at (bumped by each committed migration).",
            self.layout_epoch.load(Ordering::Relaxed),
        );
        gauge(
            "dssp_shards_owned",
            "Shards this process currently owns (group total on the coordinator).",
            self.shards_owned.load(Ordering::Relaxed),
        );

        let _ = writeln!(
            out,
            "# HELP dssp_staleness Per-push staleness (clock lead over the slowest worker)."
        );
        let _ = writeln!(out, "# TYPE dssp_staleness histogram");
        let mut cumulative = 0u64;
        for (i, le) in STALENESS_LE.iter().enumerate() {
            cumulative += self.staleness_buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "dssp_staleness_bucket{{{labels},le=\"{le}\"}} {cumulative}"
            );
        }
        cumulative += self.staleness_buckets[BUCKETS - 1].load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "dssp_staleness_bucket{{{labels},le=\"+Inf\"}} {cumulative}"
        );
        let _ = writeln!(
            out,
            "dssp_staleness_sum{{{labels}}} {}",
            self.staleness_sum.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "dssp_staleness_count{{{labels}}} {}",
            self.staleness_count.load(Ordering::Relaxed)
        );

        let mut histogram =
            |name: &str, help: &str, le: &[u64], buckets: &[AtomicU64], sum: u64, count: u64| {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (i, le) in le.iter().enumerate() {
                    cumulative += buckets[i].load(Ordering::Relaxed);
                    let _ = writeln!(out, "{name}_bucket{{{labels},le=\"{le}\"}} {cumulative}");
                }
                cumulative += buckets[le.len()].load(Ordering::Relaxed);
                let _ = writeln!(out, "{name}_bucket{{{labels},le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(out, "{name}_sum{{{labels}}} {sum}");
                let _ = writeln!(out, "{name}_count{{{labels}}} {count}");
            };
        histogram(
            "dssp_round_time",
            "Per-worker round time in microseconds (inter-push gap at this role).",
            &ROUND_TIME_LE,
            &self.round_time_buckets,
            self.round_time_sum.load(Ordering::Relaxed),
            self.round_time_count.load(Ordering::Relaxed),
        );
        histogram(
            "dssp_push_latency",
            "Cross-role push latency in microseconds (gradient apply to clock grant).",
            &PUSH_LATENCY_LE,
            &self.push_latency_buckets,
            self.push_latency_sum.load(Ordering::Relaxed),
            self.push_latency_count.load(Ordering::Relaxed),
        );

        let seen = self.straggler_seen.load(Ordering::Relaxed);
        let flags = self.straggler_flags.load(Ordering::Relaxed);
        if seen != 0 {
            let _ = writeln!(
                out,
                "# HELP dssp_straggler Whether a worker's gate-wait share is a z-score outlier."
            );
            let _ = writeln!(out, "# TYPE dssp_straggler gauge");
            for rank in 0..MAX_STRAGGLER_RANKS {
                if seen & (1u64 << rank) != 0 {
                    let flagged = u64::from(flags & (1u64 << rank) != 0);
                    let _ = writeln!(
                        out,
                        "dssp_straggler{{{labels},worker=\"{rank}\"}} {flagged}"
                    );
                }
            }
        }
        out
    }
}

/// Escapes a Prometheus label value (`\` → `\\`, `"` → `\"`, newline → `\n`).
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One parsed sample line of an exposition page.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (e.g. `dssp_pushes_total`).
    pub name: String,
    /// Label pairs in source order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition page: samples plus the HELP/TYPE metadata seen.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// All sample lines, in page order.
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations: metric name → type string.
    pub types: Vec<(String, String)>,
    /// `# HELP` declarations: metric name → help text.
    pub helps: Vec<(String, String)>,
}

impl Exposition {
    /// First sample with this exact name and (subset of) labels.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        self.samples
            .iter()
            .find(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(v)))
    }

    /// Like [`Exposition::find`], returning the sample's value.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.find(name, labels).map(|s| s.value)
    }
}

/// Parses a Prometheus text-format page (the dialect [`Metrics::render`] writes:
/// HELP/TYPE comment lines plus `name{labels} value` samples). Malformed lines are an
/// error, so the golden tests prove the page stays machine-readable.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut page = Exposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let fail = |msg: &str| format!("line {}: {msg}: {line}", lineno + 1);
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or_default();
            let name = parts.next().ok_or_else(|| fail("comment missing name"))?;
            let tail = parts.next().unwrap_or_default();
            match keyword {
                "HELP" => page.helps.push((name.to_string(), tail.to_string())),
                "TYPE" => {
                    if !matches!(
                        tail,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(fail("unknown metric type"));
                    }
                    page.types.push((name.to_string(), tail.to_string()));
                }
                _ => return Err(fail("unknown comment keyword")),
            }
            continue;
        }
        page.samples.push(parse_sample(line).map_err(|e| fail(&e))?);
    }
    Ok(page)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| "sample missing value".to_string())?;
    let value: f64 = value
        .parse()
        .map_err(|_| "invalid sample value".to_string())?;
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            (name.to_string(), parse_labels(body)?)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("invalid metric name '{name}'"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err("empty label name".to_string());
        }
        if chars.next() != Some('"') {
            return Err("label value must be quoted".to_string());
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated label value".to_string()),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return Err("invalid label escape".to_string()),
                },
                Some(c) => value.push(c),
            }
        }
        labels.push((key, value));
        match chars.next() {
            None => return Ok(labels),
            Some(',') => continue,
            Some(_) => return Err("expected ',' between labels".to_string()),
        }
    }
}

/// Derives the listen address for a role `offset` ports above the base
/// `--metrics-addr` (shard server `i` listens at `port + 1 + i`). `None` if the base
/// does not end in a numeric port or the port would overflow.
pub fn derive_metrics_addr(base: &str, offset: u16) -> Option<String> {
    let (host, port) = base.rsplit_once(':')?;
    let port: u16 = port.parse().ok()?;
    let port = port.checked_add(offset)?;
    Some(format!("{host}:{port}"))
}

/// The dedicated `GET /metrics` listener: accepts plain HTTP/1.x requests on its own
/// thread and answers each with a freshly rendered exposition page. Stop (or drop)
/// joins the thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9100`; port 0 picks an ephemeral port) and
    /// starts the responder thread.
    pub fn start(addr: &str, metrics: Arc<Metrics>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("metrics-{local}"))
            .spawn(move || accept_loop(listener, metrics, stop_flag))?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the responder thread and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, metrics: Arc<Metrics>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: scrapes are rare, tiny and read-only.
                let _ = respond(stream, &metrics);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn respond(mut stream: TcpStream, metrics: &Metrics) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut head = [0u8; 1024];
    let mut filled = 0;
    // Read until the end of the request head (or the buffer is full — more than
    // enough for the GET lines curl and `repro -- stats` send).
    while filled < head.len() {
        match stream.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                if head[..filled].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&head[..filled]);
    let line = request.lines().next().unwrap_or_default();
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = if method == "GET" && (path == "/metrics" || path == "/") {
        ("200 OK", metrics.render())
    } else {
        ("404 Not Found", "only GET /metrics is served\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Scrapes `addr` once over plain TCP (a one-shot `GET /metrics`), returning the
/// response body. The client half of [`MetricsServer`], shared by `repro -- stats`
/// and the endpoint tests.
pub fn scrape(addr: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response")
        })?;
    if !response.starts_with("HTTP/1.1 200") && !response.starts_with("HTTP/1.0 200") {
        return Err(std::io::Error::other(format!(
            "non-200 response: {}",
            response.lines().next().unwrap_or_default()
        )));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parses_and_buckets_are_monotonic() {
        let m = Metrics::new(Role::Server, 0);
        m.pushes.store(42, Ordering::Relaxed);
        for s in [0, 0, 1, 3, 9, 100] {
            m.observe_staleness(s);
        }
        let page = parse_exposition(&m.render()).expect("rendered page parses");
        assert_eq!(
            page.value("dssp_pushes_total", &[("role", "server"), ("rank", "0")]),
            Some(42.0)
        );
        let buckets: Vec<f64> = page
            .samples
            .iter()
            .filter(|s| s.name == "dssp_staleness_bucket")
            .map(|s| s.value)
            .collect();
        assert_eq!(buckets.len(), STALENESS_LE.len() + 1);
        assert!(
            buckets.windows(2).all(|w| w[0] <= w[1]),
            "cumulative buckets"
        );
        assert_eq!(*buckets.last().unwrap(), 6.0);
        assert_eq!(page.value("dssp_staleness_sum", &[]), Some(113.0));
    }

    #[test]
    fn latency_histograms_and_straggler_gauges_render() {
        let m = Metrics::new(Role::Coordinator, 0);
        for us in [80, 900, 4_000, 2_000_000] {
            m.observe_round_time(us);
        }
        for us in [0, 40, 700, 90_000] {
            m.observe_push_latency(us);
        }
        m.set_straggler(0, false);
        m.set_straggler(2, true);
        let page = parse_exposition(&m.render()).expect("rendered page parses");
        for name in ["dssp_round_time_bucket", "dssp_push_latency_bucket"] {
            let buckets: Vec<f64> = page
                .samples
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.value)
                .collect();
            assert_eq!(buckets.len(), ROUND_TIME_LE.len() + 1, "{name}");
            assert!(
                buckets.windows(2).all(|w| w[0] <= w[1]),
                "{name} cumulative"
            );
            assert_eq!(*buckets.last().unwrap(), 4.0, "{name} total");
        }
        assert_eq!(page.value("dssp_round_time_count", &[]), Some(4.0));
        assert_eq!(page.value("dssp_push_latency_sum", &[]), Some(90740.0));
        assert_eq!(page.value("dssp_straggler", &[("worker", "0")]), Some(0.0));
        assert_eq!(page.value("dssp_straggler", &[("worker", "2")]), Some(1.0));
        // Un-flagging clears the gauge but keeps the series visible.
        m.set_straggler(2, false);
        let page = parse_exposition(&m.render()).unwrap();
        assert_eq!(page.value("dssp_straggler", &[("worker", "2")]), Some(0.0));
    }

    #[test]
    fn label_escaping_round_trips() {
        let awkward = "we\\ird\"la\nbel";
        let line = format!("m{{l=\"{}\"}} 1", escape_label(awkward));
        let page = parse_exposition(&line).unwrap();
        assert_eq!(page.samples[0].label("l"), Some(awkward));
    }

    #[test]
    fn malformed_pages_are_rejected() {
        assert!(parse_exposition("# TYPE m flavour\n").is_err());
        assert!(parse_exposition("m{l=\"unterminated} 1\n").is_err());
        assert!(parse_exposition("m{l=\"v\"} not-a-number\n").is_err());
        assert!(parse_exposition("1bad_name 2\n").is_err());
    }

    #[test]
    fn derive_addr_offsets_the_port() {
        assert_eq!(
            derive_metrics_addr("127.0.0.1:9100", 2).as_deref(),
            Some("127.0.0.1:9102")
        );
        assert_eq!(derive_metrics_addr("bad", 1), None);
    }

    #[test]
    fn http_endpoint_serves_a_parseable_page() {
        let metrics = Arc::new(Metrics::new(Role::ShardServer, 3));
        metrics.pulls_delta.store(7, Ordering::Relaxed);
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&metrics)).unwrap();
        let addr = server.local_addr().to_string();
        let body = scrape(&addr).expect("scrape succeeds");
        let page = parse_exposition(&body).expect("scraped page parses");
        assert_eq!(
            page.value(
                "dssp_pulls_total",
                &[("role", "shard"), ("rank", "3"), ("mode", "delta")]
            ),
            Some(7.0)
        );
        server.stop();
    }
}
