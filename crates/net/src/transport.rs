//! The transport abstraction and the in-process loopback implementation.
//!
//! A transport moves [`Message`]s between one server and `N` ranked workers. Two
//! implementations exist:
//!
//! * [`crate::tcp`] — real sockets, one blocking reader thread per connection;
//! * [`loopback`] — crossbeam channels inside one process, useful for tests and for
//!   proving that the networked server is bitwise-equivalent to the threaded runtime
//!   (no serialization happens, but the *protocol* — including the explicit pull step —
//!   is exercised in full).

use crate::wire::Message;
use crate::NetError;
use crossbeam_channel::{unbounded, Receiver, Sender};

/// Server side of a transport: a stream of rank-attributed incoming messages plus a
/// way to address each worker.
///
/// Implementations attribute messages to ranks from each connection's `Hello`; the
/// server logic on top still validates the handshake contents.
pub trait ServerTransport: Send {
    /// Number of workers this transport serves.
    fn num_workers(&self) -> usize;

    /// Blocks for the next message from any worker, attributed with its rank.
    fn recv(&mut self) -> Result<(usize, Message), NetError>;

    /// Sends a message to one worker.
    fn send(&mut self, rank: usize, msg: &Message) -> Result<(), NetError>;

    /// Best-effort broadcast (used for `Shutdown`); per-worker failures are ignored
    /// because exiting workers legitimately race the broadcast.
    fn broadcast(&mut self, msg: &Message) {
        for rank in 0..self.num_workers() {
            let _ = self.send(rank, msg);
        }
    }
}

/// Worker side of a transport: a bidirectional message pipe to the server.
pub trait WorkerTransport: Send {
    /// Sends a message to the server.
    fn send(&mut self, msg: &Message) -> Result<(), NetError>;

    /// Blocks for the next message from the server.
    fn recv(&mut self) -> Result<Message, NetError>;
}

/// Server end of a [`loopback`] transport.
pub struct LoopbackServer {
    events: Receiver<(usize, Message)>,
    replies: Vec<Sender<Message>>,
}

/// Worker end of a [`loopback`] transport.
pub struct LoopbackWorker {
    rank: usize,
    to_server: Sender<(usize, Message)>,
    from_server: Receiver<Message>,
}

/// Creates an in-process transport connecting one server to `num_workers` workers over
/// unbounded channels. Messages are moved, not serialized, so weights and gradients
/// are trivially bit-preserved; everything else about the protocol (handshake, explicit
/// pulls, shutdown broadcast) behaves exactly like the TCP transport.
///
/// # Panics
///
/// Panics if `num_workers` is zero.
pub fn loopback(num_workers: usize) -> (LoopbackServer, Vec<LoopbackWorker>) {
    assert!(num_workers > 0, "need at least one worker");
    let (event_tx, event_rx) = unbounded();
    let mut replies = Vec::with_capacity(num_workers);
    let mut workers = Vec::with_capacity(num_workers);
    for rank in 0..num_workers {
        let (reply_tx, reply_rx) = unbounded();
        replies.push(reply_tx);
        workers.push(LoopbackWorker {
            rank,
            to_server: event_tx.clone(),
            from_server: reply_rx,
        });
    }
    (
        LoopbackServer {
            events: event_rx,
            replies,
        },
        workers,
    )
}

impl ServerTransport for LoopbackServer {
    fn num_workers(&self) -> usize {
        self.replies.len()
    }

    fn recv(&mut self) -> Result<(usize, Message), NetError> {
        self.events.recv().map_err(|_| NetError::Disconnected)
    }

    fn send(&mut self, rank: usize, msg: &Message) -> Result<(), NetError> {
        self.replies[rank]
            .send(msg.clone())
            .map_err(|_| NetError::Disconnected)
    }
}

impl WorkerTransport for LoopbackWorker {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        self.to_server
            .send((self.rank, msg.clone()))
            .map_err(|_| NetError::Disconnected)
    }

    fn recv(&mut self) -> Result<Message, NetError> {
        self.from_server.recv().map_err(|_| NetError::Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_routes_by_rank() {
        let (mut server, mut workers) = loopback(2);
        workers[1].send(&Message::Pull).unwrap();
        let (rank, msg) = server.recv().unwrap();
        assert_eq!(rank, 1);
        assert_eq!(msg, Message::Pull);
        server
            .send(
                0,
                &Message::PushReply {
                    granted_extra: 0,
                    version: 5,
                },
            )
            .unwrap();
        assert!(matches!(
            workers[0].recv().unwrap(),
            Message::PushReply { version: 5, .. }
        ));
    }

    #[test]
    fn dropping_the_server_disconnects_workers() {
        let (server, mut workers) = loopback(1);
        drop(server);
        assert!(matches!(workers[0].recv(), Err(NetError::Disconnected)));
    }
}
