//! The transport abstraction and the in-process loopback implementation.
//!
//! A transport moves [`Message`]s between one server and `N` ranked workers. Two
//! implementations exist:
//!
//! * [`crate::tcp`] — real sockets, one blocking reader thread per connection;
//! * [`loopback`] — crossbeam channels inside one process, useful for tests and for
//!   proving that the networked server is bitwise-equivalent to the threaded runtime
//!   (no serialization happens, but the *protocol* — including the explicit pull step
//!   and the delta-pull negotiation — is exercised in full).
//!
//! Besides the owned-`Message` `send`/`recv` pair, both traits expose a buffer-reuse
//! fast path for the steady-state hot loop: workers push borrowed gradient slices
//! ([`WorkerTransport::send_push`]) and pull into caller-owned weight/version caches
//! ([`WorkerTransport::pull_into`]); the server answers pulls from a borrowed
//! [`PullView`] of its store ([`ServerTransport::send_pull_reply`]) and hands consumed
//! bulk buffers back to the transport for recycling
//! ([`ServerTransport::recycle_f32s`]). The TCP transport implements these with pooled
//! encode/decode buffers so neither endpoint allocates per message; the loopback
//! transport keeps the simple owned-message defaults (its purpose is equivalence
//! testing, not throughput).

use crate::wire::{self, Message, PullApplied, ShardUpdate};
use crate::NetError;
use crossbeam_channel::{unbounded, Receiver, Sender};

/// A borrowed snapshot of the server's parameter store, from which a pull reply —
/// full or delta — is encoded without copying the weights anywhere first.
///
/// `offsets` and `versions` come straight from the server's
/// [`dssp_ps::ShardedStore`]; `known` carries the requesting worker's cached
/// per-shard versions when the request was a [`Message::PullDelta`] (`None` for a
/// plain full pull).
#[derive(Debug, Clone, Copy)]
pub struct PullView<'a> {
    /// Server weight version (total pushes applied).
    pub clock: u64,
    /// Per-shard update versions, in shard order.
    pub versions: &'a [u64],
    /// Shard start offsets plus a final total-length sentinel
    /// (`offsets.len() == versions.len() + 1`).
    pub offsets: &'a [usize],
    /// The flat weight vector.
    pub weights: &'a [f32],
    /// The client's cached versions (`Some` for a delta request).
    pub known: Option<&'a [u64]>,
}

impl<'a> PullView<'a> {
    /// Whether the client's `known` vector is one this view can answer incrementally:
    /// present, one entry per shard, and nowhere ahead of the server (a client from a
    /// previous server life falls back to a full reply).
    pub fn delta_applicable(&self) -> bool {
        self.known
            .is_some_and(|known| dssp_ps::delta_compatible(self.versions, known))
    }

    /// The stale shards a delta reply ships: `(shard, version, weights)` for every
    /// shard whose version advanced past the client's.
    ///
    /// # Panics
    ///
    /// Panics if called without an applicable `known` vector.
    pub fn stale_updates(&self) -> impl Iterator<Item = (u32, u64, &'a [f32])> + '_ {
        let known = self.known.expect("stale_updates requires a known vector");
        assert_eq!(known.len(), self.versions.len(), "shard count mismatch");
        (0..self.versions.len()).filter_map(move |i| {
            (self.versions[i] > known[i]).then(|| {
                (
                    i as u32,
                    self.versions[i],
                    &self.weights[self.offsets[i]..self.offsets[i + 1]],
                )
            })
        })
    }

    /// Encodes the reply this view answers with — a delta when applicable, a full
    /// reply otherwise — appending the payload to `buf`. Byte-identical to encoding
    /// [`PullView::to_message`], but without materializing owned vectors (the server's
    /// zero-copy path).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        if self.delta_applicable() {
            wire::encode_pull_reply_delta(buf, self.clock, self.stale_updates());
        } else {
            wire::encode_pull_reply(buf, self.clock, self.versions, self.weights);
        }
    }

    /// Builds the owned reply message — a delta when applicable, a full reply
    /// otherwise. Used by the loopback transport, which moves messages instead of
    /// serializing them.
    pub fn to_message(&self) -> Message {
        if self.delta_applicable() {
            Message::PullReplyDelta {
                clock: self.clock,
                updates: self
                    .stale_updates()
                    .map(|(shard, version, weights)| ShardUpdate {
                        shard,
                        version,
                        weights: weights.to_vec(),
                    })
                    .collect(),
            }
        } else {
            Message::PullReply {
                clock: self.clock,
                shard_versions: self.versions.to_vec(),
                weights: self.weights.to_vec(),
            }
        }
    }
}

/// Outcome of a [`WorkerTransport::pull_into`] exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PullOutcome {
    /// A reply arrived and was applied to the caller's weight/version caches.
    Applied(PullApplied),
    /// The server shut the run down instead of answering.
    Shutdown {
        /// [`wire::SHUTDOWN_OK`] or [`wire::SHUTDOWN_SERVER_ERROR`].
        reason: u8,
    },
}

/// Applies an owned pull-reply message to a worker's cached weight and version
/// vectors, mirroring [`wire::apply_pull_reply`]'s semantics for transports that move
/// messages instead of bytes (loopback, tests).
pub fn apply_pull_message(
    msg: Message,
    weights: &mut Vec<f32>,
    versions: &mut Vec<u64>,
) -> Result<PullOutcome, NetError> {
    match msg {
        Message::PullReply {
            clock,
            shard_versions,
            weights: fresh,
        } => {
            versions.clear();
            versions.extend_from_slice(&shard_versions);
            weights.clear();
            weights.extend_from_slice(&fresh);
            Ok(PullOutcome::Applied(PullApplied {
                clock,
                full: true,
                shards_updated: versions.len(),
            }))
        }
        Message::PullReplyDelta { clock, updates } => {
            let shards_updated = updates.len();
            for update in &updates {
                let shard = update.shard;
                if (shard as usize) >= versions.len() {
                    return Err(wire::WireError::BadShard { shard }.into());
                }
                let (start, end) =
                    dssp_ps::shard_range(weights.len(), versions.len(), shard as usize);
                if update.weights.len() != end - start {
                    return Err(wire::WireError::BadShard { shard }.into());
                }
                weights[start..end].copy_from_slice(&update.weights);
                versions[shard as usize] = update.version;
            }
            Ok(PullOutcome::Applied(PullApplied {
                clock,
                full: false,
                shards_updated,
            }))
        }
        Message::Shutdown { reason } => Ok(PullOutcome::Shutdown { reason }),
        // Typed, retryable: the caller (the group fan) waits out a frozen server or
        // adopts the committed layout and retries the round.
        Message::EpochRefused { epoch, assignment } => {
            Err(NetError::EpochRefused { epoch, assignment })
        }
        other => Err(NetError::Protocol(format!(
            "expected a pull reply, got {other:?}"
        ))),
    }
}

/// Server side of a transport: a stream of rank-attributed incoming messages plus a
/// way to address each worker.
///
/// Implementations attribute messages to ranks from each connection's `Hello`; the
/// server logic on top still validates the handshake contents.
pub trait ServerTransport: Send {
    /// Number of workers this transport serves.
    fn num_workers(&self) -> usize;

    /// Blocks for the next message from any worker, attributed with its rank.
    fn recv(&mut self) -> Result<(usize, Message), NetError>;

    /// Sends a message to one worker.
    fn send(&mut self, rank: usize, msg: &Message) -> Result<(), NetError>;

    /// Answers a pull request from a borrowed snapshot of the server's store —
    /// incrementally when `view.known` permits, fully otherwise. Implementations may
    /// encode straight from the view (the TCP transport memcpys the stale shard
    /// ranges into a pooled frame buffer); the default builds an owned message.
    fn send_pull_reply(&mut self, rank: usize, view: &PullView<'_>) -> Result<(), NetError> {
        self.send(rank, &view.to_message())
    }

    /// Hands a consumed bulk `f32` buffer (a processed push's gradients) back to the
    /// transport for reuse by `rank`'s connection. Default: drop it.
    fn recycle_f32s(&mut self, _rank: usize, _buf: Vec<f32>) {}

    /// Hands a consumed bulk `u64` buffer (a processed delta pull's version vector)
    /// back to the transport for reuse by `rank`'s connection. Default: drop it.
    fn recycle_u64s(&mut self, _rank: usize, _buf: Vec<u64>) {}

    /// Sends an already-encoded payload as one frame to `rank` — the zero-copy path
    /// for replies encoded straight from borrowed state (a shard server's
    /// `PullReplyDelta`, built from its store without intermediate vectors). The
    /// default decodes and re-sends as an owned message, so transports that move
    /// messages instead of bytes (loopback) stay correct.
    fn send_payload(&mut self, rank: usize, payload: &[u8]) -> Result<(), NetError> {
        self.send(rank, &wire::decode(payload)?)
    }

    /// Byte/frame counters accumulated by this transport so far. Defaults to zero for
    /// transports that do not serialize (loopback).
    fn transport_stats(&self) -> crate::tcp::TransportStats {
        crate::tcp::TransportStats::default()
    }

    /// Best-effort broadcast (used for `Shutdown`); per-worker failures are ignored
    /// because exiting workers legitimately race the broadcast.
    fn broadcast(&mut self, msg: &Message) {
        for rank in 0..self.num_workers() {
            let _ = self.send(rank, msg);
        }
    }
}

/// Worker side of a transport: a bidirectional message pipe to the server.
pub trait WorkerTransport: Send {
    /// Sends a message to the server.
    fn send(&mut self, msg: &Message) -> Result<(), NetError>;

    /// Records the last server clock (weight version) this side saw confirmed, so a
    /// transport that later reports [`NetError::PeerLost`] can say where the session
    /// stood. Default: no-op (loopback links cannot be lost).
    fn note_confirmed_clock(&mut self, _clock: u64) {}

    /// Blocks for the next message from the server.
    fn recv(&mut self) -> Result<Message, NetError>;

    /// Pushes one iteration's gradients from a borrowed slice, stamped with the
    /// worker's causal `trace` id. The TCP transport encodes the frame straight from
    /// the slice into a pooled buffer; the default copies into an owned
    /// [`Message::Push`].
    fn send_push(&mut self, iteration: u64, trace: u64, grads: &[f32]) -> Result<(), NetError> {
        self.send(&Message::Push {
            iteration,
            trace,
            grads: grads.to_vec(),
        })
    }

    /// One pull exchange against the caller's weight/version caches: requests a delta
    /// when `delta` is set and `versions` is warm (otherwise a full pull), then
    /// applies the reply in place. `versions` doubles as the request's
    /// `known_versions` and is updated by the reply. The request carries the worker's
    /// causal `trace` id.
    fn pull_into(
        &mut self,
        delta: bool,
        trace: u64,
        weights: &mut Vec<f32>,
        versions: &mut Vec<u64>,
    ) -> Result<PullOutcome, NetError> {
        if delta && !versions.is_empty() {
            self.send(&Message::PullDelta {
                trace,
                known_versions: versions.clone(),
            })?;
        } else {
            self.send(&Message::Pull { trace })?;
        }
        let msg = self.recv()?;
        apply_pull_message(msg, weights, versions)
    }

    /// Pushes one iteration's gradient **slice** (a shard server's key range of the
    /// full gradient vector) from a borrowed slice. The TCP transport encodes the
    /// frame straight from the slice; the default copies into an owned
    /// [`Message::PushSlice`]. Part of a group worker's fan-out: requests go to every
    /// server first, then the [`Message::SliceAck`]s are collected, so the servers
    /// work concurrently.
    fn send_push_slice(
        &mut self,
        iteration: u64,
        epoch: u64,
        trace: u64,
        grads: &[f32],
    ) -> Result<(), NetError> {
        self.send(&Message::PushSlice {
            iteration,
            epoch,
            trace,
            grads: grads.to_vec(),
        })
    }

    /// Sends a shard-scoped pull request ([`Message::PullShards`]) from a borrowed
    /// sub-range of the caller's global version cache, stamped with the layout
    /// `epoch` the worker believes is current. The TCP transport encodes from the
    /// borrow; the default copies.
    fn send_pull_shards(
        &mut self,
        known_versions: &[u64],
        all: bool,
        epoch: u64,
        trace: u64,
    ) -> Result<(), NetError> {
        self.send(&Message::PullShards {
            known_versions: known_versions.to_vec(),
            all,
            epoch,
            trace,
        })
    }

    /// Receives one pull reply and applies it to the caller's **global** weight and
    /// version buffers in place (a shard server's reply carries global shard indices,
    /// so each update lands in its own key range). The TCP transport applies straight
    /// from the frame payload; the default goes through an owned message.
    fn recv_pull_apply(
        &mut self,
        weights: &mut Vec<f32>,
        versions: &mut Vec<u64>,
    ) -> Result<PullOutcome, NetError> {
        let msg = self.recv()?;
        apply_pull_message(msg, weights, versions)
    }
}

/// Server end of a [`loopback`] transport.
pub struct LoopbackServer {
    events: Receiver<(usize, Message)>,
    replies: Vec<Sender<Message>>,
}

/// Worker end of a [`loopback`] transport.
pub struct LoopbackWorker {
    rank: usize,
    to_server: Sender<(usize, Message)>,
    from_server: Receiver<Message>,
}

/// Creates an in-process transport connecting one server to `num_workers` workers over
/// unbounded channels. Messages are moved, not serialized, so weights and gradients
/// are trivially bit-preserved; everything else about the protocol (handshake, explicit
/// pulls, delta negotiation, shutdown broadcast) behaves exactly like the TCP
/// transport.
///
/// # Panics
///
/// Panics if `num_workers` is zero.
pub fn loopback(num_workers: usize) -> (LoopbackServer, Vec<LoopbackWorker>) {
    assert!(num_workers > 0, "need at least one worker");
    let (event_tx, event_rx) = unbounded();
    let mut replies = Vec::with_capacity(num_workers);
    let mut workers = Vec::with_capacity(num_workers);
    for rank in 0..num_workers {
        let (reply_tx, reply_rx) = unbounded();
        replies.push(reply_tx);
        workers.push(LoopbackWorker {
            rank,
            to_server: event_tx.clone(),
            from_server: reply_rx,
        });
    }
    (
        LoopbackServer {
            events: event_rx,
            replies,
        },
        workers,
    )
}

impl ServerTransport for LoopbackServer {
    fn num_workers(&self) -> usize {
        self.replies.len()
    }

    fn recv(&mut self) -> Result<(usize, Message), NetError> {
        self.events.recv().map_err(|_| NetError::Disconnected)
    }

    fn send(&mut self, rank: usize, msg: &Message) -> Result<(), NetError> {
        self.replies[rank]
            .send(msg.clone())
            .map_err(|_| NetError::Disconnected)
    }
}

impl WorkerTransport for LoopbackWorker {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        self.to_server
            .send((self.rank, msg.clone()))
            .map_err(|_| NetError::Disconnected)
    }

    fn recv(&mut self) -> Result<Message, NetError> {
        self.from_server.recv().map_err(|_| NetError::Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_routes_by_rank() {
        let (mut server, mut workers) = loopback(2);
        workers[1].send(&Message::Pull { trace: 0 }).unwrap();
        let (rank, msg) = server.recv().unwrap();
        assert_eq!(rank, 1);
        assert_eq!(msg, Message::Pull { trace: 0 });
        server
            .send(
                0,
                &Message::PushReply {
                    granted_extra: 0,
                    version: 5,
                },
            )
            .unwrap();
        assert!(matches!(
            workers[0].recv().unwrap(),
            Message::PushReply { version: 5, .. }
        ));
    }

    #[test]
    fn dropping_the_server_disconnects_workers() {
        let (server, mut workers) = loopback(1);
        drop(server);
        assert!(matches!(workers[0].recv(), Err(NetError::Disconnected)));
    }

    fn view<'a>(
        clock: u64,
        versions: &'a [u64],
        offsets: &'a [usize],
        weights: &'a [f32],
        known: Option<&'a [u64]>,
    ) -> PullView<'a> {
        PullView {
            clock,
            versions,
            offsets,
            weights,
            known,
        }
    }

    #[test]
    fn pull_view_falls_back_to_full_replies_when_the_cache_is_incompatible() {
        let versions = [3u64, 4];
        let offsets = [0usize, 2, 4];
        let weights = [1.0f32, 2.0, 3.0, 4.0];
        // No cache (first contact).
        assert!(!view(7, &versions, &offsets, &weights, None).delta_applicable());
        // Wrong shard count.
        let short = [3u64];
        assert!(!view(7, &versions, &offsets, &weights, Some(&short)).delta_applicable());
        // Client ahead of the server (stale cache from a previous server life).
        let future = [9u64, 4];
        assert!(!view(7, &versions, &offsets, &weights, Some(&future)).delta_applicable());
        // Compatible cache.
        let known = [3u64, 3];
        let v = view(7, &versions, &offsets, &weights, Some(&known));
        assert!(v.delta_applicable());
        let updates: Vec<_> = v.stale_updates().collect();
        assert_eq!(updates, vec![(1u32, 4u64, &weights[2..4])]);
    }

    #[test]
    fn pull_view_zero_copy_encode_matches_the_owned_message_encoding() {
        let versions = [5u64, 5, 7];
        let offsets = [0usize, 2, 4, 5];
        let weights = [0.5f32, 1.5, 2.5, 3.5, 4.5];
        for known in [
            None,
            Some(&[5u64, 5, 7][..]), // nothing stale -> empty delta
            Some(&[4u64, 5, 0][..]), // two stale shards
            Some(&[5u64, 5][..]),    // incompatible -> full
        ] {
            let v = view(9, &versions, &offsets, &weights, known);
            let mut zero_copy = Vec::new();
            v.encode(&mut zero_copy);
            let mut owned = Vec::new();
            wire::encode(&v.to_message(), &mut owned);
            assert_eq!(zero_copy, owned, "known={known:?}");
        }
    }

    #[test]
    fn apply_pull_message_mirrors_the_byte_level_apply() {
        let mut weights = Vec::new();
        let mut versions = Vec::new();
        let full = Message::PullReply {
            clock: 3,
            shard_versions: vec![1, 1],
            weights: vec![1.0, 2.0, 3.0],
        };
        let outcome = apply_pull_message(full, &mut weights, &mut versions).unwrap();
        assert_eq!(
            outcome,
            PullOutcome::Applied(PullApplied {
                clock: 3,
                full: true,
                shards_updated: 2
            })
        );
        // Layout of 3 params over 2 shards: [0..2), [2..3).
        let delta = Message::PullReplyDelta {
            clock: 5,
            updates: vec![ShardUpdate {
                shard: 1,
                version: 2,
                weights: vec![-3.0],
            }],
        };
        let outcome = apply_pull_message(delta, &mut weights, &mut versions).unwrap();
        assert_eq!(
            outcome,
            PullOutcome::Applied(PullApplied {
                clock: 5,
                full: false,
                shards_updated: 1
            })
        );
        assert_eq!(weights, vec![1.0, 2.0, -3.0]);
        assert_eq!(versions, vec![1, 2]);
        // A wrong-length update is rejected.
        let bad = Message::PullReplyDelta {
            clock: 6,
            updates: vec![ShardUpdate {
                shard: 0,
                version: 3,
                weights: vec![0.0; 3],
            }],
        };
        assert!(apply_pull_message(bad, &mut weights, &mut versions).is_err());
    }
}
