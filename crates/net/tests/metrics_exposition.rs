//! Golden-format tests for the Prometheus text exposition: every rendered page must
//! parse with [`parse_exposition`] (the same parser `repro -- stats` uses), keep its
//! HELP/TYPE discipline, and serve identically over a real `GET /metrics` socket.

use dssp_core::events::Role;
use dssp_net::metrics::{parse_exposition, scrape, Metrics, MetricsServer, STALENESS_LE};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

fn populated() -> Metrics {
    let m = Metrics::new(Role::Server, 0);
    m.pushes.store(120, Relaxed);
    m.blocked_pushes.store(30, Relaxed);
    m.pulls_full.store(7, Relaxed);
    m.pulls_delta.store(110, Relaxed);
    m.bytes_sent.store(1 << 20, Relaxed);
    m.bytes_received.store(3 << 20, Relaxed);
    m.blocked_workers.store(2, Relaxed);
    m.version.store(120, Relaxed);
    m.credits_granted.store(9, Relaxed);
    m.credits_reclaimed.store(4, Relaxed);
    m.checkpoints_written.store(3, Relaxed);
    m.reconnects.store(1, Relaxed);
    m.evictions.store(1, Relaxed);
    m.joins.store(4, Relaxed);
    for s in [0, 0, 1, 3, 5, 40] {
        m.observe_staleness(s);
    }
    m
}

#[test]
fn rendered_page_parses_and_keeps_help_type_discipline() {
    let page = populated().render();
    let exp = parse_exposition(&page).expect("page parses");

    // Every sample family carries a HELP and a TYPE declaration.
    for sample in &exp.samples {
        let family = sample
            .name
            .strip_suffix("_bucket")
            .or_else(|| sample.name.strip_suffix("_sum"))
            .or_else(|| sample.name.strip_suffix("_count"))
            .filter(|f| ["dssp_staleness", "dssp_round_time", "dssp_push_latency"].contains(f))
            .unwrap_or(&sample.name);
        assert!(
            exp.types.iter().any(|(n, _)| n == family),
            "{} has no TYPE declaration",
            sample.name
        );
        assert!(
            exp.helps.iter().any(|(n, _)| n == family),
            "{} has no HELP declaration",
            sample.name
        );
        // Every series is labelled with its emitting role and rank.
        assert_eq!(sample.label("role"), Some("server"), "{}", sample.name);
        assert_eq!(sample.label("rank"), Some("0"), "{}", sample.name);
    }

    // The key series carry the stored values.
    let labels: &[(&str, &str)] = &[];
    assert_eq!(exp.value("dssp_pushes_total", labels), Some(120.0));
    assert_eq!(exp.value("dssp_blocked_pushes_total", labels), Some(30.0));
    assert_eq!(exp.value("dssp_credits_granted_total", labels), Some(9.0));
    assert_eq!(exp.value("dssp_credits_reclaimed_total", labels), Some(4.0));
    assert_eq!(exp.value("dssp_blocked_workers", labels), Some(2.0));
    assert_eq!(exp.value("dssp_model_version", labels), Some(120.0));
    assert_eq!(
        exp.value("dssp_pulls_total", &[("mode", "full")]),
        Some(7.0)
    );
    assert_eq!(
        exp.value("dssp_pulls_total", &[("mode", "delta")]),
        Some(110.0)
    );
    assert_eq!(
        exp.value("dssp_bytes_total", &[("direction", "sent")]),
        Some((1u64 << 20) as f64)
    );
}

#[test]
fn staleness_histogram_is_cumulative_and_complete() {
    let page = populated().render();
    let exp = parse_exposition(&page).expect("page parses");

    // Buckets are cumulative and monotone, ending in +Inf == count.
    let mut last = -1.0;
    for le in STALENESS_LE {
        let v = exp
            .value("dssp_staleness_bucket", &[("le", &le.to_string())])
            .unwrap_or_else(|| panic!("missing le={le} bucket"));
        assert!(v >= last, "bucket le={le} not monotone");
        last = v;
    }
    let inf = exp
        .value("dssp_staleness_bucket", &[("le", "+Inf")])
        .expect("+Inf bucket");
    assert!(inf >= last);
    assert_eq!(exp.value("dssp_staleness_count", &[]), Some(inf));
    // Samples were 0,0,1,3,5,40 → sum 49, count 6, two in the le=0 bucket.
    assert_eq!(exp.value("dssp_staleness_sum", &[]), Some(49.0));
    assert_eq!(inf, 6.0);
    assert_eq!(
        exp.value("dssp_staleness_bucket", &[("le", "0")]),
        Some(2.0)
    );
}

#[test]
fn live_endpoint_serves_the_same_page() {
    let metrics = Arc::new(populated());
    let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&metrics)).expect("bind");
    let addr = server.local_addr().to_string();

    let body = scrape(&addr).expect("scrape");
    let exp = parse_exposition(&body).expect("served page parses");
    assert_eq!(exp.value("dssp_pushes_total", &[]), Some(120.0));

    // A counter bumped between scrapes is visible on the next scrape.
    metrics.pushes.fetch_add(5, Relaxed);
    let exp2 = parse_exposition(&scrape(&addr).expect("second scrape")).expect("parses");
    assert_eq!(exp2.value("dssp_pushes_total", &[]), Some(125.0));

    server.stop();
    assert!(scrape(&addr).is_err(), "listener still up after stop");
}
