//! Property-based proof that delta pulls are bitwise-equivalent to full pulls: a
//! client that keeps a per-shard version cache and applies `PullReplyDelta` frames
//! reconstructs exactly the weight vector a full-pulling client downloads, across
//! random shard layouts, random update/pull interleavings, and cache invalidation
//! (reconnects). Every reply travels through the real codec (`encode` → bytes →
//! `apply_pull_reply`), so the wire format of the two new message tags is exercised
//! end to end, including the full-pull fallback on incompatible caches.

use dssp_net::transport::PullView;
use dssp_net::wire::{apply_pull_reply, decode, encode, WireError};
use dssp_net::Message;
use dssp_ps::ShardedStore;
use proptest::prelude::*;

/// A delta-pulling client's cached state.
#[derive(Default)]
struct Cache {
    weights: Vec<f32>,
    versions: Vec<u64>,
}

/// Serves one pull against `store`: encodes the reply the server would send for
/// `known`, ships it through bytes, and applies it to the client cache.
fn pull(store: &ShardedStore, clock: u64, cache: &mut Cache, delta: bool) -> bool {
    let known = (delta && !cache.versions.is_empty()).then_some(cache.versions.clone());
    let view = PullView {
        clock,
        versions: store.versions(),
        offsets: store.offsets(),
        weights: store.as_flat(),
        known: known.as_deref(),
    };
    let mut payload = Vec::new();
    view.encode(&mut payload);
    let applied =
        apply_pull_reply(&payload, &mut cache.weights, &mut cache.versions).expect("reply applies");
    assert_eq!(applied.clock, clock);
    applied.full
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn delta_pulls_reconstruct_exactly_what_full_pulls_download(
        params in 1usize..96,
        shards_pick in 1usize..9,
        ops in prop::collection::vec(0u32..10_000, 48),
        vals in prop::collection::vec(-2.0f32..2.0, 48),
    ) {
        let shards = shards_pick.min(params);
        let initial: Vec<f32> = (0..params).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut store = ShardedStore::new(initial, shards);
        let mut clock = 0u64;
        let mut full_client = Cache::default();
        let mut delta_client = Cache::default();

        for (&op, &val) in ops.iter().zip(&vals) {
            match op % 5 {
                // Update a random shard (the skew source: some shards advance more).
                0 | 1 | 2 => {
                    let shard = (op / 5) as usize % shards;
                    let (a, b) = store.key_range(shard);
                    let grads: Vec<f32> = (0..b - a).map(|j| val + j as f32 * 0.1).collect();
                    store.apply_shard(shard, &grads, 0.25);
                    clock += 1;
                }
                // Both clients pull; their reconstructions must agree bitwise.
                3 => {
                    let was_full = pull(&store, clock, &mut full_client, false);
                    prop_assert!(was_full, "the full client must always get full replies");
                    pull(&store, clock, &mut delta_client, true);
                    prop_assert_eq!(&delta_client.weights, &full_client.weights);
                    prop_assert_eq!(&delta_client.versions, &full_client.versions);
                    prop_assert_eq!(delta_client.versions.as_slice(), store.versions());
                }
                // The delta client "reconnects": a fresh process has no cache, so its
                // next pull must fall back to a full reply and resynchronize.
                _ => {
                    delta_client.weights.clear();
                    delta_client.versions.clear();
                }
            }
        }
        // Final synchronization always holds.
        pull(&store, clock, &mut full_client, false);
        pull(&store, clock, &mut delta_client, true);
        prop_assert_eq!(&delta_client.weights, &full_client.weights);
        prop_assert_eq!(delta_client.weights.as_slice(), store.as_flat());
    }

    #[test]
    fn incompatible_caches_fall_back_to_full_replies(
        params in 1usize..64,
        shards_pick in 1usize..9,
        bogus_len in 0usize..12,
        ahead in 1u64..100,
    ) {
        let shards = shards_pick.min(params);
        let store = ShardedStore::new(vec![1.0; params], shards);
        // Wrong shard count.
        let mut client = Cache {
            weights: vec![0.0; params],
            versions: vec![0; bogus_len],
        };
        if bogus_len != shards {
            let view = PullView {
                clock: 1,
                versions: store.versions(),
                offsets: store.offsets(),
                weights: store.as_flat(),
                known: Some(&client.versions.clone()),
            };
            prop_assert!(!view.delta_applicable());
            let mut payload = Vec::new();
            view.encode(&mut payload);
            let applied = apply_pull_reply(&payload, &mut client.weights, &mut client.versions)
                .expect("fallback applies");
            prop_assert!(applied.full);
            prop_assert_eq!(client.weights.as_slice(), store.as_flat());
        }
        // A cache from the server's future (e.g. the server restarted).
        let future = vec![ahead; shards];
        let view = PullView {
            clock: 1,
            versions: store.versions(),
            offsets: store.offsets(),
            weights: store.as_flat(),
            known: Some(&future),
        };
        prop_assert!(!view.delta_applicable());
    }

    #[test]
    fn corrupted_delta_frames_are_rejected(
        clock in 0u64..u64::MAX,
        shard in 0u32..64,
        version in 0u64..u64::MAX,
        weights in prop::collection::vec(-1.0f32..1.0, 6),
        flip in 0usize..1000,
        garbage in 1usize..9,
    ) {
        let msg = Message::PullReplyDelta {
            clock,
            updates: vec![dssp_net::ShardUpdate { shard, version, weights }],
        };
        let mut buf = Vec::new();
        encode(&msg, &mut buf);
        // Round-trips intact...
        prop_assert_eq!(decode(&buf).as_ref(), Ok(&msg));
        // ...every strict prefix is rejected...
        let cut = flip % buf.len();
        prop_assert!(decode(&buf[..cut]).is_err());
        // ...and trailing garbage is rejected.
        let mut extended = buf.clone();
        extended.extend(std::iter::repeat(0xcdu8).take(garbage));
        prop_assert!(matches!(
            decode(&extended),
            Err(WireError::TrailingBytes { .. }) | Err(WireError::BadLength { .. })
        ));
    }
}
