//! Property-based tests for the structured-event NDJSON codec: encode→parse is the
//! identity for every role/kind/payload/trace combination, and damaged lines are
//! rejected rather than misparsed.

use dssp_core::events::{encode_line, parse_line, trace_id, Event, EventKind, Role};
use proptest::prelude::*;

/// Picks a role by index (the proptest shim has no enum strategies).
fn role(variant: u32) -> Role {
    match variant % 4 {
        0 => Role::Server,
        1 => Role::Coordinator,
        2 => Role::ShardServer,
        _ => Role::Worker,
    }
}

/// Picks an event kind by index (all 15, spans included).
fn kind(variant: u32) -> EventKind {
    EventKind::ALL[(variant as usize) % EventKind::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_then_parse_is_the_identity(
        role_ix in 0u32..4,
        kind_ix in 0u32..15,
        ts in 0u64..u64::MAX,
        rank in 0u32..u32::MAX,
        payload in 0u64..u64::MAX,
        trace_rank in 0u32..u32::MAX,
        trace_seq in 0u32..u32::MAX,
    ) {
        let event = Event {
            ts,
            role: role(role_ix),
            rank,
            kind: kind(kind_ix),
            payload,
            trace: trace_id(trace_rank, trace_seq),
        };
        let line = encode_line(&event);
        // NDJSON discipline: one line, no raw newline inside it.
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(parse_line(&line), Ok(event));
    }

    #[test]
    fn truncated_lines_are_rejected(
        role_ix in 0u32..4,
        kind_ix in 0u32..15,
        ts in 0u64..u64::MAX,
        rank in 0u32..u32::MAX,
        payload in 0u64..u64::MAX,
        trace in 0u64..u64::MAX,
        cut_fraction in 0.0f64..1.0,
    ) {
        let event = Event {
            ts,
            role: role(role_ix),
            rank,
            kind: kind(kind_ix),
            payload,
            trace,
        };
        let line = encode_line(&event);
        prop_assert!(line.is_ascii()); // slicing below is byte-indexed
        let cut = (((line.len() - 1) as f64) * cut_fraction) as usize;
        let prefix = &line[..cut.min(line.len() - 1)];
        prop_assert!(parse_line(prefix).is_err(), "prefix parsed: {prefix}");
    }

    #[test]
    fn field_corruption_is_rejected_or_roundtrips_differently(
        role_ix in 0u32..4,
        kind_ix in 0u32..15,
        ts in 0u64..1_000_000_000u64,
        rank in 0u32..1024,
        payload in 0u64..1_000_000_000u64,
        trace in 0u64..1_000_000_000u64,
        flip in 0usize..96,
    ) {
        let event = Event {
            ts,
            role: role(role_ix),
            rank,
            kind: kind(kind_ix),
            payload,
            trace,
        };
        let mut bytes = encode_line(&event).into_bytes();
        let i = flip % bytes.len();
        bytes[i] = bytes[i].wrapping_add(1);
        // A flipped byte either breaks the parse or yields a *different* event —
        // never silently the same one.
        if let Ok(line) = String::from_utf8(bytes) {
            match parse_line(&line) {
                Ok(reparsed) => prop_assert!(reparsed != event),
                Err(_) => {}
            }
        }
    }
}
