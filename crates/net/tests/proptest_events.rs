//! Property-based tests for the structured-event NDJSON codec: encode→parse is the
//! identity for every role/kind/payload combination, and damaged lines are rejected
//! rather than misparsed.

use dssp_core::events::{encode_line, parse_line, Event, EventKind, Role};
use proptest::prelude::*;

/// Picks a role by index (the proptest shim has no enum strategies).
fn role(variant: u32) -> Role {
    match variant % 4 {
        0 => Role::Server,
        1 => Role::Coordinator,
        2 => Role::ShardServer,
        _ => Role::Worker,
    }
}

/// Picks an event kind by index.
fn kind(variant: u32) -> EventKind {
    match variant % 9 {
        0 => EventKind::Push,
        1 => EventKind::Pull,
        2 => EventKind::GateBlock,
        3 => EventKind::GateRelease,
        4 => EventKind::CreditGrant,
        5 => EventKind::Eviction,
        6 => EventKind::Join,
        7 => EventKind::Checkpoint,
        _ => EventKind::Reconnect,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_then_parse_is_the_identity(
        role_ix in 0u32..4,
        kind_ix in 0u32..9,
        ts in 0u64..u64::MAX,
        rank in 0u32..u32::MAX,
        payload in 0u64..u64::MAX,
    ) {
        let event = Event {
            ts,
            role: role(role_ix),
            rank,
            kind: kind(kind_ix),
            payload,
        };
        let line = encode_line(&event);
        // NDJSON discipline: one line, no raw newline inside it.
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(parse_line(&line), Ok(event));
    }

    #[test]
    fn truncated_lines_are_rejected(
        role_ix in 0u32..4,
        kind_ix in 0u32..9,
        ts in 0u64..u64::MAX,
        rank in 0u32..u32::MAX,
        payload in 0u64..u64::MAX,
        cut_fraction in 0.0f64..1.0,
    ) {
        let event = Event {
            ts,
            role: role(role_ix),
            rank,
            kind: kind(kind_ix),
            payload,
        };
        let line = encode_line(&event);
        prop_assert!(line.is_ascii()); // slicing below is byte-indexed
        let cut = (((line.len() - 1) as f64) * cut_fraction) as usize;
        let prefix = &line[..cut.min(line.len() - 1)];
        prop_assert!(parse_line(prefix).is_err(), "prefix parsed: {prefix}");
    }

    #[test]
    fn field_corruption_is_rejected_or_roundtrips_differently(
        role_ix in 0u32..4,
        kind_ix in 0u32..9,
        ts in 0u64..1_000_000_000u64,
        rank in 0u32..1024,
        payload in 0u64..1_000_000_000u64,
        flip in 0usize..64,
    ) {
        let event = Event {
            ts,
            role: role(role_ix),
            rank,
            kind: kind(kind_ix),
            payload,
        };
        let mut bytes = encode_line(&event).into_bytes();
        let i = flip % bytes.len();
        bytes[i] = bytes[i].wrapping_add(1);
        // A flipped byte either breaks the parse or yields a *different* event —
        // never silently the same one.
        if let Ok(line) = String::from_utf8(bytes) {
            match parse_line(&line) {
                Ok(reparsed) => prop_assert!(reparsed != event),
                Err(_) => {}
            }
        }
    }
}
