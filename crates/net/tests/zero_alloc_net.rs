//! The zero-allocation guarantee of the networked frame path, enforced with a
//! counting global allocator (the same technique `dssp-nn`'s `zero_alloc` test uses
//! for the compute kernels): once every buffer pool is warm, a full
//! push → reply → delta-pull round trip over **real TCP sockets** performs zero heap
//! allocations — on the worker end (encode from borrowed gradients, pooled payload
//! buffer, in-place delta apply), on the server command loop (borrowed-slice push
//! handling, zero-copy pull replies, recycled bulk buffers), and on the connection
//! reader thread (reused payload buffer, pool-fed bulk decodes). The counter is
//! global, so allocations on *any* thread during the measured window fail the test.
//!
//! The measured window runs with observability fully enabled — a live (idle)
//! `GET /metrics` listener, metric counter updates, staleness histogram samples and
//! structured-event recording on both ends — proving the instrumentation keeps the
//! zero-allocation guarantee: [`dssp_core::events::EventLog::record`] claims a
//! preallocated slot and the metric hooks are plain atomics.

use dssp_core::events::{trace_id, EventKind, EventLog, Role};
use dssp_net::transport::{PullOutcome, PullView};
use dssp_net::{
    Message, Obs, ServerTransport, TcpServerTransport, TcpWorkerTransport, WorkerTransport,
    PROTOCOL_VERSION,
};
use dssp_ps::ShardedStore;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const DIM: usize = 4096;
const SHARDS: usize = 8;
const WARMUP: u64 = 10;
const MEASURED: u64 = 50;

/// The worker side: a fixed gradient pushed every iteration, followed by a delta
/// pull — the exact steady-state message sequence of `run_worker`, minus the model
/// compute (which has its own zero-allocation test in `dssp-nn`). Event recording is
/// on, exactly as `run_worker` records with `--event-log`.
fn worker_loop(addr: &str) {
    let log = EventLog::new(Role::Worker, 0);
    let mut t = TcpWorkerTransport::connect(addr).expect("connect");
    t.send(&Message::Hello {
        version: PROTOCOL_VERSION,
        rank: 0,
        num_workers: 1,
        config_digest: 0,
    })
    .expect("hello");
    let mut weights = Vec::new();
    let mut versions = Vec::new();
    let grads = vec![1e-3f32; DIM];
    assert!(matches!(
        t.pull_into(true, trace_id(0, 1), &mut weights, &mut versions)
            .expect("initial pull"),
        PullOutcome::Applied(applied) if applied.full
    ));
    for iter in 0..WARMUP + MEASURED {
        // Causal tracing on: every push/pull carries a fresh v6 trace id, and the
        // event hooks stamp it — the trace plumbing must stay allocation-free too.
        let push_trace = trace_id(0, iter as u32 * 2 + 2);
        t.send_push(iter + 1, push_trace, &grads).expect("push");
        log.record_traced(EventKind::Push, iter + 1, push_trace);
        log.record_traced(EventKind::GateBlock, iter + 1, push_trace);
        match t.recv().expect("push reply") {
            Message::PushReply { .. } => {}
            other => panic!("unexpected: {other:?}"),
        }
        log.record_traced(EventKind::GateRelease, 0, push_trace);
        let pull_trace = trace_id(0, iter as u32 * 2 + 3);
        match t
            .pull_into(true, pull_trace, &mut weights, &mut versions)
            .expect("pull")
        {
            PullOutcome::Applied(applied) => {
                assert!(!applied.full, "cache must stay warm");
                log.record_traced(EventKind::Pull, applied.clock, pull_trace);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert_eq!(log.dropped(), 0, "event log must not saturate in this test");
    t.send(&Message::Done {
        iterations: WARMUP + MEASURED,
        epochs: 1,
        waiting_time_s: 0.0,
    })
    .expect("done");
}

/// The server side: the same command-loop shape as `dssp_net::serve`'s fast path —
/// apply the push to a sharded store, recycle the gradient buffer, reply, answer the
/// delta pull from a borrowed view — with the per-message observability hooks the
/// real loop runs (event records, counter updates, a histogram sample, transport
/// mirroring).
fn serve_iterations(
    server: &mut TcpServerTransport,
    store: &mut ShardedStore,
    obs: &Obs,
    count: u64,
) {
    let mut served = 0;
    while served < count {
        obs.mirror_transport(&server.transport_stats());
        let (rank, msg) = server.recv().expect("recv");
        match msg {
            Message::Push {
                iteration,
                trace,
                grads,
            } => {
                store.apply_all(&grads, 1e-3);
                server.recycle_f32s(rank, grads);
                server
                    .send(
                        rank,
                        &Message::PushReply {
                            granted_extra: 0,
                            version: iteration,
                        },
                    )
                    .expect("push reply");
                obs.event_traced(EventKind::Push, rank as u64, trace);
                obs.metrics().pushes.fetch_add(1, Relaxed);
                obs.metrics().version.store(iteration, Relaxed);
                obs.metrics().observe_staleness(iteration % 3);
            }
            Message::PullDelta {
                trace,
                known_versions,
            } => {
                server
                    .send_pull_reply(
                        rank,
                        &PullView {
                            clock: 0,
                            versions: store.versions(),
                            offsets: store.offsets(),
                            weights: store.as_flat(),
                            known: Some(&known_versions),
                        },
                    )
                    .expect("delta reply");
                server.recycle_u64s(rank, known_versions);
                obs.on_pull(rank, true, trace);
                served += 1;
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}

#[test]
fn steady_state_tcp_round_trips_do_not_allocate_on_either_end() {
    // Full observability bundle: event log enabled (flushed to a scratch dir at the
    // end) and a live metrics listener, idle during the measured window — exactly
    // the configuration a `--metrics-addr ... --event-log ...` run serves under.
    let event_dir =
        std::env::temp_dir().join(format!("dssp-zero-alloc-obs-{}", std::process::id()));
    std::fs::create_dir_all(&event_dir).expect("scratch dir");
    let obs = Obs::new(Role::Server, 0, Some(&event_dir), Some("127.0.0.1:0")).expect("obs");

    let mut server = TcpServerTransport::bind("127.0.0.1:0", 1).expect("bind");
    let addr = server.local_addr().to_string();
    let worker = std::thread::spawn(move || worker_loop(&addr));

    let mut store = ShardedStore::new(vec![0.5f32; DIM], SHARDS);
    // Handshake + initial full pull.
    let (rank, hello) = server.recv().expect("hello");
    assert!(matches!(hello, Message::Hello { .. }));
    let (_, first_pull) = server.recv().expect("initial pull");
    assert!(matches!(first_pull, Message::Pull { .. }));
    server
        .send_pull_reply(
            rank,
            &PullView {
                clock: 0,
                versions: store.versions(),
                offsets: store.offsets(),
                weights: store.as_flat(),
                known: None,
            },
        )
        .expect("full reply");

    // Warm-up: buffers and pools grow to steady-state size; allocations expected.
    serve_iterations(&mut server, &mut store, &obs, WARMUP);

    // Measured window: the worker thread, the connection reader thread, the idle
    // metrics listener and this command loop are all in steady state — the global
    // counter must not move, event hooks and metric updates included.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    serve_iterations(&mut server, &mut store, &obs, MEASURED);
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        during, 0,
        "{MEASURED} steady-state push/pull round trips performed {during} heap allocations \
         with observability enabled"
    );

    // Drain the Done so the worker exits cleanly.
    let (_, done) = server.recv().expect("done");
    assert!(matches!(done, Message::Done { .. }));
    worker.join().expect("worker thread");

    // The instrumentation observed the run: flush and spot-check outside the window.
    assert_eq!(obs.metrics().pushes.load(Relaxed), WARMUP + MEASURED);
    let flushed = obs.flush().expect("flush").expect("event log enabled");
    assert!(flushed.exists());
    std::fs::remove_dir_all(&event_dir).ok();
}
