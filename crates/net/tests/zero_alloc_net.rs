//! The zero-allocation guarantee of the networked frame path, enforced with a
//! counting global allocator (the same technique `dssp-nn`'s `zero_alloc` test uses
//! for the compute kernels): once every buffer pool is warm, a full
//! push → reply → delta-pull round trip over **real TCP sockets** performs zero heap
//! allocations — on the worker end (encode from borrowed gradients, pooled payload
//! buffer, in-place delta apply), on the server command loop (borrowed-slice push
//! handling, zero-copy pull replies, recycled bulk buffers), and on the connection
//! reader thread (reused payload buffer, pool-fed bulk decodes). The counter is
//! global, so allocations on *any* thread during the measured window fail the test.

use dssp_net::transport::{PullOutcome, PullView};
use dssp_net::{
    Message, ServerTransport, TcpServerTransport, TcpWorkerTransport, WorkerTransport,
    PROTOCOL_VERSION,
};
use dssp_ps::ShardedStore;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const DIM: usize = 4096;
const SHARDS: usize = 8;
const WARMUP: u64 = 10;
const MEASURED: u64 = 50;

/// The worker side: a fixed gradient pushed every iteration, followed by a delta
/// pull — the exact steady-state message sequence of `run_worker`, minus the model
/// compute (which has its own zero-allocation test in `dssp-nn`).
fn worker_loop(addr: &str) {
    let mut t = TcpWorkerTransport::connect(addr).expect("connect");
    t.send(&Message::Hello {
        version: PROTOCOL_VERSION,
        rank: 0,
        num_workers: 1,
        config_digest: 0,
    })
    .expect("hello");
    let mut weights = Vec::new();
    let mut versions = Vec::new();
    let grads = vec![1e-3f32; DIM];
    assert!(matches!(
        t.pull_into(true, &mut weights, &mut versions).expect("initial pull"),
        PullOutcome::Applied(applied) if applied.full
    ));
    for iter in 0..WARMUP + MEASURED {
        t.send_push(iter + 1, &grads).expect("push");
        match t.recv().expect("push reply") {
            Message::PushReply { .. } => {}
            other => panic!("unexpected: {other:?}"),
        }
        match t
            .pull_into(true, &mut weights, &mut versions)
            .expect("pull")
        {
            PullOutcome::Applied(applied) => assert!(!applied.full, "cache must stay warm"),
            other => panic!("unexpected: {other:?}"),
        }
    }
    t.send(&Message::Done {
        iterations: WARMUP + MEASURED,
        epochs: 1,
        waiting_time_s: 0.0,
    })
    .expect("done");
}

/// The server side: the same command-loop shape as `dssp_net::serve`'s fast path —
/// apply the push to a sharded store, recycle the gradient buffer, reply, answer the
/// delta pull from a borrowed view.
fn serve_iterations(server: &mut TcpServerTransport, store: &mut ShardedStore, count: u64) {
    let mut served = 0;
    while served < count {
        let (rank, msg) = server.recv().expect("recv");
        match msg {
            Message::Push { iteration, grads } => {
                store.apply_all(&grads, 1e-3);
                server.recycle_f32s(rank, grads);
                server
                    .send(
                        rank,
                        &Message::PushReply {
                            granted_extra: 0,
                            version: iteration,
                        },
                    )
                    .expect("push reply");
            }
            Message::PullDelta { known_versions } => {
                server
                    .send_pull_reply(
                        rank,
                        &PullView {
                            clock: 0,
                            versions: store.versions(),
                            offsets: store.offsets(),
                            weights: store.as_flat(),
                            known: Some(&known_versions),
                        },
                    )
                    .expect("delta reply");
                server.recycle_u64s(rank, known_versions);
                served += 1;
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}

#[test]
fn steady_state_tcp_round_trips_do_not_allocate_on_either_end() {
    let mut server = TcpServerTransport::bind("127.0.0.1:0", 1).expect("bind");
    let addr = server.local_addr().to_string();
    let worker = std::thread::spawn(move || worker_loop(&addr));

    let mut store = ShardedStore::new(vec![0.5f32; DIM], SHARDS);
    // Handshake + initial full pull.
    let (rank, hello) = server.recv().expect("hello");
    assert!(matches!(hello, Message::Hello { .. }));
    let (_, first_pull) = server.recv().expect("initial pull");
    assert!(matches!(first_pull, Message::Pull));
    server
        .send_pull_reply(
            rank,
            &PullView {
                clock: 0,
                versions: store.versions(),
                offsets: store.offsets(),
                weights: store.as_flat(),
                known: None,
            },
        )
        .expect("full reply");

    // Warm-up: buffers and pools grow to steady-state size; allocations expected.
    serve_iterations(&mut server, &mut store, WARMUP);

    // Measured window: the worker thread, the connection reader thread and this
    // command loop are all in steady state — the global counter must not move.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    serve_iterations(&mut server, &mut store, MEASURED);
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        during, 0,
        "{MEASURED} steady-state push/pull round trips performed {during} heap allocations"
    );

    // Drain the Done so the worker exits cleanly.
    let (_, done) = server.recv().expect("done");
    assert!(matches!(done, Message::Done { .. }));
    worker.join().expect("worker thread");
}
