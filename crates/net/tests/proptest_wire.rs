//! Property-based tests for the wire codec: encode→decode is the identity on every
//! message kind, and corrupted frames (truncation, trailing bytes, absurd lengths) are
//! rejected rather than misparsed.

use dssp_net::wire::{decode, encode, Message, ShardUpdate, WireError, PROTOCOL_VERSION};
use proptest::prelude::*;

/// Builds an arbitrary message from flat random draws (the proptest shim has no enum
/// strategies, so the variant is picked by an index).
#[allow(clippy::too_many_arguments)]
fn build_message(
    variant: u32,
    a: u64,
    b: u64,
    c: f64,
    floats: Vec<f32>,
    float_len: usize,
    versions: Vec<u64>,
    version_len: usize,
) -> Message {
    let floats = floats[..float_len.min(floats.len())].to_vec();
    let versions = versions[..version_len.min(versions.len())].to_vec();
    let assignment: Vec<u32> = versions.iter().map(|&v| (v % 64) as u32).collect();
    match variant % 33 {
        0 => Message::Hello {
            version: PROTOCOL_VERSION,
            rank: (a % 1024) as u32,
            num_workers: (b % 1024) as u32,
            config_digest: a.wrapping_mul(b),
        },
        1 => Message::Push {
            iteration: a,
            trace: b.rotate_left(5),
            grads: floats,
        },
        2 => Message::PushReply {
            granted_extra: a,
            version: b,
        },
        3 => Message::Pull { trace: a ^ b },
        4 => Message::PullReply {
            clock: a,
            shard_versions: versions,
            weights: floats,
        },
        5 => Message::Done {
            iterations: a,
            epochs: b,
            waiting_time_s: c,
        },
        6 => Message::Shutdown {
            reason: (a % 256) as u8,
        },
        7 => Message::PullDelta {
            trace: a.wrapping_add(b),
            known_versions: versions,
        },
        8 => Message::PullReplyDelta {
            clock: a,
            updates: versions
                .iter()
                .enumerate()
                .map(|(i, &version)| ShardUpdate {
                    shard: (b % 512) as u32 + i as u32,
                    version,
                    weights: floats[..float_len.min(floats.len()).min(4 + i)].to_vec(),
                })
                .collect(),
        },
        9 => Message::GroupHello {
            version: PROTOCOL_VERSION,
            rank: (a % 1024) as u32,
            num_workers: (b % 1024) as u32,
            config_digest: a ^ b,
            servers: (a % 64) as u32 + 1,
            server_index: (b % 64) as u32,
        },
        10 => Message::ClockPush {
            iteration: a,
            trace: b,
        },
        11 => Message::ClockGrant {
            granted_extra: a,
            version: b,
        },
        12 => Message::PushGrant,
        13 => Message::PushApplied { iteration: b },
        14 => Message::PushSlice {
            iteration: a,
            epoch: b % 1024,
            trace: a.rotate_right(9),
            grads: floats,
        },
        15 => Message::SliceAck { version: a },
        16 => Message::PullShards {
            known_versions: versions,
            all: a % 2 == 0,
            epoch: b % 1024,
            trace: b.wrapping_mul(3),
        },
        17 => Message::PullDone,
        18 => Message::StatsRequest,
        19 => Message::JoinRequest,
        20 => Message::JoinAck {
            clock: a,
            epoch: b % 1024,
            assignment,
        },
        21 => Message::Evict {
            rank: (a % 1024) as u32,
        },
        22 => Message::StatsReply {
            pushes: a,
            pulls_full: b,
            pulls_delta: a.wrapping_add(b),
            bytes_sent: a.rotate_left(17),
            bytes_received: b.rotate_right(9),
            epoch: b % 1024,
        },
        23 => Message::MigratePrepare { epoch: a },
        24 => Message::MigrateRequest {
            epoch: a,
            shard: (b % 512) as u32,
            trace: a | b,
        },
        25 => Message::MigrateShard {
            epoch: a,
            shard: (b % 512) as u32,
            version: a ^ b,
            trace: b ^ (a << 1),
            weights: floats.clone(),
            velocity: floats,
        },
        26 => Message::MigrateAck {
            epoch: a,
            shard: (b % 512) as u32,
        },
        27 => Message::LayoutUpdate {
            epoch: a,
            assignment,
        },
        28 => Message::MigrateAbort { epoch: a },
        29 => Message::EpochRefused {
            epoch: a,
            assignment,
        },
        30 => Message::Drain {
            server: (a % 64) as u32,
        },
        31 => Message::Rebalance,
        _ => Message::AdminAck {
            epoch: a,
            accepted: b % 2 == 0,
            reason: format!("r{}", a % 1000),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_then_decode_is_the_identity(
        variant in 0u32..33,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        c in -1.0e12f64..1.0e12,
        floats in prop::collection::vec(-1.0e6f32..1.0e6, 32),
        float_len in 0usize..33,
        versions in prop::collection::vec(0u64..u64::MAX, 8),
        version_len in 0usize..9,
    ) {
        let msg = build_message(variant, a, b, c, floats, float_len, versions, version_len);
        let mut buf = Vec::new();
        encode(&msg, &mut buf);
        let decoded = decode(&buf);
        prop_assert_eq!(decoded.as_ref(), Ok(&msg));
    }

    #[test]
    fn every_strict_prefix_is_rejected(
        variant in 0u32..33,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        c in -1.0e12f64..1.0e12,
        floats in prop::collection::vec(-1.0e6f32..1.0e6, 8),
        float_len in 0usize..9,
        versions in prop::collection::vec(0u64..u64::MAX, 4),
        version_len in 0usize..5,
        cut_fraction in 0.0f64..1.0,
    ) {
        let msg = build_message(variant, a, b, c, floats, float_len, versions, version_len);
        let mut buf = Vec::new();
        encode(&msg, &mut buf);
        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        // A strict prefix must never decode into a message. (Strictness matters: a
        // truncated Push must not silently become a shorter gradient vector.)
        prop_assert!(decode(&buf[..cut.min(buf.len().saturating_sub(1))]).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected(
        variant in 0u32..33,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        c in -1.0e12f64..1.0e12,
        floats in prop::collection::vec(-1.0e6f32..1.0e6, 8),
        float_len in 0usize..9,
        versions in prop::collection::vec(0u64..u64::MAX, 4),
        version_len in 0usize..5,
        garbage in 1usize..16,
    ) {
        let msg = build_message(variant, a, b, c, floats, float_len, versions, version_len);
        let mut buf = Vec::new();
        encode(&msg, &mut buf);
        buf.extend(std::iter::repeat(0xabu8).take(garbage));
        prop_assert!(matches!(
            decode(&buf),
            Err(WireError::TrailingBytes { .. }) | Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn declared_vector_lengths_beyond_the_payload_are_rejected(
        iteration in 0u64..u64::MAX,
        declared in 1u32..u32::MAX,
        available in 0usize..16,
    ) {
        // Hand-build a v6 Push (tag, iteration, trace, count) whose gradient count
        // claims more elements than exist.
        let mut buf = vec![2u8];
        buf.extend_from_slice(&iteration.to_le_bytes());
        buf.extend_from_slice(&77u64.to_le_bytes()); // trace id
        buf.extend_from_slice(&declared.to_le_bytes());
        let supplied = (available).min((declared as usize).saturating_sub(1));
        buf.extend(std::iter::repeat(0u8).take(supplied * 4));
        prop_assert!(decode(&buf).is_err());
    }

    #[test]
    fn unknown_tags_are_rejected(
        tag in 34u32..256,
        body in prop::collection::vec(0u32..256, 16),
        body_len in 0usize..17,
    ) {
        // Tags 1..=33 are assigned; everything else (including the reserved 0) must
        // come back as UnknownTag, whatever bytes follow.
        let body: Vec<u8> = body[..body_len.min(body.len())].iter().map(|&b| b as u8).collect();
        for t in [0u8, tag as u8] {
            let mut buf = vec![t];
            buf.extend_from_slice(&body);
            prop_assert!(matches!(decode(&buf), Err(WireError::UnknownTag(x)) if x == t));
        }
    }
}
