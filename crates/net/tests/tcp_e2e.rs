//! End-to-end test over real TCP sockets on localhost: the full wire protocol with
//! serialization, framing and per-connection reader threads.

use dssp_core::driver::JobConfig;
use dssp_net::{run_worker, serve, TcpServerTransport, TcpWorkerTransport};
use dssp_ps::PolicyKind;
use std::thread;

#[test]
fn dssp_trains_over_real_sockets_and_matches_a_deterministic_loopback_run() {
    let mut job = JobConfig::small(PolicyKind::Dssp { s_l: 1, r_max: 4 });
    job.epochs = 1;
    job.deterministic = true;

    // TCP run.
    let mut server = TcpServerTransport::bind("127.0.0.1:0", job.num_workers).unwrap();
    let addr = server.local_addr().to_string();
    let handles: Vec<_> = (0..job.num_workers)
        .map(|rank| {
            let job = job.clone();
            let addr = addr.clone();
            thread::spawn(move || {
                let mut transport = TcpWorkerTransport::connect(&addr).expect("connect");
                run_worker(&job, rank, &mut transport).expect("worker runs")
            })
        })
        .collect();
    let tcp_trace = serve(&job, &mut server).expect("tcp run completes");
    for handle in handles {
        handle.join().expect("worker thread");
    }

    // Loopback run of the same deterministic job.
    let (mut loop_server, loop_workers) = dssp_net::transport::loopback(job.num_workers);
    let handles: Vec<_> = loop_workers
        .into_iter()
        .enumerate()
        .map(|(rank, mut transport)| {
            let job = job.clone();
            thread::spawn(move || run_worker(&job, rank, &mut transport).expect("worker runs"))
        })
        .collect();
    let loop_trace = serve(&job, &mut loop_server).expect("loopback run completes");
    for handle in handles {
        handle.join().expect("worker thread");
    }

    // Serialization through real sockets must not perturb a single bit.
    assert_eq!(
        tcp_trace.with_times_zeroed(),
        loop_trace.with_times_zeroed(),
        "TCP and loopback deterministic runs must be bitwise-identical"
    );
    assert!(tcp_trace.total_pushes > 0);
}
