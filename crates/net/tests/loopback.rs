//! End-to-end tests of the networked runtime over the in-process loopback transport:
//! full training runs, sharded-versus-flat storage equality, and shutdown behaviour.

use dssp_core::driver::JobConfig;
use dssp_net::transport::loopback;
use dssp_net::{run_worker, serve, NetError, WorkerReport};
use dssp_ps::PolicyKind;
use dssp_sim::RunTrace;
use std::thread;

/// Runs a full job over loopback: server on this thread, one thread per worker.
fn run_loopback(job: &JobConfig) -> (Result<RunTrace, NetError>, Vec<WorkerReport>) {
    let (mut server, workers) = loopback(job.num_workers);
    let handles: Vec<_> = workers
        .into_iter()
        .enumerate()
        .map(|(rank, mut transport)| {
            let job = job.clone();
            thread::spawn(move || run_worker(&job, rank, &mut transport).expect("worker runs"))
        })
        .collect();
    let result = serve(job, &mut server);
    let reports = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread"))
        .collect();
    (result, reports)
}

fn small_job(policy: PolicyKind) -> JobConfig {
    let mut job = JobConfig::small(policy);
    job.epochs = 1;
    job
}

#[test]
fn bsp_over_loopback_completes_and_learns() {
    let (result, reports) = run_loopback(&small_job(PolicyKind::Bsp));
    let trace = result.expect("run completes");
    assert_eq!(trace.workers, 2);
    let per_worker: u64 = trace.worker_summaries.iter().map(|w| w.iterations).sum();
    assert_eq!(per_worker, trace.total_pushes);
    assert!(
        trace.final_accuracy() > 0.3,
        "accuracy {}",
        trace.final_accuracy()
    );
    for report in &reports {
        assert!(!report.shutdown_early);
        assert_eq!(
            report.last_shard_versions.len(),
            1,
            "flat storage = 1 shard"
        );
    }
}

#[test]
fn dssp_with_a_straggler_grants_extra_iterations_over_the_wire() {
    let mut job = JobConfig::small(PolicyKind::Dssp { s_l: 1, r_max: 8 });
    job.epochs = 2;
    job.extra_compute_delay_ms = vec![0, 6];
    let (result, reports) = run_loopback(&job);
    let trace = result.expect("run completes");
    assert!(
        trace.server_stats.credits_granted > 0,
        "the controller should have granted extras to the fast worker"
    );
    // The fast worker saw those grants in its push replies.
    let total_seen: u64 = reports.iter().map(|r| r.granted_extra_total).sum();
    assert_eq!(total_seen, trace.server_stats.credits_granted);
    let per_worker: u64 = trace.worker_summaries.iter().map(|w| w.iterations).sum();
    assert_eq!(per_worker, trace.total_pushes);
}

#[test]
fn sharded_and_flat_storage_produce_identical_runs() {
    // Identical job, 1-shard vs 5-shard server storage, deterministic scheduling:
    // every learning-relevant number must agree bitwise.
    let mut flat = small_job(PolicyKind::Ssp { s: 2 });
    flat.deterministic = true;
    let mut sharded = flat.clone();
    sharded.shards = 5;
    let (flat_result, _) = run_loopback(&flat);
    let (sharded_result, sharded_reports) = run_loopback(&sharded);
    let flat_trace = flat_result.expect("flat run");
    let sharded_trace = sharded_result.expect("sharded run");
    for report in &sharded_reports {
        assert_eq!(report.last_shard_versions.len(), 5);
    }
    // Shard count is config, not math: only the policy label/config could differ, and
    // it does not — so the zeroed-time traces must be equal outright.
    assert_eq!(
        flat_trace.with_times_zeroed(),
        sharded_trace.with_times_zeroed()
    );
}

#[test]
fn pull_replies_report_monotonically_complete_shard_versions() {
    let mut job = small_job(PolicyKind::Bsp);
    job.shards = 3;
    let (result, reports) = run_loopback(&job);
    let trace = result.expect("run completes");
    for report in &reports {
        assert_eq!(report.last_shard_versions.len(), 3);
        // Every shard sees every whole-model update, so versions are uniform and
        // bounded by the total push count.
        let v0 = report.last_shard_versions[0];
        assert!(report.last_shard_versions.iter().all(|&v| v == v0));
        assert!(v0 <= trace.total_pushes);
    }
}

#[test]
fn chaos_abort_shuts_workers_down_cleanly() {
    let mut job = small_job(PolicyKind::Asp);
    job.fail_after_pushes = Some(3);
    let (result, reports) = run_loopback(&job);
    match result {
        Err(NetError::Aborted { pushes }) => assert!(pushes >= 3),
        other => panic!("expected Aborted, got {other:?}"),
    }
    // Workers exited via the Shutdown broadcast, not by crashing.
    assert!(reports.iter().any(|r| r.shutdown_early));
}

#[test]
fn config_digest_mismatch_is_rejected_at_handshake() {
    let server_job = small_job(PolicyKind::Bsp);
    let mut worker_job = server_job.clone();
    worker_job.seed += 1; // a silently different dataset — must not train
    let (mut server, workers) = loopback(server_job.num_workers);
    let handles: Vec<_> = workers
        .into_iter()
        .enumerate()
        .map(|(rank, mut transport)| {
            let job = worker_job.clone();
            thread::spawn(move || run_worker(&job, rank, &mut transport))
        })
        .collect();
    let result = serve(&server_job, &mut server);
    assert!(
        matches!(result, Err(NetError::Protocol(ref msg)) if msg.contains("digest")),
        "got {result:?}"
    );
    for handle in handles {
        // Workers end via Shutdown (clean) or a disconnect error; neither may hang.
        let _ = handle.join().expect("worker thread must exit");
    }
}
