//! Property-based tests of the synchronization invariants each paradigm promises.
//!
//! The test harness drives a [`ParameterServer`] with randomized worker schedules
//! (random speeds, random jitter) the same way the simulator does: a worker only starts
//! a new iteration after it has received its `OK`, and blocked workers are woken up by
//! the `released` list of later pushes.

use dssp_nn::{LrSchedule, Sgd, SgdConfig};
use dssp_ps::{ParameterServer, PolicyKind, ServerConfig};
use proptest::prelude::*;

/// A deterministic replay of a distributed run: worker `w` performs an iteration taking
/// `durations[w]` seconds (plus jitter), pushes, and starts the next iteration as soon
/// as the server allows. Returns the server, the maximum observed clock spread and the
/// total number of completed iterations.
fn run_schedule(
    policy: PolicyKind,
    durations: &[f64],
    jitters: &[Vec<f64>],
    iterations_per_worker: usize,
) -> (ParameterServer, u64, u64) {
    let workers = durations.len();
    let sgd = Sgd::new(
        SgdConfig {
            schedule: LrSchedule::constant(0.01),
            momentum: 0.0,
            weight_decay: 0.0,
        },
        1,
    );
    let mut server = ParameterServer::new(vec![0.0], sgd, ServerConfig::new(workers, policy));

    // Per-worker state: next push time (None = blocked or finished), completed pushes.
    let mut next_push: Vec<Option<f64>> = durations.iter().map(|&d| Some(d)).collect();
    let mut blocked: Vec<bool> = vec![false; workers];
    let mut done: Vec<usize> = vec![0; workers];
    let mut max_spread = 0u64;
    let mut total = 0u64;

    let iteration_time =
        |w: usize, k: usize| -> f64 { durations[w] * (1.0 + jitters[w][k % jitters[w].len()]) };

    loop {
        // Pick the earliest pending push.
        let Some((w, t)) = next_push
            .iter()
            .enumerate()
            .filter_map(|(w, t)| t.map(|t| (w, t)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        else {
            break;
        };
        next_push[w] = None;
        let result = server.handle_push(w, &[0.0], t);
        done[w] += 1;
        total += 1;
        max_spread = max_spread.max(server.clocks().spread());

        if result.ok_now {
            if done[w] < iterations_per_worker {
                next_push[w] = Some(t + iteration_time(w, done[w]));
            }
        } else {
            blocked[w] = true;
        }
        for r in result.released {
            if blocked[r] && done[r] < iterations_per_worker {
                blocked[r] = false;
                next_push[r] = Some(t + iteration_time(r, done[r]));
            } else {
                blocked[r] = false;
            }
        }
    }
    (server, max_spread, total)
}

fn durations_strategy(workers: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..4.0, workers)
}

fn jitter_strategy(workers: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-0.2f64..0.2, 4), workers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BSP never lets any worker get more than one iteration ahead of another.
    #[test]
    fn bsp_spread_never_exceeds_one(
        durations in durations_strategy(4),
        jitters in jitter_strategy(4),
    ) {
        let (_, spread, total) = run_schedule(PolicyKind::Bsp, &durations, &jitters, 12);
        prop_assert!(spread <= 1, "BSP spread {spread} > 1");
        prop_assert_eq!(total, 4 * 12);
    }

    /// SSP never lets the fastest worker exceed the slowest by more than s + 1 (the push
    /// that triggers blocking still increments the clock).
    #[test]
    fn ssp_spread_respects_threshold(
        durations in durations_strategy(3),
        jitters in jitter_strategy(3),
        s in 0u64..6,
    ) {
        let (_, spread, total) = run_schedule(PolicyKind::Ssp { s }, &durations, &jitters, 15);
        prop_assert!(spread <= s + 1, "SSP spread {spread} > s+1 = {}", s + 1);
        prop_assert_eq!(total, 3 * 15);
    }

    /// Strict-range DSSP never exceeds the upper end of the staleness range:
    /// spread <= s_L + r_max + 1.
    #[test]
    fn dssp_strict_spread_respects_upper_bound(
        durations in durations_strategy(3),
        jitters in jitter_strategy(3),
        s_l in 0u64..4,
        r_max in 0u64..8,
    ) {
        let (_, spread, total) =
            run_schedule(PolicyKind::DsspStrict { s_l, r_max }, &durations, &jitters, 15);
        prop_assert!(
            spread <= s_l + r_max + 1,
            "DSSP-strict spread {spread} > s_U+1 = {}",
            s_l + r_max + 1
        );
        prop_assert_eq!(total, 3 * 15);
    }

    /// Literal (Algorithm 1) DSSP completes every scheduled iteration, and every push
    /// that was blocked is eventually released — running ahead on credits removes
    /// synchronization stalls but never strands a worker.
    #[test]
    fn dssp_literal_completes_all_work_and_releases_every_blocked_push(
        durations in durations_strategy(3),
        jitters in jitter_strategy(3),
        s_l in 0u64..4,
        r_max in 1u64..8,
    ) {
        let (server, _, total) =
            run_schedule(PolicyKind::Dssp { s_l, r_max }, &durations, &jitters, 15);
        prop_assert_eq!(total, 3 * 15, "every worker finishes its iterations");
        prop_assert_eq!(server.stats().blocked_pushes, server.stats().releases);
    }

    /// DSSP with r_max = 0 makes exactly the same accept/block decisions as SSP with
    /// s = s_L (it degenerates to SSP at the lower bound).
    #[test]
    fn dssp_with_zero_range_equals_ssp(
        durations in durations_strategy(3),
        jitters in jitter_strategy(3),
        s_l in 0u64..5,
    ) {
        let (ssp_server, ssp_spread, _) =
            run_schedule(PolicyKind::Ssp { s: s_l }, &durations, &jitters, 10);
        let (dssp_server, dssp_spread, _) =
            run_schedule(PolicyKind::Dssp { s_l, r_max: 0 }, &durations, &jitters, 10);
        prop_assert_eq!(ssp_spread, dssp_spread);
        prop_assert_eq!(
            ssp_server.stats().blocked_pushes,
            dssp_server.stats().blocked_pushes
        );
        prop_assert_eq!(ssp_server.stats().staleness_sum, dssp_server.stats().staleness_sum);
    }

    /// ASP never blocks anyone, and every worker finishes all its iterations.
    #[test]
    fn asp_never_blocks(
        durations in durations_strategy(4),
        jitters in jitter_strategy(4),
    ) {
        let (server, _, total) = run_schedule(PolicyKind::Asp, &durations, &jitters, 10);
        prop_assert_eq!(server.stats().blocked_pushes, 0);
        prop_assert_eq!(total, 40);
    }

    /// Larger SSP thresholds can only reduce (never increase) the number of blocked
    /// pushes for an identical schedule.
    #[test]
    fn larger_ssp_threshold_blocks_no_more(
        durations in durations_strategy(3),
        jitters in jitter_strategy(3),
        s in 0u64..5,
    ) {
        let (a, _, _) = run_schedule(PolicyKind::Ssp { s }, &durations, &jitters, 12);
        let (b, _, _) = run_schedule(PolicyKind::Ssp { s: s + 3 }, &durations, &jitters, 12);
        prop_assert!(b.stats().blocked_pushes <= a.stats().blocked_pushes);
    }

    /// The DSSP regret bound (Theorem 2) always dominates the SSP bound at the lower
    /// bound of the range and is dominated by the SSP bound at the upper bound + 1.
    #[test]
    fn dssp_bound_sits_between_ssp_bounds(
        s_l in 0u64..10,
        r_max in 0u64..20,
        t in 1u64..1_000_000,
    ) {
        let params = dssp_ps::theory::BoundParams::default();
        let dssp = dssp_ps::theory::dssp_regret_bound(&params, s_l, r_max, t);
        let ssp_low = dssp_ps::theory::ssp_regret_bound(&params, s_l, t);
        let ssp_above = dssp_ps::theory::ssp_regret_bound(&params, s_l + r_max + 1, t);
        prop_assert!(dssp >= ssp_low);
        prop_assert!(dssp <= ssp_above);
    }
}
