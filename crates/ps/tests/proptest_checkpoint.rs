//! Property-based tests of the checkpoint codec: encode→decode is the bitwise
//! identity on arbitrary snapshots, and every mutilated payload — truncation, bit
//! flips, version skew, digest skew — is rejected (or at least never misparses back
//! into the original), mirroring the wire codec's strictness discipline.

use dssp_ps::{
    Checkpoint, CheckpointError, GateSnapshot, LayoutSnapshot, ServerStats, StoreSnapshot,
    CHECKPOINT_VERSION,
};
use proptest::prelude::*;

/// Builds an arbitrary checkpoint from flat random draws (the proptest shim has no
/// enum/recursive strategies, so section presence and vector shapes are derived from
/// scalar draws, the same way the wire-codec property suite builds its messages).
fn build_checkpoint(
    digest: u64,
    tick: f64,
    sections: u32,
    floats: &[f32],
    float_len: usize,
    counts: &[u64],
    count_len: usize,
    workers: usize,
) -> Checkpoint {
    let floats = &floats[..float_len.clamp(1, floats.len())];
    let counts = &counts[..count_len.clamp(1, counts.len())];
    let workers = workers.max(1);
    let take = |i: usize| counts[i % counts.len()];
    let store = (sections % 4 != 0).then(|| {
        let shards = counts.len().clamp(1, 4);
        let per_shard = floats.len() / shards;
        let mut offsets: Vec<u64> = (0..=shards).map(|i| (i * per_shard) as u64).collect();
        *offsets.last_mut().unwrap() = floats.len() as u64;
        StoreSnapshot {
            flat: floats.to_vec(),
            offsets,
            versions: (0..shards).map(|i| take(i) % 1_000).collect(),
            velocity: floats.iter().map(|v| v * 0.5).collect(),
            epoch: take(0) % 64,
        }
    });
    let gate = (sections % 3 != 0).then(|| GateSnapshot {
        counts: (0..workers).map(|w| take(w) % 500).collect(),
        retired: (0..workers).map(|w| take(w + 1) % 2 == 0).collect(),
        latest: (0..workers)
            .map(|w| (take(w + 2) % 3 != 0).then(|| tick + w as f64))
            .collect(),
        previous: (0..workers)
            .map(|w| (take(w + 3) % 3 != 0).then(|| tick + w as f64 - 1.0))
            .collect(),
        blocked: (0..workers).filter(|&w| take(w + 4) % 4 == 0).collect(),
        stats: ServerStats {
            pushes: take(0),
            blocked_pushes: take(1),
            releases: take(2),
            staleness_sum: take(3),
            staleness_max: take(4),
            credits_granted: take(5),
            credits_reclaimed: take(6),
        },
        staleness_buckets: counts.iter().map(|&c| c % 97).collect(),
        staleness_sums: counts.iter().map(|&c| c % 89).collect(),
        staleness_pushes: counts.iter().map(|&c| c % 83).collect(),
        staleness_max: take(7) % 32,
        version: take(8),
        credits: (0..workers).map(|w| take(w + 5) % 8).collect(),
        credits_granted: take(9),
        controller_invocations: take(10),
    });
    let layout = (sections % 5 != 0).then(|| LayoutSnapshot {
        epoch: take(1) % 64,
        assignment: (0..counts.len().clamp(1, 8))
            .map(|i| (take(i) % 4) as u32)
            .collect(),
    });
    Checkpoint {
        job_digest: digest,
        tick,
        store,
        gate,
        layout,
    }
}

fn floats_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0e3f32..1.0e3, 48)
}

fn counts_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..1_000_000, 12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Encode→decode is the identity on every section combination and shape.
    #[test]
    fn encode_decode_is_the_identity(
        digest in 0u64..u64::MAX,
        tick in 0.0f64..1.0e9,
        sections in 0u32..u32::MAX,
        floats in floats_strategy(),
        float_len in 1usize..48,
        counts in counts_strategy(),
        count_len in 1usize..12,
        workers in 1usize..6,
    ) {
        let ckpt = build_checkpoint(
            digest, tick, sections, &floats, float_len, &counts, count_len, workers,
        );
        let bytes = ckpt.encode();
        let decoded = Checkpoint::decode(&bytes).expect("decode");
        prop_assert_eq!(decoded, ckpt);
    }

    /// Every strict prefix of an encoded checkpoint is rejected — a half-written
    /// file (the case the atomic temp+rename dance prevents) never decodes.
    #[test]
    fn truncation_is_always_rejected(
        digest in 0u64..u64::MAX,
        sections in 0u32..u32::MAX,
        floats in floats_strategy(),
        float_len in 1usize..48,
        counts in counts_strategy(),
        count_len in 1usize..12,
        cut in 0u64..u64::MAX,
    ) {
        let ckpt = build_checkpoint(digest, 4.0, sections, &floats, float_len, &counts, count_len, 3);
        let bytes = ckpt.encode();
        let cut = (cut as usize) % bytes.len();
        prop_assert!(
            Checkpoint::decode(&bytes[..cut]).is_err(),
            "prefix of {} / {} bytes decoded",
            cut,
            bytes.len()
        );
    }

    /// A single flipped bit anywhere in the payload either fails to decode or
    /// decodes to something observably different — never silently back to the
    /// original (so a torn or bit-rotted file cannot masquerade as the snapshot).
    #[test]
    fn bit_flips_never_misparse_back_to_the_original(
        digest in 0u64..u64::MAX,
        sections in 0u32..u32::MAX,
        floats in floats_strategy(),
        float_len in 1usize..48,
        counts in counts_strategy(),
        count_len in 1usize..12,
        pos in 0u64..u64::MAX,
        bit in 0u32..8,
    ) {
        let ckpt = build_checkpoint(digest, 4.0, sections, &floats, float_len, &counts, count_len, 3);
        let mut bytes = ckpt.encode();
        let pos = (pos as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        match Checkpoint::decode(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert!(
                decoded != ckpt,
                "flipping bit {} of byte {} decoded back to the original",
                bit, pos
            ),
        }
    }

    /// Any format version other than the one this build writes is refused, in both
    /// directions (older and newer).
    #[test]
    fn version_skew_is_rejected(
        digest in 0u64..u64::MAX,
        sections in 0u32..u32::MAX,
        floats in floats_strategy(),
        float_len in 1usize..48,
        counts in counts_strategy(),
        count_len in 1usize..12,
        skew in 1u32..1_000,
    ) {
        let ckpt = build_checkpoint(digest, 4.0, sections, &floats, float_len, &counts, count_len, 3);
        let mut bytes = ckpt.encode();
        let bad = CHECKPOINT_VERSION.wrapping_add(skew);
        bytes[8..12].copy_from_slice(&bad.to_le_bytes());
        prop_assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::UnsupportedVersion(v)) if v == bad
        ));
    }

    /// The layout-epoch skew refusal is typed and self-describing for every pair of
    /// diverging epochs: a restore that meets a group running a different layout
    /// epoch must surface the "restore skew" wording the chaos harness keys on,
    /// naming both epochs.
    #[test]
    fn layout_epoch_skew_error_is_typed_and_descriptive(
        found in 0u64..u64::MAX,
        skew in 1u64..1_000,
    ) {
        let expected = found.wrapping_add(skew);
        let err = CheckpointError::LayoutSkew { found, expected };
        let msg = err.to_string();
        prop_assert!(msg.contains("restore skew"), "missing the typed wording: {msg}");
        prop_assert!(msg.contains(&found.to_string()), "missing found epoch: {msg}");
        prop_assert!(msg.contains(&expected.to_string()), "missing expected epoch: {msg}");
    }

    /// A checkpoint taken under one job digest never restores under another, while
    /// the matching digest always passes.
    #[test]
    fn digest_skew_is_rejected(
        digest in 0u64..u64::MAX,
        sections in 0u32..u32::MAX,
        floats in floats_strategy(),
        float_len in 1usize..48,
        counts in counts_strategy(),
        count_len in 1usize..12,
        other in 0u64..u64::MAX,
    ) {
        let ckpt = build_checkpoint(digest, 4.0, sections, &floats, float_len, &counts, count_len, 3);
        let bytes = ckpt.encode();
        prop_assert!(Checkpoint::decode_for_job(&bytes, digest).is_ok());
        if other != digest {
            prop_assert!(matches!(
                Checkpoint::decode_for_job(&bytes, other),
                Err(CheckpointError::DigestMismatch { expected, found })
                    if expected == other && found == digest
            ));
        }
    }
}
