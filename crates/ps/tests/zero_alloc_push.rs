//! The server-side zero-allocation guarantee, enforced with a counting global
//! allocator: once warm, [`ParameterServer::handle_push_into`] performs no heap
//! allocation per push — under per-push aggregation (the pushed gradient is applied
//! directly, never copied) *and* under buffered aggregation (the buffer accumulates
//! in place and averages into a preallocated buffer). This is the regression test for
//! the in-place `GradientBuffer` rework.

use dssp_nn::{LrSchedule, Sgd, SgdConfig};
use dssp_ps::{AggregationMode, ParameterServer, PolicyKind, ServerConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations_during(body: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    body();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn server(aggregation: AggregationMode, dims: usize) -> ParameterServer {
    let sgd = Sgd::new(
        SgdConfig {
            schedule: LrSchedule::constant(0.05),
            momentum: 0.9,
            weight_decay: 1e-4,
        },
        dims,
    );
    ParameterServer::new(
        vec![0.1; dims],
        sgd,
        ServerConfig::new(2, PolicyKind::Asp)
            .with_aggregation(aggregation)
            .with_shards(4),
    )
}

fn assert_steady_state_pushes_do_not_allocate(aggregation: AggregationMode, label: &str) {
    const DIMS: usize = 2048;
    let mut s = server(aggregation, DIMS);
    let grads = vec![1e-3f32; DIMS];
    let mut released = Vec::new();
    // Warm-up: covers at least two buffered emissions (capacity 4, 8 pushes), so the
    // in-place average buffer has reached its final size.
    for i in 0..8u64 {
        released.clear();
        s.handle_push_into((i % 2) as usize, &grads, i as f64, &mut released);
    }
    for i in 8..16u64 {
        let count = allocations_during(|| {
            released.clear();
            s.handle_push_into((i % 2) as usize, &grads, i as f64, &mut released);
        });
        assert_eq!(
            count, 0,
            "{label}: steady-state push #{i} performed {count} heap allocations"
        );
    }
    assert!(s.stats().pushes == 16);
}

#[test]
fn per_push_aggregation_steady_state_is_allocation_free() {
    assert_steady_state_pushes_do_not_allocate(AggregationMode::PerPush, "per-push");
}

#[test]
fn buffered_aggregation_steady_state_is_allocation_free() {
    assert_steady_state_pushes_do_not_allocate(
        AggregationMode::Buffered { capacity: 4 },
        "buffered x4",
    );
}

#[test]
fn in_place_buffering_matches_the_allocating_reference_bitwise() {
    // The same push sequence through handle_push (allocating wrapper) and
    // handle_push_into must leave identical weights — the in-place path is a pure
    // mechanical rewrite.
    let mut a = server(AggregationMode::Buffered { capacity: 3 }, 64);
    let mut b = server(AggregationMode::Buffered { capacity: 3 }, 64);
    let mut released = Vec::new();
    for i in 0..10u64 {
        let grads: Vec<f32> = (0..64)
            .map(|j| ((i * 64 + j) as f32 * 0.01).sin())
            .collect();
        let worker = (i % 2) as usize;
        let result = a.handle_push(worker, &grads, i as f64);
        released.clear();
        let decision = b.handle_push_into(worker, &grads, i as f64, &mut released);
        assert_eq!(result.ok_now, decision.ok_now);
        assert_eq!(result.version, decision.version);
        assert_eq!(result.released, released);
        assert_eq!(a.weights(), b.weights(), "diverged at push {i}");
    }
    a.flush_aggregation();
    b.flush_aggregation();
    assert_eq!(a.weights(), b.weights());
}
