//! Versioned checkpointing of parameter-server state.
//!
//! The paper evaluates a fixed fleet: every worker and server survives the whole run.
//! The elastic extension relaxes that — processes may crash and be restarted — which
//! needs a durable copy of exactly the state Algorithms 1 and 2 accumulate: the shared
//! weights with their per-shard versions, the SGD momentum that makes the next step
//! depend on history, and the gate (clock array `t`, interval table `A`, DSSP credit
//! balances, statistics). [`Checkpoint`] captures all three in one length-prefixed
//! binary format with the same strictness discipline as the wire protocol: decoding
//! rejects truncation, trailing bytes, absurd declared lengths, unknown format
//! versions, and checkpoints taken under a different job configuration (via the job
//! digest).
//!
//! Files are written atomically — encode to `<name>.tmp` in the same directory, then
//! `rename` over the final name — so a crash mid-write leaves either the previous
//! complete checkpoint or a stray `.tmp`, never a torn file. A decoder therefore never
//! needs to "repair" anything: a checkpoint file that exists and decodes is complete.

use crate::gate::GateSnapshot;
use crate::server::ServerStats;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// First bytes of every checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"DSSPCKPT";

/// Format version written by this build; decoding rejects anything else. Version 2
/// added the optional layout section (epoch-stamped shard→server assignment) after
/// the gate section.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Hard ceiling on the size of a checkpoint this decoder will accept, so a corrupt
/// length prefix cannot drive a huge allocation.
pub const MAX_CHECKPOINT_LEN: usize = 1 << 30;

/// Extension of the temporary file a checkpoint is staged in before the atomic rename
/// (`server.ckpt` is staged as `server.ckpt.tmp`). Exposed so process supervisors can
/// sweep stray staging files after killing a child mid-write.
pub const CHECKPOINT_TMP_SUFFIX: &str = ".tmp";

/// The storage half of a checkpoint: the flat weights with their shard layout and
/// versions, plus the optimizer state that makes SGD-with-momentum history-dependent.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSnapshot {
    /// The flat parameter vector.
    pub flat: Vec<f32>,
    /// Shard start offsets plus the final sentinel (see
    /// [`crate::ShardedStore::offsets`]).
    pub offsets: Vec<u64>,
    /// Per-shard update versions.
    pub versions: Vec<u64>,
    /// The SGD momentum velocity vector (same length as `flat`).
    pub velocity: Vec<f32>,
    /// The epoch the learning-rate schedule currently operates at.
    pub epoch: u64,
}

/// The group-layout section of a checkpoint: the epoch-stamped shard→server
/// assignment in force when the snapshot was taken. Live migration bumps the epoch;
/// a process restored from an earlier epoch must not rejoin a migrated group, so
/// restore paths compare epochs and refuse skew (see
/// [`CheckpointError::LayoutSkew`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutSnapshot {
    /// The layout epoch (0 = the closed-form launch layout; each commit adds one).
    pub epoch: u64,
    /// Owning server index per global shard.
    pub assignment: Vec<u32>,
}

/// One durable snapshot of a server process: what a shard server, a coordinator, or a
/// classic single-process server writes between pushes and reads back on restart.
///
/// Any section may be absent: a storage-only shard server checkpoints just
/// [`Checkpoint::store`], a clock-only coordinator just [`Checkpoint::gate`], and a
/// classic single server both. Only group processes carry [`Checkpoint::layout`].
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Digest of the job configuration this checkpoint was taken under; restoring
    /// under a different job is refused (version/config skew).
    pub job_digest: u64,
    /// The deterministic-mode logical clock at snapshot time, so a restored run's
    /// interval table keeps receiving monotonically increasing timestamps.
    pub tick: f64,
    /// The storage half, if this process owns weights.
    pub store: Option<StoreSnapshot>,
    /// The gating half, if this process owns synchronization state.
    pub gate: Option<GateSnapshot>,
    /// The group layout in force at snapshot time, if this process tracks one.
    pub layout: Option<LayoutSnapshot>,
}

/// Why a checkpoint could not be read or decoded.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The payload ended before a declared field.
    Truncated,
    /// The payload continued past the last declared field.
    TrailingBytes,
    /// The file does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The format version is not [`CHECKPOINT_VERSION`].
    UnsupportedVersion(u32),
    /// The checkpoint was taken under a different job configuration.
    DigestMismatch {
        /// Digest of the job attempting the restore.
        expected: u64,
        /// Digest recorded in the checkpoint.
        found: u64,
    },
    /// A declared length exceeds the remaining payload or the global size ceiling.
    BadLength,
    /// A field held a value outside its domain (e.g. a flag byte that is neither 0
    /// nor 1); the message names the field.
    Corrupt(&'static str),
    /// The checkpoint records a different layout epoch than the group is running at:
    /// the process missed (or predates) a live migration and its shard contents no
    /// longer match its ownership. Re-snapshot or relaunch instead of resuming.
    LayoutSkew {
        /// Layout epoch recorded in the checkpoint.
        found: u64,
        /// Layout epoch the group currently runs at.
        expected: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::TrailingBytes => write!(f, "trailing bytes after checkpoint"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {CHECKPOINT_VERSION})"
                )
            }
            CheckpointError::DigestMismatch { expected, found } => write!(
                f,
                "checkpoint was taken under a different job (digest {found:#x}, this job is {expected:#x})"
            ),
            CheckpointError::BadLength => write!(f, "checkpoint declares an absurd length"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint field: {what}"),
            CheckpointError::LayoutSkew { found, expected } => write!(
                f,
                "checkpoint restore skew: layout epoch {found} but the group runs at epoch \
                 {expected} (a live migration happened in between)"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Strict little-endian reader over a checkpoint payload, mirroring the wire
/// protocol's decoder discipline: every read is bounds-checked, vector lengths are
/// validated against the remaining payload *before* allocating, and `finish` rejects
/// trailing bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Corrupt(what)),
        }
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a declared element count and validates that `count * elem_size` bytes are
    /// actually present before any allocation happens.
    fn len(&mut self, elem_size: usize) -> Result<usize, CheckpointError> {
        let count = self.u64()?;
        let count = usize::try_from(count).map_err(|_| CheckpointError::BadLength)?;
        let bytes = count
            .checked_mul(elem_size)
            .ok_or(CheckpointError::BadLength)?;
        if bytes > self.remaining() {
            return Err(CheckpointError::BadLength);
        }
        Ok(count)
    }

    fn f32s(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let count = self.len(4)?;
        let raw = self.take(count * 4)?;
        let mut out = Vec::with_capacity(count);
        for chunk in raw.chunks_exact(4) {
            out.push(f32::from_le_bytes(chunk.try_into().unwrap()));
        }
        Ok(out)
    }

    fn u64s(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let count = self.len(8)?;
        let raw = self.take(count * 8)?;
        let mut out = Vec::with_capacity(count);
        for chunk in raw.chunks_exact(8) {
            out.push(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        Ok(out)
    }

    fn u32s(&mut self) -> Result<Vec<u32>, CheckpointError> {
        let count = self.len(4)?;
        let raw = self.take(count * 4)?;
        let mut out = Vec::with_capacity(count);
        for chunk in raw.chunks_exact(4) {
            out.push(u32::from_le_bytes(chunk.try_into().unwrap()));
        }
        Ok(out)
    }

    fn bools(&mut self, what: &'static str) -> Result<Vec<bool>, CheckpointError> {
        let count = self.len(1)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.bool(what)?);
        }
        Ok(out)
    }

    /// A vector of optional timestamps: each entry is a presence byte followed by the
    /// `f64` bits when present.
    fn opt_f64s(&mut self, what: &'static str) -> Result<Vec<Option<f64>>, CheckpointError> {
        let count = self.len(1)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(if self.bool(what)? {
                Some(self.f64()?)
            } else {
                None
            });
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), CheckpointError> {
        if self.remaining() != 0 {
            return Err(CheckpointError::TrailingBytes);
        }
        Ok(())
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(out: &mut Vec<u8>, v: &[f32]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_u64s(out: &mut Vec<u8>, v: &[u64]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_u32s(out: &mut Vec<u8>, v: &[u32]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_bools(out: &mut Vec<u8>, v: &[bool]) {
    put_u64(out, v.len() as u64);
    out.extend(v.iter().map(|&b| b as u8));
}

fn put_opt_f64s(out: &mut Vec<u8>, v: &[Option<f64>]) {
    put_u64(out, v.len() as u64);
    for x in v {
        match x {
            Some(t) => {
                out.push(1);
                put_u64(out, t.to_bits());
            }
            None => out.push(0),
        }
    }
}

impl Checkpoint {
    /// Serializes the checkpoint into its little-endian binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        put_u64(&mut out, self.job_digest);
        put_u64(&mut out, self.tick.to_bits());
        match &self.store {
            Some(s) => {
                out.push(1);
                put_f32s(&mut out, &s.flat);
                put_u64s(&mut out, &s.offsets);
                put_u64s(&mut out, &s.versions);
                put_f32s(&mut out, &s.velocity);
                put_u64(&mut out, s.epoch);
            }
            None => out.push(0),
        }
        match &self.gate {
            Some(g) => {
                out.push(1);
                put_u64s(&mut out, &g.counts);
                put_bools(&mut out, &g.retired);
                put_opt_f64s(&mut out, &g.latest);
                put_opt_f64s(&mut out, &g.previous);
                put_u64s(
                    &mut out,
                    &g.blocked.iter().map(|&w| w as u64).collect::<Vec<_>>(),
                );
                put_u64(&mut out, g.stats.pushes);
                put_u64(&mut out, g.stats.blocked_pushes);
                put_u64(&mut out, g.stats.releases);
                put_u64(&mut out, g.stats.staleness_sum);
                put_u64(&mut out, g.stats.staleness_max);
                put_u64(&mut out, g.stats.credits_granted);
                put_u64(&mut out, g.stats.credits_reclaimed);
                put_u64s(&mut out, &g.staleness_buckets);
                put_u64s(&mut out, &g.staleness_sums);
                put_u64s(&mut out, &g.staleness_pushes);
                put_u64(&mut out, g.staleness_max);
                put_u64(&mut out, g.version);
                put_u64s(&mut out, &g.credits);
                put_u64(&mut out, g.credits_granted);
                put_u64(&mut out, g.controller_invocations);
            }
            None => out.push(0),
        }
        match &self.layout {
            Some(l) => {
                out.push(1);
                put_u64(&mut out, l.epoch);
                put_u32s(&mut out, &l.assignment);
            }
            None => out.push(0),
        }
        out
    }

    /// Decodes a checkpoint, rejecting truncation, trailing bytes, bad magic, absurd
    /// declared lengths, and unknown format versions. The job digest is *not* checked
    /// here — use [`Checkpoint::decode_for_job`] on the restore path.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() > MAX_CHECKPOINT_LEN {
            return Err(CheckpointError::BadLength);
        }
        let mut r = Reader::new(bytes);
        if r.take(CHECKPOINT_MAGIC.len())? != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let job_digest = r.u64()?;
        let tick = r.f64()?;
        let store = if r.bool("store presence flag")? {
            Some(StoreSnapshot {
                flat: r.f32s()?,
                offsets: r.u64s()?,
                versions: r.u64s()?,
                velocity: r.f32s()?,
                epoch: r.u64()?,
            })
        } else {
            None
        };
        let gate = if r.bool("gate presence flag")? {
            let counts = r.u64s()?;
            let retired = r.bools("retired flag")?;
            let latest = r.opt_f64s("latest timestamp flag")?;
            let previous = r.opt_f64s("previous timestamp flag")?;
            let blocked = r
                .u64s()?
                .into_iter()
                .map(|w| usize::try_from(w).map_err(|_| CheckpointError::Corrupt("blocked worker")))
                .collect::<Result<Vec<_>, _>>()?;
            let stats = ServerStats {
                pushes: r.u64()?,
                blocked_pushes: r.u64()?,
                releases: r.u64()?,
                staleness_sum: r.u64()?,
                staleness_max: r.u64()?,
                credits_granted: r.u64()?,
                credits_reclaimed: r.u64()?,
            };
            Some(GateSnapshot {
                counts,
                retired,
                latest,
                previous,
                blocked,
                stats,
                staleness_buckets: r.u64s()?,
                staleness_sums: r.u64s()?,
                staleness_pushes: r.u64s()?,
                staleness_max: r.u64()?,
                version: r.u64()?,
                credits: r.u64s()?,
                credits_granted: r.u64()?,
                controller_invocations: r.u64()?,
            })
        } else {
            None
        };
        let layout = if r.bool("layout presence flag")? {
            Some(LayoutSnapshot {
                epoch: r.u64()?,
                assignment: r.u32s()?,
            })
        } else {
            None
        };
        r.finish()?;
        Ok(Self {
            job_digest,
            tick,
            store,
            gate,
            layout,
        })
    }

    /// Decodes a checkpoint and verifies it was taken under the job with digest
    /// `job_digest`, refusing configuration skew.
    pub fn decode_for_job(bytes: &[u8], job_digest: u64) -> Result<Self, CheckpointError> {
        let ckpt = Self::decode(bytes)?;
        if ckpt.job_digest != job_digest {
            return Err(CheckpointError::DigestMismatch {
                expected: job_digest,
                found: ckpt.job_digest,
            });
        }
        Ok(ckpt)
    }

    /// The staging path [`Checkpoint::save_atomic`] writes through for `path`
    /// (`<path><CHECKPOINT_TMP_SUFFIX>` in the same directory, so the final rename
    /// never crosses a filesystem boundary).
    pub fn tmp_path(path: &Path) -> PathBuf {
        let mut name = path.as_os_str().to_os_string();
        name.push(CHECKPOINT_TMP_SUFFIX);
        PathBuf::from(name)
    }

    /// Writes the checkpoint to `path` atomically: encode, write + flush to the
    /// staging file next to it, then `rename` over the final name. A crash at any
    /// point leaves either the previous complete checkpoint or a stray staging file —
    /// never a torn `path`.
    pub fn save_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = Self::tmp_path(path);
        let bytes = self.encode();
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and decodes the checkpoint at `path` without checking its job digest.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::decode(&bytes)
    }

    /// Reads the checkpoint at `path` and verifies it was taken under the job with
    /// digest `job_digest`.
    pub fn load_for_job(path: &Path, job_digest: u64) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::decode_for_job(&bytes, job_digest)
    }

    /// Whether the gating half records any retired (finished or evicted) worker.
    ///
    /// Elastic restore resumes a *full* fleet: every worker reconnects and replays
    /// from its checkpointed clock. A checkpoint holding retired workers — a finished
    /// run's terminal snapshot, or a snapshot taken after an eviction — cannot be
    /// resumed that way, so restore paths refuse it up front instead of letting a
    /// retired worker's replayed pushes corrupt the clock array.
    pub fn has_retired_workers(&self) -> bool {
        self.gate
            .as_ref()
            .is_some_and(|g| g.retired.iter().any(|&r| r))
    }

    /// The layout epoch this checkpoint was taken at: the recorded epoch when a
    /// layout section is present, epoch 0 (the closed-form launch layout) otherwise.
    pub fn layout_epoch(&self) -> u64 {
        self.layout.as_ref().map_or(0, |l| l.epoch)
    }

    /// Verifies this checkpoint was taken at layout epoch `expected`, refusing
    /// restore skew: a snapshot from before (or after) a live migration holds shard
    /// contents that no longer match the group's ownership map.
    pub fn require_layout_epoch(&self, expected: u64) -> Result<(), CheckpointError> {
        let found = self.layout_epoch();
        if found != expected {
            return Err(CheckpointError::LayoutSkew { found, expected });
        }
        Ok(())
    }
}

/// Conventional checkpoint file name for a classic single-process server.
pub fn server_checkpoint_name() -> String {
    "server.ckpt".to_string()
}

/// Conventional checkpoint file name for shard server `index` of a group.
pub fn shard_checkpoint_name(index: usize) -> String {
    format!("shard{index}.ckpt")
}

/// Conventional checkpoint file name for a group's coordinator.
pub fn coord_checkpoint_name() -> String {
    "coord.ckpt".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_gate() -> GateSnapshot {
        GateSnapshot {
            counts: vec![3, 1],
            retired: vec![false, true],
            latest: vec![Some(4.0), None],
            previous: vec![Some(3.0), None],
            blocked: vec![0],
            stats: ServerStats {
                pushes: 4,
                blocked_pushes: 1,
                releases: 1,
                staleness_sum: 3,
                staleness_max: 2,
                credits_granted: 5,
                credits_reclaimed: 1,
            },
            staleness_buckets: vec![1, 2, 1],
            staleness_sums: vec![3, 0],
            staleness_pushes: vec![3, 1],
            staleness_max: 2,
            version: 4,
            credits: vec![2, 0],
            credits_granted: 5,
            controller_invocations: 3,
        }
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            job_digest: 0xdead_beef_cafe_f00d,
            tick: 17.0,
            store: Some(StoreSnapshot {
                flat: vec![1.5, -2.25, 0.0, 3.0],
                offsets: vec![0, 2, 4],
                versions: vec![7, 9],
                velocity: vec![0.1, -0.2, 0.3, 0.0],
                epoch: 2,
            }),
            gate: Some(sample_gate()),
            layout: Some(LayoutSnapshot {
                epoch: 3,
                assignment: vec![0, 0, 1],
            }),
        }
    }

    #[test]
    fn round_trips_all_section_combinations() {
        for mask in 0u8..8 {
            let mut c = sample();
            if mask & 1 == 0 {
                c.store = None;
            }
            if mask & 2 == 0 {
                c.gate = None;
            }
            if mask & 4 == 0 {
                c.layout = None;
            }
            let decoded = Checkpoint::decode(&c.encode()).expect("decode");
            assert_eq!(decoded, c);
        }
    }

    #[test]
    fn every_strict_prefix_is_rejected() {
        let bytes = sample().encode();
        for n in 0..bytes.len() {
            assert!(
                Checkpoint::decode(&bytes[..n]).is_err(),
                "prefix of {n} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::TrailingBytes)
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xff;
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn unknown_versions_are_rejected() {
        let mut bytes = sample().encode();
        bytes[8] = 99;
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn absurd_declared_lengths_are_rejected_before_allocation() {
        let mut bytes = sample().encode();
        // The first vector length is the flat weight count, right after the store
        // presence byte at offset 8 (magic) + 4 (version) + 8 (digest) + 8 (tick) + 1.
        let len_at = 8 + 4 + 8 + 8 + 1;
        bytes[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::BadLength)
        ));
    }

    #[test]
    fn digest_skew_is_rejected() {
        let c = sample();
        let bytes = c.encode();
        assert!(Checkpoint::decode_for_job(&bytes, c.job_digest).is_ok());
        assert!(matches!(
            Checkpoint::decode_for_job(&bytes, c.job_digest ^ 1),
            Err(CheckpointError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_flag_bytes_are_rejected() {
        let mut bytes = sample().encode();
        let store_flag_at = 8 + 4 + 8 + 8;
        bytes[store_flag_at] = 2;
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn atomic_save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("dssp-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(server_checkpoint_name());
        let c = sample();
        c.save_atomic(&path).expect("save");
        assert!(
            !Checkpoint::tmp_path(&path).exists(),
            "staging file remains"
        );
        let loaded = Checkpoint::load_for_job(&path, c.job_digest).expect("load");
        assert_eq!(loaded, c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_file_names_are_distinct_per_role() {
        assert_ne!(server_checkpoint_name(), coord_checkpoint_name());
        assert_ne!(shard_checkpoint_name(0), shard_checkpoint_name(1));
    }

    #[test]
    fn layout_epoch_skew_is_a_typed_restore_refusal() {
        let c = sample();
        assert_eq!(c.layout_epoch(), 3);
        assert!(c.require_layout_epoch(3).is_ok());
        let err = c.require_layout_epoch(4).expect_err("skew accepted");
        assert!(matches!(
            err,
            CheckpointError::LayoutSkew {
                found: 3,
                expected: 4
            }
        ));
        assert!(
            err.to_string().contains("restore skew"),
            "refusal must carry the typed substring: {err}"
        );
        // No layout section means the closed-form launch layout, epoch 0.
        let mut bare = sample();
        bare.layout = None;
        assert_eq!(bare.layout_epoch(), 0);
        assert!(bare.require_layout_epoch(0).is_ok());
        assert!(bare.require_layout_epoch(1).is_err());
    }
}
