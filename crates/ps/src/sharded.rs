//! Key-sharded parameter storage.
//!
//! Production parameter servers (MXNet's KVStore, Li et al.'s Parameter Server) split
//! the model into key ranges and spread them over several server shards so that pushes
//! and pulls for different parts of the model can proceed in parallel and no single
//! machine has to hold the whole model. The synchronization paradigms studied in the
//! paper are orthogonal to this sharding — they gate whole worker iterations, not
//! individual keys — so [`ShardedStore`] keys ranges and versions *within* one server
//! process: since the rework that made it the [`crate::ParameterServer`]'s storage
//! backend, the shards are contiguous views over a single flat parameter vector, which
//! keeps whole-model pulls and SGD steps zero-copy (a flat store is simply the
//! single-shard special case) while preserving per-shard version counters for the wire
//! protocol's pull metadata.

use serde::{Deserialize, Serialize};

/// The key range `[start, end)` that shard `shard` owns when `total` parameters are
/// split into `num_shards` near-equal contiguous shards.
///
/// This closed form is the protocol-level layout contract: a networked worker that
/// knows only the parameter count and shard count of a job reconstructs exactly the
/// ranges a server-side [`ShardedStore`] uses, so delta pull replies can ship bare
/// `(shard, weights)` pairs without repeating offsets on the wire.
///
/// # Panics
///
/// Panics if `num_shards` is zero or `shard >= num_shards`.
pub fn shard_range(total: usize, num_shards: usize, shard: usize) -> (usize, usize) {
    assert!(num_shards > 0, "need at least one shard");
    assert!(shard < num_shards, "shard index out of range");
    let base = total / num_shards;
    let remainder = total % num_shards;
    let start = shard * base + shard.min(remainder);
    let end = start + base + usize::from(shard < remainder);
    (start, end)
}

/// Whether a client's `known` per-shard version vector can be answered with a delta
/// against a store at `versions`: one entry per shard and nowhere ahead of the server
/// (a client from the future means the server restarted — fall back to a full pull).
///
/// This predicate is the single definition of delta compatibility:
/// [`ShardedStore::delta_compatible`] and the wire layer's `PullView` both delegate
/// here, so the fallback rule cannot silently diverge between the storage and
/// transport layers.
pub fn delta_compatible(versions: &[u64], known: &[u64]) -> bool {
    known.len() == versions.len() && known.iter().zip(versions).all(|(k, v)| k <= v)
}

/// A parameter vector split into contiguous, near-equal key ranges ("shards"), each with
/// its own update version counter.
///
/// The backing storage is one flat `Vec<f32>`; shard accessors return sub-slices of it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedStore {
    flat: Vec<f32>,
    /// Start offset of each shard within the flat parameter vector (plus a final
    /// sentinel equal to the total length).
    offsets: Vec<usize>,
    versions: Vec<u64>,
}

impl ShardedStore {
    /// Splits `initial` into `num_shards` contiguous shards of near-equal size.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or exceeds the parameter count (for a non-empty
    /// vector).
    pub fn new(initial: Vec<f32>, num_shards: usize) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        assert!(
            initial.is_empty() || num_shards <= initial.len(),
            "cannot split {} parameters into {num_shards} shards",
            initial.len()
        );
        let total = initial.len();
        let mut offsets = Vec::with_capacity(num_shards + 1);
        for i in 0..num_shards {
            offsets.push(shard_range(total, num_shards, i).0);
        }
        offsets.push(total);
        Self {
            flat: initial,
            offsets,
            versions: vec![0; num_shards],
        }
    }

    /// Builds a store over `initial` with explicitly given shard boundaries.
    ///
    /// `offsets` must be the start offset of every shard plus a final sentinel equal to
    /// `initial.len()`, monotonically non-decreasing. This is how a group's shard
    /// server materializes its slice of the model: the boundaries are the *global*
    /// [`shard_range`] layout restricted to the shards it owns, so they are not
    /// recomputed from the slice length (which could drift from the global layout).
    /// A bare `[0]` boundary vector over an empty `initial` is the zero-shard store —
    /// what a shard server drained by a live migration holds.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is not a valid monotone boundary vector for `initial`.
    pub fn with_offsets(initial: Vec<f32>, offsets: Vec<usize>) -> Self {
        assert!(!offsets.is_empty(), "need at least the sentinel offset");
        assert_eq!(offsets[0], 0, "first shard must start at offset 0");
        assert_eq!(
            *offsets.last().expect("non-empty"),
            initial.len(),
            "final sentinel must equal the parameter count"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "shard offsets must be monotone"
        );
        let shards = offsets.len() - 1;
        Self {
            flat: initial,
            offsets,
            versions: vec![0; shards],
        }
    }

    /// Rebuilds a store from checkpointed weights, boundaries, and per-shard versions
    /// (unlike [`ShardedStore::with_offsets`], which starts every version at zero).
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is not a valid monotone boundary vector for `flat` or if
    /// `versions` does not hold exactly one entry per shard.
    pub fn restore(flat: Vec<f32>, offsets: Vec<usize>, versions: Vec<u64>) -> Self {
        let mut store = Self::with_offsets(flat, offsets);
        assert_eq!(
            versions.len(),
            store.versions.len(),
            "restored version vector must have one entry per shard"
        );
        store.versions = versions;
        store
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.versions.len()
    }

    /// Total number of parameters across all shards.
    pub fn len(&self) -> usize {
        *self.offsets.last().expect("offsets always has a sentinel")
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard that owns the flat parameter index `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn shard_of(&self, key: usize) -> usize {
        assert!(key < self.len(), "key {key} out of range ({})", self.len());
        // offsets is sorted; find the last offset <= key.
        match self.offsets.binary_search(&key) {
            Ok(i) => i.min(self.num_shards() - 1),
            Err(i) => i - 1,
        }
    }

    /// The key range `[start, end)` owned by `shard`.
    pub fn key_range(&self, shard: usize) -> (usize, usize) {
        (self.offsets[shard], self.offsets[shard + 1])
    }

    /// The current parameters of one shard.
    pub fn shard(&self, shard: usize) -> &[f32] {
        &self.flat[self.offsets[shard]..self.offsets[shard + 1]]
    }

    /// The update version (number of applied updates) of one shard.
    pub fn version(&self, shard: usize) -> u64 {
        self.versions[shard]
    }

    /// All per-shard versions, in shard order (what a networked pull reports alongside
    /// the weights).
    pub fn versions(&self) -> &[u64] {
        &self.versions
    }

    /// Start offset of every shard within the flat parameter vector, plus a final
    /// sentinel equal to the total length (so `offsets()[i]..offsets()[i + 1]` is
    /// shard `i`'s key range).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Copies the whole parameter vector into `out` (cleared first) — the
    /// allocation-free full pull: once `out` has grown to the model size, this is a
    /// single bounds-checked memcpy.
    pub fn pull_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(&self.flat);
    }

    /// Appends shard `shard`'s current weights to `out` (a bounds-checked memcpy of
    /// that key range; the caller owns the buffer, nothing is allocated here beyond
    /// `out`'s amortized growth).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn pull_shard_into(&self, shard: usize, out: &mut Vec<f32>) {
        out.extend_from_slice(self.shard(shard));
    }

    /// Whether `known` is a per-shard version vector this store can answer with a
    /// delta (see the crate-level [`delta_compatible`] predicate both layers share).
    pub fn delta_compatible(&self, known: &[u64]) -> bool {
        delta_compatible(&self.versions, known)
    }

    /// Indices of the shards whose version advanced past the client's `known` vector —
    /// the shards a delta pull must ship.
    ///
    /// # Panics
    ///
    /// Panics if `known` has the wrong length (callers must check
    /// [`ShardedStore::delta_compatible`] first).
    pub fn stale_shards<'a>(&'a self, known: &'a [u64]) -> impl Iterator<Item = usize> + 'a {
        assert_eq!(known.len(), self.versions.len(), "shard count mismatch");
        (0..self.versions.len()).filter(move |&i| self.versions[i] > known[i])
    }

    /// The incremental pull: for every shard stale relative to `known`, appends its
    /// `(shard, version)` pair to `meta` and memcpys its weights into `weights` back to
    /// back (both buffers are cleared first and never allocated here once warm).
    /// Returns the number of shards shipped.
    ///
    /// # Panics
    ///
    /// Panics if `known` has the wrong length (callers must check
    /// [`ShardedStore::delta_compatible`] first).
    pub fn pull_delta_into(
        &self,
        known: &[u64],
        meta: &mut Vec<(u32, u64)>,
        weights: &mut Vec<f32>,
    ) -> usize {
        meta.clear();
        weights.clear();
        for shard in self.stale_shards(known) {
            meta.push((shard as u32, self.versions[shard]));
            weights.extend_from_slice(self.shard(shard));
        }
        meta.len()
    }

    /// Applies a gradient to one shard with a plain SGD step (`w -= lr * g`), bumping
    /// that shard's version.
    ///
    /// # Panics
    ///
    /// Panics if the gradient length differs from the shard length.
    pub fn apply_shard(&mut self, shard: usize, grads: &[f32], lr: f32) {
        let params = &mut self.flat[self.offsets[shard]..self.offsets[shard + 1]];
        assert_eq!(grads.len(), params.len(), "shard gradient length mismatch");
        for (w, &g) in params.iter_mut().zip(grads) {
            *w -= lr * g;
        }
        self.versions[shard] += 1;
    }

    /// Applies a full-model gradient by splitting it across all shards.
    ///
    /// # Panics
    ///
    /// Panics if the gradient length differs from the total parameter count.
    pub fn apply_all(&mut self, grads: &[f32], lr: f32) {
        assert_eq!(grads.len(), self.len(), "gradient length mismatch");
        for shard in 0..self.num_shards() {
            let (start, end) = self.key_range(shard);
            self.apply_shard(shard, &grads[start..end], lr);
        }
    }

    /// The whole parameter vector as one contiguous slice (zero-copy whole-model view).
    pub fn as_flat(&self) -> &[f32] {
        &self.flat
    }

    /// Mutable access to the whole parameter vector, for optimizers that update all
    /// shards in one pass. The caller is responsible for calling
    /// [`ShardedStore::bump_all_versions`] afterwards so per-shard versions stay honest.
    pub fn flat_mut(&mut self) -> &mut [f32] {
        &mut self.flat
    }

    /// Records one whole-model update on every shard's version counter (the bookkeeping
    /// counterpart of a [`ShardedStore::flat_mut`] update).
    pub fn bump_all_versions(&mut self) {
        for v in &mut self.versions {
            *v += 1;
        }
    }

    /// Reassembles the full flat parameter vector (what a whole-model pull returns).
    pub fn pull_all(&self) -> Vec<f32> {
        self.flat.clone()
    }

    /// The lowest shard version — how many whole-model updates are guaranteed to be
    /// visible in every shard.
    pub fn min_version(&self) -> u64 {
        self.versions.iter().copied().min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_parameters_into_near_equal_contiguous_shards() {
        let store = ShardedStore::new((0..10).map(|i| i as f32).collect(), 3);
        assert_eq!(store.num_shards(), 3);
        assert_eq!(store.len(), 10);
        // 10 = 4 + 3 + 3
        assert_eq!(store.shard(0), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(store.shard(1), &[4.0, 5.0, 6.0]);
        assert_eq!(store.shard(2), &[7.0, 8.0, 9.0]);
        assert_eq!(store.key_range(0), (0, 4));
        assert_eq!(store.key_range(2), (7, 10));
        assert_eq!(
            store.pull_all(),
            (0..10).map(|i| i as f32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shard_of_maps_keys_to_their_owner() {
        let store = ShardedStore::new(vec![0.0; 10], 3);
        assert_eq!(store.shard_of(0), 0);
        assert_eq!(store.shard_of(3), 0);
        assert_eq!(store.shard_of(4), 1);
        assert_eq!(store.shard_of(6), 1);
        assert_eq!(store.shard_of(7), 2);
        assert_eq!(store.shard_of(9), 2);
    }

    #[test]
    fn shard_updates_bump_only_that_shards_version() {
        let mut store = ShardedStore::new(vec![0.0; 6], 2);
        store.apply_shard(1, &[1.0, 1.0, 1.0], 0.5);
        assert_eq!(store.version(0), 0);
        assert_eq!(store.version(1), 1);
        assert_eq!(store.min_version(), 0);
        assert_eq!(store.shard(1), &[-0.5, -0.5, -0.5]);
        assert_eq!(store.shard(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn whole_model_update_touches_every_shard() {
        let mut store = ShardedStore::new(vec![1.0; 5], 2);
        store.apply_all(&[1.0; 5], 1.0);
        assert_eq!(store.pull_all(), vec![0.0; 5]);
        assert_eq!(store.min_version(), 1);
    }

    #[test]
    fn single_shard_behaves_like_a_flat_store() {
        let mut store = ShardedStore::new(vec![0.0; 4], 1);
        store.apply_all(&[2.0; 4], 0.25);
        assert_eq!(store.pull_all(), vec![-0.5; 4]);
        assert_eq!(store.shard_of(3), 0);
    }

    #[test]
    fn empty_store_is_permitted() {
        let store = ShardedStore::new(vec![], 2);
        assert!(store.is_empty());
        assert_eq!(store.pull_all(), Vec::<f32>::new());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedStore::new(vec![0.0; 4], 0);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn more_shards_than_parameters_rejected() {
        ShardedStore::new(vec![0.0; 2], 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_key_rejected() {
        ShardedStore::new(vec![0.0; 4], 2).shard_of(4);
    }

    #[test]
    fn flat_view_is_contiguous_and_matches_pull_all() {
        let mut store = ShardedStore::new((0..7).map(|i| i as f32).collect(), 3);
        assert_eq!(store.as_flat(), store.pull_all().as_slice());
        store.flat_mut()[6] = -1.0;
        store.bump_all_versions();
        assert_eq!(store.shard(2), &[5.0, -1.0]);
        assert_eq!(store.versions(), &[1, 1, 1]);
        assert_eq!(store.min_version(), 1);
    }

    #[test]
    fn shard_range_matches_the_constructed_offsets() {
        for total in [0usize, 1, 5, 10, 23, 64] {
            for shards in 1..=total.max(1).min(8) {
                let store = ShardedStore::new(vec![0.0; total], shards);
                for i in 0..shards {
                    assert_eq!(
                        shard_range(total, shards, i),
                        store.key_range(i),
                        "total={total} shards={shards} i={i}"
                    );
                }
                assert_eq!(store.offsets().len(), shards + 1);
                assert_eq!(*store.offsets().last().unwrap(), total);
            }
        }
    }

    #[test]
    fn with_offsets_preserves_an_explicit_global_sub_layout() {
        // A 2-server split of 10 params over 4 global shards: server 1 owns global
        // shards 2 and 3 ([6..8) and [8..10)), so its local store spans [6..10) with
        // boundaries taken from the global layout, not recomputed from its length.
        let global: Vec<usize> = (0..4).map(|s| shard_range(10, 4, s).0).collect();
        assert_eq!(global, vec![0, 3, 6, 8]);
        let slice: Vec<f32> = (6..10).map(|i| i as f32).collect();
        let store = ShardedStore::with_offsets(slice, vec![0, 2, 4]);
        assert_eq!(store.num_shards(), 2);
        assert_eq!(store.shard(0), &[6.0, 7.0]);
        assert_eq!(store.shard(1), &[8.0, 9.0]);
        assert_eq!(store.versions(), &[0, 0]);
    }

    #[test]
    fn zero_shard_store_is_the_drained_server_case() {
        let store = ShardedStore::with_offsets(vec![], vec![0]);
        assert_eq!(store.num_shards(), 0);
        assert!(store.is_empty());
        assert!(store.delta_compatible(&[]));
        assert_eq!(store.versions(), &[] as &[u64]);
        let (mut meta, mut weights) = (Vec::new(), Vec::new());
        assert_eq!(store.pull_delta_into(&[], &mut meta, &mut weights), 0);
        let mut store = store;
        store.apply_all(&[], 0.1); // a zero-length push round is a no-op
        store.bump_all_versions();
        assert_eq!(store.min_version(), 0);
    }

    #[test]
    #[should_panic(expected = "final sentinel")]
    fn with_offsets_rejects_a_bad_sentinel() {
        ShardedStore::with_offsets(vec![0.0; 4], vec![0, 2, 5]);
    }

    #[test]
    fn pull_into_reuses_the_callers_buffer() {
        let store = ShardedStore::new((0..6).map(|i| i as f32).collect(), 2);
        let mut out = vec![9.0; 10]; // stale content and excess length
        store.pull_into(&mut out);
        assert_eq!(out, (0..6).map(|i| i as f32).collect::<Vec<_>>());
        let mut shard_out = Vec::new();
        store.pull_shard_into(1, &mut shard_out);
        assert_eq!(shard_out, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn delta_pulls_ship_exactly_the_stale_shards() {
        let mut store = ShardedStore::new(vec![0.0; 9], 3);
        store.apply_shard(0, &[1.0; 3], 1.0);
        store.apply_shard(2, &[2.0; 3], 1.0);
        store.apply_shard(2, &[2.0; 3], 1.0);
        // Client knows shard 0's update but not shard 2's two.
        let known = [1u64, 0, 0];
        assert!(store.delta_compatible(&known));
        assert_eq!(store.stale_shards(&known).collect::<Vec<_>>(), vec![2]);
        let (mut meta, mut weights) = (Vec::new(), Vec::new());
        assert_eq!(store.pull_delta_into(&known, &mut meta, &mut weights), 1);
        assert_eq!(meta, vec![(2, 2)]);
        assert_eq!(weights, vec![-4.0; 3]);
        // Fully caught-up client: empty delta.
        let caught_up = [1u64, 0, 2];
        assert_eq!(
            store.pull_delta_into(&caught_up, &mut meta, &mut weights),
            0
        );
        assert!(meta.is_empty() && weights.is_empty());
        // Wrong length or future versions are incompatible.
        assert!(!store.delta_compatible(&[1, 0]));
        assert!(!store.delta_compatible(&[9, 0, 0]));
    }

    #[test]
    fn per_shard_application_is_bitwise_identical_to_whole_model_application() {
        // The SGD arithmetic is elementwise, so splitting a full-model gradient into
        // per-shard applications must produce exactly the same bits as one flat pass.
        let initial: Vec<f32> = (0..23).map(|i| (i as f32).sin()).collect();
        let grads: Vec<f32> = (0..23).map(|i| (i as f32 * 0.7).cos()).collect();
        let mut whole = ShardedStore::new(initial.clone(), 1);
        let mut split = ShardedStore::new(initial, 5);
        whole.apply_all(&grads, 0.05);
        split.apply_all(&grads, 0.05);
        assert_eq!(whole.as_flat(), split.as_flat());
        assert_eq!(split.versions(), &[1; 5]);
    }
}
