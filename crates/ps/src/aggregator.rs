//! Server-side gradient aggregation.
//!
//! Algorithm 1 (server line 2) notes that "if some other workers send their updates at
//! the same time, their gradients are aggregated before updating" the global weights.
//! The reproduction exposes that choice explicitly: the server can apply every push the
//! moment it arrives ([`AggregationMode::PerPush`], the behaviour the rest of the paper
//! assumes) or buffer pushes and apply their average once enough have accumulated
//! ([`AggregationMode::Buffered`]), which is DESIGN.md §6's "aggregation granularity"
//! ablation. Buffering trades update latency for lower gradient variance — with a
//! buffer the size of the worker count it behaves like synchronous mini-batch
//! accumulation even under an asynchronous paradigm.

use serde::{Deserialize, Serialize};

/// How the server folds incoming gradients into the global weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregationMode {
    /// Apply each push to the weights immediately (the paper's default behaviour).
    PerPush,
    /// Buffer pushes and apply their average once `capacity` of them have accumulated.
    /// A trailing partial buffer is applied on [`GradientBuffer::flush`].
    Buffered {
        /// Number of pushes averaged into one weight update.
        capacity: usize,
    },
}

impl Default for AggregationMode {
    fn default() -> Self {
        AggregationMode::PerPush
    }
}

impl AggregationMode {
    /// A short label for reports.
    pub fn label(&self) -> String {
        match self {
            AggregationMode::PerPush => "per-push".to_string(),
            AggregationMode::Buffered { capacity } => format!("buffered x{capacity}"),
        }
    }
}

/// Accumulates pushed gradients according to an [`AggregationMode`] and emits the
/// averaged gradient that should actually be applied to the weights.
///
/// The hot path is allocation-free: [`GradientBuffer::add_in_place`] accumulates into a
/// preallocated sum buffer and averages into a second preallocated buffer, so buffered
/// steady state performs no heap allocation per push (a regression test enforces this
/// with a counting allocator). The `Option<Vec<f32>>`-returning [`GradientBuffer::add`]
/// / [`GradientBuffer::flush`] remain as allocating conveniences for tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBuffer {
    mode: AggregationMode,
    sums: Vec<f32>,
    /// The averaged update of the most recent emission (valid while `ready`).
    avg: Vec<f32>,
    /// Whether `avg` holds the update produced by the last `add_in_place`/
    /// `flush_in_place` call (per-push mode never sets it: the pushed gradient itself
    /// is the update and no copy is made).
    ready: bool,
    count: usize,
    emitted: u64,
    absorbed: u64,
}

impl GradientBuffer {
    /// Creates a buffer for gradients of length `dim`.
    ///
    /// # Panics
    ///
    /// Panics if the mode is [`AggregationMode::Buffered`] with a zero capacity.
    pub fn new(dim: usize, mode: AggregationMode) -> Self {
        if let AggregationMode::Buffered { capacity } = mode {
            assert!(
                capacity > 0,
                "buffered aggregation needs a positive capacity"
            );
        }
        Self {
            mode,
            sums: vec![0.0; dim],
            avg: Vec::new(),
            ready: false,
            count: 0,
            emitted: 0,
            absorbed: 0,
        }
    }

    /// The aggregation mode in use.
    pub fn mode(&self) -> AggregationMode {
        self.mode
    }

    /// Number of gradients currently buffered (always zero for per-push mode).
    pub fn pending(&self) -> usize {
        self.count
    }

    /// Number of aggregated gradients emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Number of individual gradients absorbed so far.
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// Absorbs one pushed gradient in place. Returns `true` when an update is ready to
    /// apply: in per-push mode the update is the pushed gradient itself
    /// ([`GradientBuffer::pending_update`] returns `None` and the caller applies
    /// `grads` directly, with no copy); in buffered mode the averaged buffer is exposed
    /// through [`GradientBuffer::pending_update`] once `capacity` pushes accumulated.
    ///
    /// # Panics
    ///
    /// Panics if the gradient length differs from the buffer dimension.
    pub fn add_in_place(&mut self, grads: &[f32]) -> bool {
        assert_eq!(grads.len(), self.sums.len(), "gradient length mismatch");
        self.absorbed += 1;
        self.ready = false;
        match self.mode {
            AggregationMode::PerPush => {
                self.emitted += 1;
                true
            }
            AggregationMode::Buffered { capacity } => {
                for (s, &g) in self.sums.iter_mut().zip(grads) {
                    *s += g;
                }
                self.count += 1;
                if self.count >= capacity {
                    self.emit();
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The averaged update produced by the last [`GradientBuffer::add_in_place`] /
    /// [`GradientBuffer::flush_in_place`] call that returned `true`, or `None` in
    /// per-push mode (where the pushed gradient itself is the update).
    pub fn pending_update(&self) -> Option<&[f32]> {
        self.ready.then(|| self.avg.as_slice())
    }

    /// Emits whatever is currently buffered (a no-op returning `false` when empty);
    /// the average is exposed through [`GradientBuffer::pending_update`]. Used at the
    /// end of training so no pushed work is dropped.
    pub fn flush_in_place(&mut self) -> bool {
        self.ready = false;
        if self.count == 0 {
            false
        } else {
            self.emit();
            true
        }
    }

    /// Adds one pushed gradient. Returns the gradient the server should apply now, if
    /// any: the push itself in per-push mode, or the buffer average once the buffer
    /// reaches its capacity. Allocating convenience over
    /// [`GradientBuffer::add_in_place`].
    ///
    /// # Panics
    ///
    /// Panics if the gradient length differs from the buffer dimension.
    pub fn add(&mut self, grads: &[f32]) -> Option<Vec<f32>> {
        if self.add_in_place(grads) {
            Some(self.pending_update().unwrap_or(grads).to_vec())
        } else {
            None
        }
    }

    /// Applies whatever is currently buffered, returning the averaged gradient if the
    /// buffer was non-empty. Allocating convenience over
    /// [`GradientBuffer::flush_in_place`].
    pub fn flush(&mut self) -> Option<Vec<f32>> {
        if self.flush_in_place() {
            Some(self.avg.clone())
        } else {
            None
        }
    }

    /// Averages `sums` into the preallocated `avg` buffer and resets the accumulator.
    fn emit(&mut self) {
        let n = self.count as f32;
        self.avg.clear();
        self.avg.extend(self.sums.iter().map(|&s| s / n));
        self.sums.iter_mut().for_each(|s| *s = 0.0);
        self.count = 0;
        self.emitted += 1;
        self.ready = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_push_mode_passes_gradients_through_unchanged() {
        let mut buf = GradientBuffer::new(2, AggregationMode::PerPush);
        assert_eq!(buf.add(&[1.0, 2.0]), Some(vec![1.0, 2.0]));
        assert_eq!(buf.add(&[3.0, 4.0]), Some(vec![3.0, 4.0]));
        assert_eq!(buf.pending(), 0);
        assert_eq!(buf.emitted(), 2);
        assert_eq!(buf.absorbed(), 2);
        assert_eq!(buf.flush(), None);
    }

    #[test]
    fn buffered_mode_averages_capacity_pushes() {
        let mut buf = GradientBuffer::new(2, AggregationMode::Buffered { capacity: 2 });
        assert_eq!(buf.add(&[1.0, 0.0]), None);
        assert_eq!(buf.pending(), 1);
        assert_eq!(buf.add(&[3.0, 2.0]), Some(vec![2.0, 1.0]));
        assert_eq!(buf.pending(), 0);
        assert_eq!(buf.emitted(), 1);
        assert_eq!(buf.absorbed(), 2);
    }

    #[test]
    fn flush_applies_a_partial_buffer() {
        let mut buf = GradientBuffer::new(1, AggregationMode::Buffered { capacity: 4 });
        buf.add(&[2.0]);
        buf.add(&[4.0]);
        assert_eq!(buf.flush(), Some(vec![3.0]));
        assert_eq!(buf.flush(), None);
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn buffer_resets_between_emissions() {
        let mut buf = GradientBuffer::new(1, AggregationMode::Buffered { capacity: 2 });
        buf.add(&[2.0]);
        assert_eq!(buf.add(&[4.0]), Some(vec![3.0]));
        buf.add(&[10.0]);
        assert_eq!(buf.add(&[20.0]), Some(vec![15.0]));
    }

    #[test]
    fn in_place_api_exposes_the_update_without_copying() {
        let mut buf = GradientBuffer::new(2, AggregationMode::Buffered { capacity: 2 });
        assert!(!buf.add_in_place(&[1.0, 0.0]));
        assert_eq!(buf.pending_update(), None);
        assert!(buf.add_in_place(&[3.0, 2.0]));
        assert_eq!(buf.pending_update(), Some(&[2.0, 1.0][..]));
        // The pending update is invalidated by the next absorb.
        assert!(!buf.add_in_place(&[5.0, 5.0]));
        assert_eq!(buf.pending_update(), None);
        assert!(buf.flush_in_place());
        assert_eq!(buf.pending_update(), Some(&[5.0, 5.0][..]));
        assert!(!buf.flush_in_place());
        // Per-push mode signals "apply the push itself": ready but no stored copy.
        let mut per_push = GradientBuffer::new(2, AggregationMode::PerPush);
        assert!(per_push.add_in_place(&[7.0, 8.0]));
        assert_eq!(per_push.pending_update(), None);
    }

    #[test]
    fn labels_describe_the_mode() {
        assert_eq!(AggregationMode::PerPush.label(), "per-push");
        assert_eq!(
            AggregationMode::Buffered { capacity: 4 }.label(),
            "buffered x4"
        );
        assert_eq!(AggregationMode::default(), AggregationMode::PerPush);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        GradientBuffer::new(1, AggregationMode::Buffered { capacity: 0 });
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_gradient_length_rejected() {
        GradientBuffer::new(2, AggregationMode::PerPush).add(&[1.0]);
    }
}
