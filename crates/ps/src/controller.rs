//! The DSSP synchronization controller (Algorithm 2 of the paper).
//!
//! When the fastest worker exceeds the lower staleness bound `s_L`, the server asks the
//! controller how many *extra* iterations that worker should run before it stops to wait
//! for the slowest worker. The controller simulates the next `r_max` iterations of both
//! the fastest and the slowest worker from their measured iteration intervals (Figure 1)
//! and picks the stopping point `r*` whose predicted completion time is closest to one
//! of the slowest worker's predicted completion times — i.e. the point with the least
//! predicted waiting time (Figure 2).

use crate::clock::{IntervalTracker, WorkerId};
use serde::{Deserialize, Serialize};

/// How the iteration interval of a worker is estimated from its push timestamps.
///
/// The paper uses the single most recent interval (`A[i][0] − A[i][1]`). The
/// exponentially-weighted variant is provided as an ablation (DESIGN.md §6): it smooths
/// jittery measurements at the cost of adapting more slowly to speed changes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IntervalEstimator {
    /// Use the latest interval only (the paper's method).
    LastInterval,
    /// Exponentially-weighted moving average with the given smoothing factor in `(0,1]`
    /// (1.0 degenerates to `LastInterval`).
    Ewma {
        /// Weight given to the newest observation.
        alpha: f64,
    },
}

/// The outcome of one controller invocation, including the simulated timelines, so that
/// the Figure-2 reproduction can display exactly what the controller predicted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerDecision {
    /// The chosen number of extra iterations `r*` (0 means "wait now").
    pub extra_iterations: u64,
    /// Predicted waiting time (seconds) if the fast worker stops after `r*` extra
    /// iterations.
    pub predicted_wait: f64,
    /// Predicted completion times of the fast worker for `r = 0..=r_max` extra
    /// iterations (`Sim_p` in Algorithm 2).
    pub fast_timeline: Vec<f64>,
    /// Predicted completion times of the slowest worker's next `r_max + 1` iterations
    /// (`Sim_slowest` in Algorithm 2).
    pub slow_timeline: Vec<f64>,
}

/// The DSSP synchronization controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncController {
    r_max: u64,
    estimator: IntervalEstimator,
    /// Smoothed interval estimates, one per worker (used only by the EWMA estimator).
    smoothed: Vec<Option<f64>>,
    invocations: u64,
}

impl SyncController {
    /// Creates a controller allowing at most `r_max` extra iterations
    /// (`r_max = s_U − s_L`).
    pub fn new(num_workers: usize, r_max: u64) -> Self {
        Self::with_estimator(num_workers, r_max, IntervalEstimator::LastInterval)
    }

    /// Creates a controller with an explicit interval estimator.
    pub fn with_estimator(num_workers: usize, r_max: u64, estimator: IntervalEstimator) -> Self {
        Self {
            r_max,
            estimator,
            smoothed: vec![None; num_workers],
            invocations: 0,
        }
    }

    /// The maximum number of extra iterations this controller will ever grant.
    pub fn r_max(&self) -> u64 {
        self.r_max
    }

    /// Number of times the controller has been invoked.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Overwrites the invocation counter — the checkpoint-restore path, so a resumed
    /// run reports the same cumulative controller statistics as an unfailed one.
    pub fn set_invocations(&mut self, invocations: u64) {
        self.invocations = invocations;
    }

    /// Feeds a new measured interval into the estimator state.
    fn update_estimate(&mut self, worker: WorkerId, measured: f64) -> f64 {
        match self.estimator {
            IntervalEstimator::LastInterval => measured,
            IntervalEstimator::Ewma { alpha } => {
                let prev = self.smoothed[worker];
                let est = match prev {
                    Some(p) => alpha * measured + (1.0 - alpha) * p,
                    None => measured,
                };
                self.smoothed[worker] = Some(est);
                est
            }
        }
    }

    /// Runs Algorithm 2 and returns the number of extra iterations the fastest worker
    /// `fast` should be allowed beyond `s_L`, together with the simulated timelines.
    ///
    /// If either worker's iteration interval cannot be measured yet (fewer than two
    /// pushes observed), the controller conservatively returns `r* = 0`, i.e. plain SSP
    /// behaviour at the lower bound.
    pub fn decide(
        &mut self,
        fast: WorkerId,
        slowest: WorkerId,
        tracker: &IntervalTracker,
    ) -> ControllerDecision {
        self.invocations += 1;
        let fallback = ControllerDecision {
            extra_iterations: 0,
            predicted_wait: 0.0,
            fast_timeline: Vec::new(),
            slow_timeline: Vec::new(),
        };
        let (Some(fast_interval), Some(slow_interval)) =
            (tracker.interval(fast), tracker.interval(slowest))
        else {
            return fallback;
        };
        let (Some(fast_latest), Some(slow_latest)) =
            (tracker.latest(fast), tracker.latest(slowest))
        else {
            return fallback;
        };
        let fast_interval = self.update_estimate(fast, fast_interval).max(0.0);
        let slow_interval = self.update_estimate(slowest, slow_interval).max(0.0);

        let n = (self.r_max + 1) as usize;
        // Sim_p[r]: the fast worker's predicted push time after r extra iterations.
        let fast_timeline: Vec<f64> = (0..n)
            .map(|r| fast_latest + r as f64 * fast_interval)
            .collect();
        // Sim_slowest[k]: the slowest worker's predicted push times, starting from its
        // *next* push (Algorithm 2 line 7: Sim_slowest[0] = A[slowest][0] + I_slowest).
        let slow_timeline: Vec<f64> = (0..n)
            .map(|k| slow_latest + (k + 1) as f64 * slow_interval)
            .collect();

        // Pick the r whose predicted stop time is closest to one of the slowest worker's
        // predicted push times; ties resolve to the smaller r (less staleness).
        let mut best_r = 0usize;
        let mut best_gap = f64::INFINITY;
        for (r, &fast_t) in fast_timeline.iter().enumerate() {
            let gap = slow_timeline
                .iter()
                .map(|&slow_t| (slow_t - fast_t).abs())
                .fold(f64::INFINITY, f64::min);
            if gap + 1e-12 < best_gap {
                best_gap = gap;
                best_r = r;
            }
        }
        ControllerDecision {
            extra_iterations: best_r as u64,
            predicted_wait: best_gap,
            fast_timeline,
            slow_timeline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a tracker where worker 0 pushes every `fast` seconds and worker 1 every
    /// `slow` seconds, with both having just pushed.
    fn tracker(fast: f64, slow: f64) -> IntervalTracker {
        let mut t = IntervalTracker::new(2);
        t.record_push(0, 0.0);
        t.record_push(0, fast);
        t.record_push(1, 0.0);
        t.record_push(1, slow);
        t
    }

    #[test]
    fn returns_zero_without_interval_measurements() {
        let mut c = SyncController::new(2, 8);
        let t = IntervalTracker::new(2);
        let d = c.decide(0, 1, &t);
        assert_eq!(d.extra_iterations, 0);
    }

    #[test]
    fn figure2_scenario_prefers_running_ahead() {
        // Fast worker iterates every 1s, slow worker every 4s; both just pushed at the
        // same time. Waiting immediately wastes ~3s; running 3-4 more fast iterations
        // aligns the fast worker's stop with the slow worker's next push.
        let mut c = SyncController::new(2, 8);
        let d = c.decide(0, 1, &tracker(1.0, 4.0));
        assert!(
            d.extra_iterations >= 3,
            "expected >=3 extra, got {}",
            d.extra_iterations
        );
        assert!(d.predicted_wait <= 1.0);
    }

    #[test]
    fn equal_speeds_need_no_extra_iterations() {
        let mut c = SyncController::new(2, 8);
        let d = c.decide(0, 1, &tracker(2.0, 2.0));
        // The slow timeline starts one full interval after the fast worker's last push,
        // so r = 1 aligns exactly; r = 0 would wait a full interval. Either 0 or 1 is a
        // small answer; the key property is the predicted wait is (near) zero.
        assert!(d.extra_iterations <= 1);
        assert!(d.predicted_wait < 1e-9);
    }

    #[test]
    fn extra_iterations_never_exceed_r_max() {
        // Slow worker is extremely slow; the best alignment would be far beyond r_max,
        // so the controller must clamp at r_max.
        let mut c = SyncController::new(2, 5);
        let d = c.decide(0, 1, &tracker(1.0, 1000.0));
        assert!(d.extra_iterations <= 5);
        assert_eq!(d.fast_timeline.len(), 6);
        assert_eq!(d.slow_timeline.len(), 6);
    }

    #[test]
    fn r_max_zero_always_waits_immediately() {
        let mut c = SyncController::new(2, 0);
        let d = c.decide(0, 1, &tracker(1.0, 10.0));
        assert_eq!(d.extra_iterations, 0);
    }

    #[test]
    fn predicted_wait_is_minimal_over_the_timelines() {
        let mut c = SyncController::new(2, 10);
        let d = c.decide(0, 1, &tracker(1.3, 5.7));
        // Recompute the minimum by brute force and compare.
        let mut best = f64::INFINITY;
        for &f in &d.fast_timeline {
            for &s in &d.slow_timeline {
                best = best.min((s - f).abs());
            }
        }
        assert!((d.predicted_wait - best).abs() < 1e-9);
    }

    #[test]
    fn ewma_estimator_smooths_interval_changes() {
        let mut c = SyncController::with_estimator(2, 4, IntervalEstimator::Ewma { alpha: 0.5 });
        // First call establishes the estimate; second call with a much larger measured
        // interval should use a smoothed (smaller) value than the raw measurement, which
        // we can observe through the fast timeline spacing.
        let _ = c.decide(0, 1, &tracker(1.0, 3.0));
        let mut t2 = IntervalTracker::new(2);
        t2.record_push(0, 0.0);
        t2.record_push(0, 9.0); // raw interval 9.0, smoothed should be 5.0
        t2.record_push(1, 0.0);
        t2.record_push(1, 3.0);
        let d = c.decide(0, 1, &t2);
        let spacing = d.fast_timeline[1] - d.fast_timeline[0];
        assert!(
            (spacing - 5.0).abs() < 1e-9,
            "expected smoothed 5.0, got {spacing}"
        );
    }

    #[test]
    fn invocation_counter_increments() {
        let mut c = SyncController::new(2, 3);
        assert_eq!(c.invocations(), 0);
        let _ = c.decide(0, 1, &tracker(1.0, 2.0));
        let _ = c.decide(0, 1, &tracker(1.0, 2.0));
        assert_eq!(c.invocations(), 2);
    }
}
