//! Server-side synchronization policies: BSP, ASP, SSP and DSSP.
//!
//! A policy answers one question for the parameter server (Algorithm 1, server part):
//! after worker `p`'s push has been applied, may `p` start its next iteration now, or
//! must it wait until other workers catch up? Blocked workers are re-evaluated whenever
//! any other worker pushes.

use crate::clock::{ClockTable, IntervalTracker, WorkerId};
use crate::controller::{ControllerDecision, SyncController};
use serde::{Deserialize, Serialize};

/// Serializable description of a synchronization policy, used in experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Bulk Synchronous Parallel: every worker waits for all others at every iteration.
    Bsp,
    /// Asynchronous Parallel: no synchronization at all.
    Asp,
    /// Stale Synchronous Parallel with a fixed staleness threshold `s`.
    Ssp {
        /// The staleness threshold.
        s: u64,
    },
    /// Dynamic Stale Synchronous Parallel with a staleness threshold range
    /// `[s_l, s_l + r_max]`, following Algorithm 1 of the paper literally: every time the
    /// fastest worker exceeds `s_l`, the synchronization controller may grant it up to
    /// `r_max` further iterations, and nothing stops it from being granted again later,
    /// so the *cumulative* lead over the slowest worker is not hard-capped at
    /// `s_U = s_l + r_max`. This is what lets DSSP track ASP's progress on strongly
    /// heterogeneous clusters (the paper's Figure 4 / Table I behaviour) while staying
    /// SSP-like on nearly homogeneous ones.
    Dssp {
        /// Lower bound of the staleness threshold range (`s_L`).
        s_l: u64,
        /// Width of the range (`r_max = s_U − s_L`), the most extra iterations a single
        /// controller decision may grant.
        r_max: u64,
    },
    /// DSSP with strict range enforcement: like [`PolicyKind::Dssp`] but the worker's
    /// cumulative lead over the slowest worker is additionally capped at
    /// `s_U = s_l + r_max`, so the realized staleness never leaves the range Theorem 2
    /// assumes. Provided as an ablation of the design choice (DESIGN.md §6).
    DsspStrict {
        /// Lower bound of the staleness threshold range (`s_L`).
        s_l: u64,
        /// Width of the range (`r_max = s_U − s_L`).
        r_max: u64,
    },
}

impl PolicyKind {
    /// Builds the runtime policy object for `num_workers` workers.
    pub fn build(&self, num_workers: usize) -> Box<dyn SyncPolicy> {
        match *self {
            PolicyKind::Bsp => Box::new(Bsp::new(num_workers)),
            PolicyKind::Asp => Box::new(Asp::new()),
            PolicyKind::Ssp { s } => Box::new(Ssp::new(s)),
            PolicyKind::Dssp { s_l, r_max } => Box::new(Dssp::new(num_workers, s_l, r_max)),
            PolicyKind::DsspStrict { s_l, r_max } => {
                Box::new(Dssp::strict(num_workers, s_l, r_max))
            }
        }
    }

    /// A short label for reports and plots ("BSP", "SSP s=3", ...).
    pub fn label(&self) -> String {
        match *self {
            PolicyKind::Bsp => "BSP".to_string(),
            PolicyKind::Asp => "ASP".to_string(),
            PolicyKind::Ssp { s } => format!("SSP s={s}"),
            PolicyKind::Dssp { s_l, r_max } => format!("DSSP s={s_l}, r={r_max}"),
            PolicyKind::DsspStrict { s_l, r_max } => format!("DSSP-strict s={s_l}, r={r_max}"),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Read-only view of the server state handed to a policy when it makes a decision.
#[derive(Debug)]
pub struct PolicyCtx<'a> {
    /// The worker the decision is about.
    pub worker: WorkerId,
    /// Current time in seconds (virtual or wall-clock, depending on the runtime).
    pub now: f64,
    /// Push counters for all workers.
    pub clocks: &'a ClockTable,
    /// Push timestamp table (table `A` of Algorithm 2).
    pub intervals: &'a IntervalTracker,
}

/// A server-side synchronization policy.
pub trait SyncPolicy: Send {
    /// The policy's display name.
    fn name(&self) -> String;

    /// Called after `ctx.worker`'s push has been applied and its clock incremented.
    /// Returns `true` if the worker may start its next iteration immediately.
    fn on_push(&mut self, ctx: PolicyCtx<'_>) -> bool;

    /// Called for a currently blocked worker whenever any clock has advanced.
    /// Returns `true` if that worker may now be released.
    fn may_release(&mut self, ctx: PolicyCtx<'_>) -> bool;

    /// The most recent controller decision, if this policy uses one (DSSP only).
    fn last_controller_decision(&self) -> Option<&ControllerDecision> {
        None
    }

    /// Cumulative extra-iteration credits granted so far (0 for policies without a
    /// controller). The server differences this across a push to learn the `r*` granted
    /// at that push.
    fn credits_granted(&self) -> u64 {
        0
    }

    /// Per-worker remaining extra-iteration credit balances, for checkpointing. Empty
    /// for policies without credits.
    fn credits_snapshot(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Cumulative controller invocations, for checkpointing (0 for policies without a
    /// controller).
    fn controller_invocations(&self) -> u64 {
        0
    }

    /// Restores checkpointed credit/controller state. A no-op for policies without
    /// credits; policies with credits panic if `credits` has the wrong length.
    fn restore_credits(&mut self, credits: &[u64], granted: u64, invocations: u64) {
        let _ = (credits, granted, invocations);
    }

    /// Removes a worker's remaining credits from the pool (the eviction path) and
    /// returns the reclaimed amount (0 for policies without credits).
    fn reclaim_credits(&mut self, worker: WorkerId) -> u64 {
        let _ = worker;
        0
    }
}

/// Bulk Synchronous Parallel: a worker may proceed only when no other worker is behind
/// it, i.e. everyone has pushed the same number of times.
#[derive(Debug, Clone)]
pub struct Bsp {
    num_workers: usize,
}

impl Bsp {
    /// Creates a BSP policy for `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        Self { num_workers }
    }

    fn everyone_caught_up(&self, ctx: &PolicyCtx<'_>) -> bool {
        let mine = ctx.clocks.count(ctx.worker);
        (0..self.num_workers)
            .filter(|&w| ctx.clocks.is_active(w) || w == ctx.worker)
            .all(|w| ctx.clocks.count(w) >= mine)
    }
}

impl SyncPolicy for Bsp {
    fn name(&self) -> String {
        "BSP".to_string()
    }

    fn on_push(&mut self, ctx: PolicyCtx<'_>) -> bool {
        self.everyone_caught_up(&ctx)
    }

    fn may_release(&mut self, ctx: PolicyCtx<'_>) -> bool {
        self.everyone_caught_up(&ctx)
    }
}

/// Asynchronous Parallel: never blocks anyone.
#[derive(Debug, Clone, Copy, Default)]
pub struct Asp;

impl Asp {
    /// Creates an ASP policy.
    pub fn new() -> Self {
        Self
    }
}

impl SyncPolicy for Asp {
    fn name(&self) -> String {
        "ASP".to_string()
    }

    fn on_push(&mut self, _ctx: PolicyCtx<'_>) -> bool {
        true
    }

    fn may_release(&mut self, _ctx: PolicyCtx<'_>) -> bool {
        true
    }
}

/// Stale Synchronous Parallel with a fixed threshold `s`: a worker may proceed as long
/// as it is no more than `s` iterations ahead of the slowest worker.
#[derive(Debug, Clone, Copy)]
pub struct Ssp {
    s: u64,
}

impl Ssp {
    /// Creates an SSP policy with staleness threshold `s`.
    pub fn new(s: u64) -> Self {
        Self { s }
    }

    /// The staleness threshold.
    pub fn threshold(&self) -> u64 {
        self.s
    }

    fn within_threshold(&self, ctx: &PolicyCtx<'_>) -> bool {
        ctx.clocks.lead_over_slowest(ctx.worker) <= self.s
    }
}

impl SyncPolicy for Ssp {
    fn name(&self) -> String {
        format!("SSP s={}", self.s)
    }

    fn on_push(&mut self, ctx: PolicyCtx<'_>) -> bool {
        self.within_threshold(&ctx)
    }

    fn may_release(&mut self, ctx: PolicyCtx<'_>) -> bool {
        self.within_threshold(&ctx)
    }
}

/// Dynamic Stale Synchronous Parallel (the paper's contribution, Algorithm 1 + 2).
///
/// Behaves like SSP with threshold `s_L` until the fastest worker exceeds `s_L`; at that
/// point the [`SyncController`] predicts how many extra iterations (up to `r_max`) the
/// worker should run to minimise its waiting time, and the worker receives that many
/// credits (`r_p` in Algorithm 1). Credits are consumed one per push, can be held by
/// different workers simultaneously, and can change over time — which is exactly the
/// paper's claim of per-worker, time-varying thresholds.
pub struct Dssp {
    s_l: u64,
    r_max: u64,
    strict: bool,
    credits: Vec<u64>,
    controller: SyncController,
    last_decision: Option<ControllerDecision>,
    credits_granted: u64,
}

impl std::fmt::Debug for Dssp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dssp")
            .field("s_l", &self.s_l)
            .field("r_max", &self.r_max)
            .field("strict", &self.strict)
            .field("credits", &self.credits)
            .finish()
    }
}

impl Dssp {
    /// Creates a DSSP policy with staleness range `[s_l, s_l + r_max]`, following the
    /// paper's Algorithm 1 literally (no cumulative cap on the realized lead).
    pub fn new(num_workers: usize, s_l: u64, r_max: u64) -> Self {
        Self {
            s_l,
            r_max,
            strict: false,
            credits: vec![0; num_workers],
            controller: SyncController::new(num_workers, r_max),
            last_decision: None,
            credits_granted: 0,
        }
    }

    /// Creates a DSSP policy that additionally caps the worker's cumulative lead at
    /// `s_U = s_l + r_max` (the strict-range ablation of DESIGN.md §6).
    pub fn strict(num_workers: usize, s_l: u64, r_max: u64) -> Self {
        Self {
            strict: true,
            ..Self::new(num_workers, s_l, r_max)
        }
    }

    /// Whether this policy enforces the upper staleness bound on the cumulative lead.
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// The lower staleness bound `s_L`.
    pub fn s_l(&self) -> u64 {
        self.s_l
    }

    /// The range width `r_max = s_U − s_L`.
    pub fn r_max(&self) -> u64 {
        self.r_max
    }

    /// The remaining extra-iteration credit of a worker (`r_p`).
    pub fn credit(&self, worker: WorkerId) -> u64 {
        self.credits[worker]
    }

    /// Total number of extra-iteration credits granted so far.
    pub fn credits_granted(&self) -> u64 {
        self.credits_granted
    }

    /// Number of controller invocations so far.
    pub fn controller_invocations(&self) -> u64 {
        self.controller.invocations()
    }
}

impl SyncPolicy for Dssp {
    fn name(&self) -> String {
        if self.strict {
            format!("DSSP-strict s={}, r={}", self.s_l, self.r_max)
        } else {
            format!("DSSP s={}, r={}", self.s_l, self.r_max)
        }
    }

    fn on_push(&mut self, ctx: PolicyCtx<'_>) -> bool {
        let p = ctx.worker;
        // Algorithm 1, server lines 3-5: spend an existing credit.
        if self.credits[p] > 0 {
            self.credits[p] -= 1;
            return true;
        }
        // Lines 7-9: within the lower bound, proceed.
        if ctx.clocks.lead_over_slowest(p) <= self.s_l {
            return true;
        }
        // Lines 11-15: only the current fastest worker consults the controller (the
        // paper calls the controller only for the fastest worker to save server time).
        if ctx.clocks.is_fastest(p) {
            let slowest = ctx.clocks.slowest_worker();
            let decision = self.controller.decide(p, slowest, ctx.intervals);
            // Algorithm 1 grants the controller's r* outright; the strict variant
            // additionally caps the grant so the worker's lead over the slowest worker
            // never exceeds s_U = s_L + r_max (the range Theorem 2 reasons about).
            let granted = if self.strict {
                let lead = ctx.clocks.lead_over_slowest(p);
                let available = (self.s_l + self.r_max + 1).saturating_sub(lead);
                decision.extra_iterations.min(available)
            } else {
                decision.extra_iterations
            };
            self.last_decision = Some(decision);
            if granted > 0 {
                self.credits_granted += granted;
                // The worker runs exactly `granted` extra iterations: this OK starts the
                // first one, the remaining `granted - 1` are spent at future pushes.
                self.credits[p] = granted - 1;
                return true;
            }
        }
        // Line 17: wait until the slowest worker catches up to within s_L.
        false
    }

    fn may_release(&mut self, ctx: PolicyCtx<'_>) -> bool {
        ctx.clocks.lead_over_slowest(ctx.worker) <= self.s_l
    }

    fn last_controller_decision(&self) -> Option<&ControllerDecision> {
        self.last_decision.as_ref()
    }

    fn credits_granted(&self) -> u64 {
        self.credits_granted
    }

    fn credits_snapshot(&self) -> Vec<u64> {
        self.credits.clone()
    }

    fn controller_invocations(&self) -> u64 {
        self.controller.invocations()
    }

    fn restore_credits(&mut self, credits: &[u64], granted: u64, invocations: u64) {
        assert_eq!(
            credits.len(),
            self.credits.len(),
            "checkpointed credit table has the wrong worker count"
        );
        self.credits.copy_from_slice(credits);
        self.credits_granted = granted;
        self.controller.set_invocations(invocations);
    }

    fn reclaim_credits(&mut self, worker: WorkerId) -> u64 {
        std::mem::take(&mut self.credits[worker])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Harness {
        clocks: ClockTable,
        intervals: IntervalTracker,
        now: f64,
    }

    impl Harness {
        fn new(workers: usize) -> Self {
            Self {
                clocks: ClockTable::new(workers),
                intervals: IntervalTracker::new(workers),
                now: 0.0,
            }
        }

        /// Simulates worker `w` pushing at time `now` and asks the policy for a decision.
        fn push(&mut self, policy: &mut dyn SyncPolicy, w: WorkerId, now: f64) -> bool {
            self.now = now;
            self.clocks.increment(w);
            self.intervals.record_push(w, now);
            policy.on_push(PolicyCtx {
                worker: w,
                now,
                clocks: &self.clocks,
                intervals: &self.intervals,
            })
        }

        fn release(&self, policy: &mut dyn SyncPolicy, w: WorkerId) -> bool {
            policy.may_release(PolicyCtx {
                worker: w,
                now: self.now,
                clocks: &self.clocks,
                intervals: &self.intervals,
            })
        }
    }

    #[test]
    fn bsp_blocks_until_everyone_pushes() {
        let mut h = Harness::new(3);
        let mut bsp = Bsp::new(3);
        assert!(
            !h.push(&mut bsp, 0, 1.0),
            "first pusher must wait for the rest"
        );
        assert!(!h.push(&mut bsp, 1, 2.0));
        assert!(
            h.push(&mut bsp, 2, 3.0),
            "last pusher completes the superstep"
        );
        // After worker 2's push all three are at clock 1, so the blocked ones release.
        assert!(h.release(&mut bsp, 0));
        assert!(h.release(&mut bsp, 1));
    }

    #[test]
    fn asp_never_blocks() {
        let mut h = Harness::new(2);
        let mut asp = Asp::new();
        for i in 0..10 {
            assert!(h.push(&mut asp, 0, i as f64));
        }
    }

    #[test]
    fn ssp_allows_lead_up_to_threshold() {
        let mut h = Harness::new(2);
        let mut ssp = Ssp::new(2);
        // Worker 0 pushes repeatedly while worker 1 never pushes.
        assert!(h.push(&mut ssp, 0, 1.0)); // lead 1
        assert!(h.push(&mut ssp, 0, 2.0)); // lead 2
        assert!(!h.push(&mut ssp, 0, 3.0), "lead 3 exceeds threshold 2");
        // Once worker 1 pushes, worker 0's lead drops to 2 and it can be released.
        assert!(!h.release(&mut ssp, 0));
        h.push(&mut ssp, 1, 4.0);
        assert!(h.release(&mut ssp, 0));
    }

    #[test]
    fn ssp_zero_threshold_degenerates_to_bsp_like_lockstep() {
        let mut h = Harness::new(2);
        let mut ssp = Ssp::new(0);
        assert!(!h.push(&mut ssp, 0, 1.0));
        assert!(h.push(&mut ssp, 1, 2.0));
    }

    #[test]
    fn dssp_with_zero_range_behaves_like_ssp_at_lower_bound() {
        let mut ha = Harness::new(2);
        let mut hb = Harness::new(2);
        let mut dssp = Dssp::new(2, 2, 0);
        let mut ssp = Ssp::new(2);
        // Same push sequence must give identical decisions.
        let sequence: Vec<(WorkerId, f64)> = vec![
            (0, 1.0),
            (0, 2.0),
            (0, 3.0),
            (1, 4.0),
            (0, 5.0),
            (0, 6.0),
            (1, 7.0),
        ];
        for &(w, t) in &sequence {
            let a = ha.push(&mut dssp, w, t);
            let b = hb.push(&mut ssp, w, t);
            assert_eq!(a, b, "divergence at push ({w}, {t})");
        }
    }

    #[test]
    fn dssp_grants_extra_iterations_to_a_fast_worker() {
        let mut h = Harness::new(2);
        let mut dssp = Dssp::new(2, 1, 8);
        // Build interval history: worker 0 pushes every second, worker 1 every 10 s.
        assert!(h.push(&mut dssp, 0, 1.0)); // lead 1 <= s_l
        assert!(h.push(&mut dssp, 1, 10.0)); // lead 0
        assert!(h.push(&mut dssp, 0, 2.0)); // lead 1, interval(0) = 1
        assert!(h.push(&mut dssp, 1, 20.0)); // lead 0, interval(1) = 10
        assert!(h.push(&mut dssp, 0, 3.0)); // lead 1
                                            // Next push exceeds s_l = 1: the controller should grant extra iterations
                                            // because worker 0 is much faster than worker 1.
        let ok = h.push(&mut dssp, 0, 4.0);
        assert!(ok, "controller should let the fast worker run ahead");
        assert!(dssp.credits_granted() > 0);
        assert!(dssp.last_controller_decision().is_some());
    }

    #[test]
    fn dssp_strict_credits_are_spent_one_per_push_and_lead_stays_in_range() {
        let mut h = Harness::new(2);
        let mut dssp = Dssp::strict(2, 1, 4);
        // Worker 0 is fast (interval 1 s), worker 1 is slow (interval 10 s).
        assert!(h.push(&mut dssp, 0, 1.0));
        assert!(h.push(&mut dssp, 1, 10.0));
        assert!(h.push(&mut dssp, 0, 2.0));
        assert!(h.push(&mut dssp, 1, 20.0));
        assert!(h.push(&mut dssp, 0, 3.0)); // lead 1, still within s_l
                                            // Exceed s_l: the controller grants extra iterations (clamped to r_max = 4).
        let ok = h.push(&mut dssp, 0, 4.0);
        assert!(ok);
        let granted = dssp.credits_granted();
        assert!(granted > 0 && granted <= 4, "granted={granted}");
        let mut extra_ok = 0;
        let mut t = 5.0;
        loop {
            if h.push(&mut dssp, 0, t) {
                extra_ok += 1;
                t += 1.0;
            } else {
                break;
            }
            assert!(extra_ok < 20, "worker 0 should eventually block");
        }
        // The realized lead never exceeds s_U = s_l + r_max under the strict variant.
        assert!(h.clocks.spread() <= 1 + 4 + 1);
        assert!(dssp.is_strict());
    }

    #[test]
    fn dssp_literal_regrants_extra_iterations_to_a_persistently_faster_worker() {
        // Algorithm 1 taken literally: whenever the fastest worker exceeds s_L and its
        // credit is exhausted, the controller is consulted again and may grant more
        // iterations, so a much faster worker keeps making progress well past
        // s_U = s_L + r_max instead of degenerating into SSP at the upper bound.
        let mut h = Harness::new(2);
        let mut dssp = Dssp::new(2, 1, 4);
        assert!(h.push(&mut dssp, 0, 1.0));
        assert!(h.push(&mut dssp, 1, 10.0));
        assert!(h.push(&mut dssp, 0, 2.0));
        assert!(h.push(&mut dssp, 1, 20.0));
        let mut t = 3.0;
        let mut consecutive_ok = 0;
        while h.push(&mut dssp, 0, t) {
            consecutive_ok += 1;
            t += 1.0;
            assert!(
                consecutive_ok < 200,
                "the fast worker must still block eventually"
            );
        }
        // The fast worker ran far beyond the strict upper bound before finally blocking
        // (it blocks once its predicted timeline has overtaken every predicted push of
        // the slow worker), and the controller was consulted more than once.
        assert!(
            h.clocks.spread() > 1 + 4 + 1,
            "literal DSSP should exceed s_U, spread = {}",
            h.clocks.spread()
        );
        assert!(dssp.controller_invocations() >= 2);
        assert!(!dssp.is_strict());
    }

    #[test]
    fn dssp_strict_blocks_no_later_than_literal_dssp() {
        // The strict variant can only be more conservative than the literal algorithm.
        let sequence: Vec<(WorkerId, f64)> = vec![
            (0, 1.0),
            (1, 10.0),
            (0, 2.0),
            (1, 20.0),
            (0, 3.0),
            (0, 4.0),
            (0, 5.0),
            (0, 6.0),
            (0, 7.0),
            (0, 8.0),
        ];
        let mut ha = Harness::new(2);
        let mut hb = Harness::new(2);
        let mut literal = Dssp::new(2, 1, 2);
        let mut strict = Dssp::strict(2, 1, 2);
        for &(w, t) in &sequence {
            let a = ha.push(&mut literal, w, t);
            let b = hb.push(&mut strict, w, t);
            if b {
                assert!(
                    a,
                    "strict granted an OK at ({w}, {t}) that literal DSSP denied"
                );
            }
        }
    }

    #[test]
    fn dssp_blocked_worker_released_when_slowest_catches_up() {
        let mut h = Harness::new(2);
        let mut dssp = Dssp::new(2, 1, 2);
        h.push(&mut dssp, 0, 1.0);
        h.push(&mut dssp, 0, 2.0);
        // Without interval data for worker 1 the controller returns 0, so worker 0 blocks.
        assert!(!h.push(&mut dssp, 0, 3.0));
        assert!(!h.release(&mut dssp, 0));
        h.push(&mut dssp, 1, 4.0);
        h.push(&mut dssp, 1, 5.0);
        assert!(h.release(&mut dssp, 0));
    }

    #[test]
    fn policy_kind_builds_and_labels() {
        assert_eq!(PolicyKind::Bsp.build(2).name(), "BSP");
        assert_eq!(PolicyKind::Asp.build(2).name(), "ASP");
        assert_eq!(PolicyKind::Ssp { s: 5 }.build(2).name(), "SSP s=5");
        assert_eq!(
            PolicyKind::Dssp { s_l: 3, r_max: 12 }.build(2).name(),
            "DSSP s=3, r=12"
        );
        assert_eq!(
            PolicyKind::DsspStrict { s_l: 3, r_max: 12 }.build(2).name(),
            "DSSP-strict s=3, r=12"
        );
        assert_eq!(PolicyKind::Ssp { s: 5 }.to_string(), "SSP s=5");
    }
}
