//! Numeric evaluation of the paper's regret bounds (Theorems 1 and 2).
//!
//! Theorem 1 (from Ho et al., adapted in the paper): SGD under SSP with staleness
//! threshold `s` and `P` workers has regret
//! `R[X] ≤ 4 F L sqrt(2 (s + 1) P T)`.
//!
//! Theorem 2 (the paper's contribution): under DSSP with threshold range
//! `[s_L, s_L + r]`, the regret is bounded by `4 F L sqrt(2 (s_L + r + 1) P T)` — the
//! same `O(√T)` rate, so SGD still converges in expectation.
//!
//! These helpers evaluate the bounds numerically so tests and benches can verify the
//! claimed relationships (DSSP's bound equals SSP's bound at the upper end of the range,
//! the bound grows with staleness, and regret/T vanishes as T grows).

/// Parameters of the regret bound: the Lipschitz constant `L`, the diameter bound `F`,
/// and the number of workers `P`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundParams {
    /// Bound on the distance between iterates: `D(w‖w') ≤ F²`.
    pub f: f64,
    /// Lipschitz constant of the per-iteration losses.
    pub l: f64,
    /// Number of workers.
    pub p: usize,
}

impl Default for BoundParams {
    fn default() -> Self {
        Self {
            f: 1.0,
            l: 1.0,
            p: 4,
        }
    }
}

/// The SSP regret bound of Theorem 1: `4 F L sqrt(2 (s + 1) P T)`.
///
/// # Panics
///
/// Panics if `params.p` is zero.
pub fn ssp_regret_bound(params: &BoundParams, s: u64, t: u64) -> f64 {
    assert!(params.p > 0, "need at least one worker");
    4.0 * params.f * params.l * (2.0 * (s as f64 + 1.0) * params.p as f64 * t as f64).sqrt()
}

/// The DSSP regret bound of Theorem 2: `4 F L sqrt(2 (s_L + r + 1) P T)` where `r` is the
/// largest value in the range `[0, s_U − s_L]`.
pub fn dssp_regret_bound(params: &BoundParams, s_l: u64, r_max: u64, t: u64) -> f64 {
    ssp_regret_bound(params, s_l + r_max, t)
}

/// The per-iteration regret `bound / T`, which must vanish as `T → ∞` for the algorithm
/// to converge in expectation.
pub fn regret_rate(bound: f64, t: u64) -> f64 {
    if t == 0 {
        f64::INFINITY
    } else {
        bound / t as f64
    }
}

/// The SSP learning-rate constant `σ = F L / sqrt(2 (s + 1) P)` used in Theorem 1
/// (`η_t = σ / sqrt(t)`).
pub fn ssp_sigma(params: &BoundParams, s: u64) -> f64 {
    params.f * params.l / (2.0 * (s as f64 + 1.0) * params.p as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dssp_bound_equals_ssp_bound_at_upper_end_of_range() {
        let p = BoundParams::default();
        // DSSP with range [s_L, s_L + r_max] shares the bound of SSP with s = s_L + r_max.
        assert_eq!(
            dssp_regret_bound(&p, 3, 12, 10_000),
            ssp_regret_bound(&p, 15, 10_000)
        );
    }

    #[test]
    fn bound_grows_with_staleness_and_workers() {
        let p = BoundParams::default();
        assert!(ssp_regret_bound(&p, 5, 1000) > ssp_regret_bound(&p, 3, 1000));
        let more_workers = BoundParams { p: 16, ..p };
        assert!(ssp_regret_bound(&more_workers, 3, 1000) > ssp_regret_bound(&p, 3, 1000));
    }

    #[test]
    fn regret_rate_vanishes_with_t() {
        let p = BoundParams::default();
        let rate_small = regret_rate(ssp_regret_bound(&p, 3, 100), 100);
        let rate_large = regret_rate(ssp_regret_bound(&p, 3, 1_000_000), 1_000_000);
        assert!(rate_large < rate_small);
        assert!(rate_large < 0.05);
    }

    #[test]
    fn bound_scales_as_sqrt_t() {
        let p = BoundParams::default();
        let b1 = ssp_regret_bound(&p, 3, 10_000);
        let b4 = ssp_regret_bound(&p, 3, 40_000);
        assert!((b4 / b1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sigma_decreases_with_staleness() {
        let p = BoundParams::default();
        assert!(ssp_sigma(&p, 10) < ssp_sigma(&p, 1));
    }

    #[test]
    fn zero_iterations_has_infinite_rate() {
        assert!(regret_rate(1.0, 0).is_infinite());
    }
}
