//! The gating-only half of the parameter server.
//!
//! A classic deployment runs Algorithm 1's storage (weights + SGD) and Algorithm 2's
//! synchronization state (clocks, intervals, policy) in one process. Sharded
//! deployments split them: the model is spread over a fleet of storage-only shard
//! servers while one lightweight **coordinator** owns the synchronization state and
//! exchanges only tiny clock messages with workers. [`SyncGate`] is that coordinator
//! state, extracted from [`crate::ParameterServer`] (which now composes a gate with
//! its storage, so the single-process decision logic is *the same code* the
//! coordinator runs — a push through either path updates identical clocks, interval
//! tables, policy state and statistics).

use crate::clock::{ClockTable, IntervalTracker, WorkerId};
use crate::policy::{PolicyCtx, PolicyKind, SyncPolicy};
use crate::server::{PushDecision, ServerStats};
use crate::staleness::StalenessTracker;

/// Number of exact histogram buckets kept by the staleness tracker; pushes with a
/// larger lead share the final overflow bucket (their exact maximum is still tracked).
pub(crate) const STALENESS_BUCKETS: u64 = 64;

/// A full copy of a [`SyncGate`]'s mutable state, as captured by
/// [`SyncGate::snapshot`] and replayed by [`SyncGate::restore`]. This is the
/// coordinator's half of a checkpoint: everything Algorithm 1's clock array and
/// Algorithm 2's tables have accumulated, including the DSSP credit balances.
#[derive(Debug, Clone, PartialEq)]
pub struct GateSnapshot {
    /// Per-worker push counters (array `t` of Algorithm 1).
    pub counts: Vec<u64>,
    /// Per-worker retired flags.
    pub retired: Vec<bool>,
    /// Latest push timestamp per worker (table `A` column 0).
    pub latest: Vec<Option<f64>>,
    /// Previous push timestamp per worker (table `A` column 1).
    pub previous: Vec<Option<f64>>,
    /// Workers waiting for a deferred `OK`, in blocking order.
    pub blocked: Vec<WorkerId>,
    /// Synchronization statistics accumulated so far.
    pub stats: ServerStats,
    /// Staleness histogram buckets.
    pub staleness_buckets: Vec<u64>,
    /// Per-worker staleness sums.
    pub staleness_sums: Vec<u64>,
    /// Per-worker staleness push counts.
    pub staleness_pushes: Vec<u64>,
    /// Largest staleness value ever recorded.
    pub staleness_max: u64,
    /// Total pushes recorded (the weight version).
    pub version: u64,
    /// Per-worker remaining DSSP credits (empty for policies without credits).
    pub credits: Vec<u64>,
    /// Cumulative credits granted by the controller.
    pub credits_granted: u64,
    /// Cumulative controller invocations.
    pub controller_invocations: u64,
}

/// The synchronization state of Algorithms 1 and 2 without any parameter storage:
/// per-worker clocks, the push-timestamp table, the gating policy, the blocked set and
/// the synchronization statistics.
///
/// [`crate::ParameterServer`] embeds one of these next to its weight store; a
/// multi-server group's coordinator runs one *without* any store, leaving the weights
/// to its shard servers.
pub struct SyncGate {
    clocks: ClockTable,
    intervals: IntervalTracker,
    policy: Box<dyn SyncPolicy>,
    blocked: Vec<WorkerId>,
    /// Reusable scratch for [`SyncGate::drain_released_into`] so the still-blocked
    /// survivors can be rebuilt without allocating on the push path.
    blocked_scratch: Vec<WorkerId>,
    stats: ServerStats,
    staleness: StalenessTracker,
    version: u64,
    num_workers: usize,
}

impl std::fmt::Debug for SyncGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncGate")
            .field("policy", &self.policy.name())
            .field("version", &self.version)
            .field("blocked", &self.blocked)
            .finish()
    }
}

impl SyncGate {
    /// Creates the synchronization state for `num_workers` workers under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` is zero.
    pub fn new(num_workers: usize, policy: PolicyKind) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        Self {
            clocks: ClockTable::new(num_workers),
            intervals: IntervalTracker::new(num_workers),
            policy: policy.build(num_workers),
            blocked: Vec::new(),
            blocked_scratch: Vec::new(),
            stats: ServerStats::default(),
            staleness: StalenessTracker::new(num_workers, STALENESS_BUCKETS),
            version: 0,
            num_workers,
        }
    }

    /// Number of workers this gate tracks.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Total pushes recorded so far (the server weight version).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The per-worker push counters (array `t` of Algorithm 1).
    pub fn clocks(&self) -> &ClockTable {
        &self.clocks
    }

    /// The push-timestamp table (table `A` of Algorithm 2).
    pub fn intervals(&self) -> &IntervalTracker {
        &self.intervals
    }

    /// Synchronization statistics accumulated so far.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The per-push staleness distribution observed so far.
    pub fn staleness(&self) -> &StalenessTracker {
        &self.staleness
    }

    /// The active policy's display name.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Direct access to the policy, for introspection.
    pub fn policy(&self) -> &dyn SyncPolicy {
        self.policy.as_ref()
    }

    /// Workers currently waiting for a deferred `OK`.
    pub fn blocked_workers(&self) -> &[WorkerId] {
        &self.blocked
    }

    /// Records one push from `worker` at time `now`: increments its clock, updates the
    /// interval table and staleness statistics, consults the policy, and appends any
    /// workers this push releases to the caller-owned `released` buffer (not cleared
    /// first). No weights are touched — the caller applies the gradient to whatever
    /// storage it owns (in place, or remotely on a group of shard servers).
    ///
    /// # Panics
    ///
    /// Panics if the worker id is out of range.
    pub fn on_push(
        &mut self,
        worker: WorkerId,
        now: f64,
        released: &mut Vec<WorkerId>,
    ) -> PushDecision {
        assert!(worker < self.num_workers, "worker id out of range");
        self.version += 1;
        self.clocks.increment(worker);
        self.intervals.record_push(worker, now);

        self.stats.pushes += 1;
        let lead = self.clocks.lead_over_slowest(worker);
        self.stats.staleness_sum += lead;
        self.stats.staleness_max = self.stats.staleness_max.max(lead);
        self.staleness.record(worker, lead);

        let credits_before = self.policy.credits_granted();
        let ok_now = self.policy.on_push(PolicyCtx {
            worker,
            now,
            clocks: &self.clocks,
            intervals: &self.intervals,
        });
        let granted_extra = self.policy.credits_granted() - credits_before;
        self.stats.credits_granted += granted_extra;
        if !ok_now {
            self.stats.blocked_pushes += 1;
            self.blocked.push(worker);
        }

        self.drain_released_into(now, if ok_now { None } else { Some(worker) }, released);
        PushDecision {
            ok_now,
            version: self.version,
            granted_extra,
            staleness: lead,
        }
    }

    /// Marks a worker as retired (it has completed its configured epochs and will push
    /// no more), appending any workers this releases to `released` (not cleared first).
    pub fn retire_into(&mut self, worker: WorkerId, now: f64, released: &mut Vec<WorkerId>) {
        self.clocks.retire(worker);
        self.drain_released_into(now, None, released);
    }

    /// Evicts a dead worker: retires its clock, forgets its interval measurements,
    /// returns its unspent extra-iteration credits to the pool (counted in
    /// [`ServerStats::credits_reclaimed`]), drops it from the blocked set, and appends
    /// any workers its departure releases to `released` (not cleared first). Returns
    /// the number of credits reclaimed.
    ///
    /// # Panics
    ///
    /// Panics if the worker id is out of range.
    pub fn evict_into(&mut self, worker: WorkerId, now: f64, released: &mut Vec<WorkerId>) -> u64 {
        assert!(worker < self.num_workers, "worker id out of range");
        let reclaimed = self.policy.reclaim_credits(worker);
        self.stats.credits_reclaimed += reclaimed;
        self.intervals.forget(worker);
        self.clocks.retire(worker);
        self.blocked.retain(|&w| w != worker);
        self.drain_released_into(now, None, released);
        reclaimed
    }

    /// Captures every mutable field of the gate for checkpointing. The policy *kind*
    /// is not part of the snapshot — the restoring side rebuilds the gate from its own
    /// `JobConfig` (whose digest the checkpoint codec verifies).
    pub fn snapshot(&self) -> GateSnapshot {
        GateSnapshot {
            counts: self.clocks.counts().to_vec(),
            retired: self.clocks.retired_flags().to_vec(),
            latest: (0..self.num_workers)
                .map(|w| self.intervals.latest(w))
                .collect(),
            previous: (0..self.num_workers)
                .map(|w| self.intervals.previous(w))
                .collect(),
            blocked: self.blocked.clone(),
            stats: self.stats.clone(),
            staleness_buckets: self.staleness.buckets().to_vec(),
            staleness_sums: self.staleness.per_worker_sums().to_vec(),
            staleness_pushes: self.staleness.per_worker_push_counts().to_vec(),
            staleness_max: self.staleness.max(),
            version: self.version,
            credits: self.policy.credits_snapshot(),
            credits_granted: self.policy.credits_granted(),
            controller_invocations: self.policy.controller_invocations(),
        }
    }

    /// Rebuilds a gate from a [`GateSnapshot`] under `policy` (the same policy the
    /// snapshotted gate ran — the caller guarantees this via the job-config digest).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's tables disagree on the worker count or it is zero.
    pub fn restore(policy: PolicyKind, snap: &GateSnapshot) -> Self {
        let num_workers = snap.counts.len();
        assert!(num_workers > 0, "need at least one worker");
        let mut restored = Self {
            clocks: ClockTable::restore(snap.counts.clone(), snap.retired.clone()),
            intervals: IntervalTracker::restore(snap.latest.clone(), snap.previous.clone()),
            policy: policy.build(num_workers),
            blocked: snap.blocked.clone(),
            blocked_scratch: Vec::new(),
            stats: snap.stats.clone(),
            staleness: StalenessTracker::restore(
                snap.staleness_buckets.clone(),
                snap.staleness_sums.clone(),
                snap.staleness_pushes.clone(),
                snap.staleness_max,
            ),
            version: snap.version,
            num_workers,
        };
        if !snap.credits.is_empty() {
            restored.policy.restore_credits(
                &snap.credits,
                snap.credits_granted,
                snap.controller_invocations,
            );
        }
        restored
    }

    /// Re-evaluates blocked workers after a clock change, appending those released to
    /// `released`. Preserves the blocking order of the survivors and allocates nothing
    /// once the member scratch is warm.
    fn drain_released_into(
        &mut self,
        now: f64,
        just_blocked: Option<WorkerId>,
        released: &mut Vec<WorkerId>,
    ) {
        std::mem::swap(&mut self.blocked, &mut self.blocked_scratch);
        self.blocked.clear();
        for i in 0..self.blocked_scratch.len() {
            let w = self.blocked_scratch[i];
            // The worker that was blocked by this very push cannot be released by it.
            if Some(w) == just_blocked {
                self.blocked.push(w);
                continue;
            }
            let free = self.policy.may_release(PolicyCtx {
                worker: w,
                now,
                clocks: &self.clocks,
                intervals: &self.intervals,
            });
            if free {
                self.stats.releases += 1;
                released.push(w);
            } else {
                self.blocked.push(w);
            }
        }
        self.blocked_scratch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_alone_reproduces_the_bsp_release_pattern() {
        let mut g = SyncGate::new(3, PolicyKind::Bsp);
        let mut released = Vec::new();
        assert!(!g.on_push(0, 1.0, &mut released).ok_now);
        assert!(!g.on_push(1, 2.0, &mut released).ok_now);
        assert!(released.is_empty());
        let d = g.on_push(2, 3.0, &mut released);
        assert!(d.ok_now);
        released.sort_unstable();
        assert_eq!(released, vec![0, 1]);
        assert_eq!(g.version(), 3);
        assert_eq!(g.stats().blocked_pushes, 2);
        assert_eq!(g.stats().releases, 2);
    }

    #[test]
    fn retiring_releases_waiters_without_any_storage() {
        let mut g = SyncGate::new(2, PolicyKind::Bsp);
        let mut released = Vec::new();
        assert!(!g.on_push(0, 1.0, &mut released).ok_now);
        g.retire_into(1, 2.0, &mut released);
        assert_eq!(released, vec![0]);
        assert!(g.blocked_workers().is_empty());
    }

    #[test]
    fn dssp_gate_grants_extras_like_the_full_server() {
        let mut g = SyncGate::new(2, PolicyKind::Dssp { s_l: 1, r_max: 8 });
        let mut released = Vec::new();
        for (w, t) in [(0, 1.0), (1, 10.0), (0, 2.0), (1, 20.0), (0, 3.0)] {
            g.on_push(w, t, &mut released);
        }
        let d = g.on_push(0, 4.0, &mut released);
        assert!(d.ok_now);
        assert!(d.granted_extra > 0, "fast worker should be granted extras");
        assert_eq!(g.stats().credits_granted, d.granted_extra);
    }
}
