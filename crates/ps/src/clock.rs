//! Worker clocks and iteration-interval measurement.
//!
//! These two structures correspond directly to the bookkeeping in the paper:
//! [`ClockTable`] is the array `t` of Algorithm 1 ("`t_i` stores the number of push
//! requests received from worker `i` so far") and [`IntervalTracker`] is table `A` of
//! Algorithm 2 ("the timestamps of the two latest push requests by all workers"), which
//! is how the server measures iteration intervals from push timestamps (Figure 1).

use serde::{Deserialize, Serialize};

/// Identifier of a worker (dense indices `0..num_workers`).
pub type WorkerId = usize;

/// Per-worker iteration (push) counters held by the server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockTable {
    counts: Vec<u64>,
    retired: Vec<bool>,
}

impl ClockTable {
    /// Creates a table for `num_workers` workers with all counters at zero.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` is zero.
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        Self {
            counts: vec![0; num_workers],
            retired: vec![false; num_workers],
        }
    }

    /// Number of workers tracked.
    pub fn num_workers(&self) -> usize {
        self.counts.len()
    }

    /// Marks a worker as retired: it has finished its share of the training and will
    /// send no further pushes, so it must no longer count as the "slowest" worker when
    /// deciding whether others may proceed.
    pub fn retire(&mut self, worker: WorkerId) {
        self.retired[worker] = true;
    }

    /// Whether the worker is still active (not retired).
    pub fn is_active(&self, worker: WorkerId) -> bool {
        !self.retired[worker]
    }

    /// `(min, max)` over the counters of active (non-retired) workers; falls back to
    /// all workers when every worker has retired so min/max queries stay well-defined.
    /// A single allocation-free pass — this runs on every push.
    fn active_min_max(&self) -> (u64, u64) {
        let mut min = u64::MAX;
        let mut max = 0;
        let mut any_active = false;
        for (&c, &r) in self.counts.iter().zip(&self.retired) {
            if !r {
                any_active = true;
                min = min.min(c);
                max = max.max(c);
            }
        }
        if !any_active {
            min = *self.counts.iter().min().expect("at least one worker");
            max = *self.counts.iter().max().expect("at least one worker");
        }
        (min, max)
    }

    /// The number of pushes received from `worker`.
    ///
    /// # Panics
    ///
    /// Panics if the worker id is out of range.
    pub fn count(&self, worker: WorkerId) -> u64 {
        self.counts[worker]
    }

    /// Increments the push counter for `worker` and returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if the worker id is out of range.
    pub fn increment(&mut self, worker: WorkerId) -> u64 {
        self.counts[worker] += 1;
        self.counts[worker]
    }

    /// The smallest counter value among active workers (the slowest worker's iteration
    /// count).
    pub fn slowest_count(&self) -> u64 {
        self.active_min_max().0
    }

    /// The largest counter value among active workers (the fastest worker's iteration
    /// count).
    pub fn fastest_count(&self) -> u64 {
        self.active_min_max().1
    }

    /// An active worker with the smallest counter (lowest id wins ties).
    pub fn slowest_worker(&self) -> WorkerId {
        let min = self.slowest_count();
        self.counts
            .iter()
            .enumerate()
            .position(|(w, &c)| c == min && (self.is_active(w) || self.retired.iter().all(|&r| r)))
            .expect("non-empty")
    }

    /// An active worker with the largest counter (lowest id wins ties).
    pub fn fastest_worker(&self) -> WorkerId {
        let max = self.fastest_count();
        self.counts
            .iter()
            .enumerate()
            .position(|(w, &c)| c == max && (self.is_active(w) || self.retired.iter().all(|&r| r)))
            .expect("non-empty")
    }

    /// Whether `worker` currently has the (joint) largest counter.
    pub fn is_fastest(&self, worker: WorkerId) -> bool {
        self.counts[worker] == self.fastest_count()
    }

    /// How many iterations `worker` is ahead of the slowest active worker (zero if the
    /// slowest active worker is actually ahead of it).
    pub fn lead_over_slowest(&self, worker: WorkerId) -> u64 {
        self.counts[worker].saturating_sub(self.slowest_count())
    }

    /// Spread between the fastest and slowest workers, i.e. the realized staleness gap.
    pub fn spread(&self) -> u64 {
        self.fastest_count() - self.slowest_count()
    }

    /// All counters, indexed by worker id.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of all counters (total pushes received by the server).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-worker retired flags, indexed by worker id (for checkpointing).
    pub fn retired_flags(&self) -> &[bool] {
        &self.retired
    }

    /// Rebuilds a table from checkpointed counters and retired flags.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty or their lengths differ.
    pub fn restore(counts: Vec<u64>, retired: Vec<bool>) -> Self {
        assert!(!counts.is_empty(), "need at least one worker");
        assert_eq!(counts.len(), retired.len(), "flag/count length mismatch");
        Self { counts, retired }
    }

    /// Sets a worker's counter outright — the admission path for a worker joining (or
    /// rejoining) mid-run at the clock the coordinator assigns it.
    ///
    /// # Panics
    ///
    /// Panics if the worker id is out of range.
    pub fn set_count(&mut self, worker: WorkerId, count: u64) {
        self.counts[worker] = count;
    }
}

/// Table `A` of Algorithm 2: the two most recent push timestamps per worker.
///
/// Times are seconds as `f64`; the simulator supplies virtual time, the threaded runtime
/// supplies wall-clock time relative to the start of training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalTracker {
    latest: Vec<Option<f64>>,
    previous: Vec<Option<f64>>,
}

impl IntervalTracker {
    /// Creates a tracker for `num_workers` workers with no recorded pushes.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` is zero.
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        Self {
            latest: vec![None; num_workers],
            previous: vec![None; num_workers],
        }
    }

    /// Records a push from `worker` at time `now` (Algorithm 2 lines 1–2).
    ///
    /// # Panics
    ///
    /// Panics if the worker id is out of range or time runs backwards for this worker.
    pub fn record_push(&mut self, worker: WorkerId, now: f64) {
        if let Some(prev) = self.latest[worker] {
            assert!(
                now >= prev,
                "push timestamps must be monotonic per worker: {now} < {prev}"
            );
        }
        self.previous[worker] = self.latest[worker];
        self.latest[worker] = Some(now);
    }

    /// The timestamp of the most recent push from `worker`, if any.
    pub fn latest(&self, worker: WorkerId) -> Option<f64> {
        self.latest[worker]
    }

    /// The measured length of the most recent iteration interval of `worker`
    /// (`A[i][0] − A[i][1]`), if two pushes have been observed.
    pub fn interval(&self, worker: WorkerId) -> Option<f64> {
        match (self.latest[worker], self.previous[worker]) {
            (Some(a), Some(b)) => Some(a - b),
            _ => None,
        }
    }

    /// Whether the tracker has a full interval estimate for every worker.
    pub fn all_measured(&self) -> bool {
        (0..self.latest.len()).all(|w| self.interval(w).is_some())
    }

    /// Number of workers tracked.
    pub fn num_workers(&self) -> usize {
        self.latest.len()
    }

    /// The timestamp preceding [`IntervalTracker::latest`] for `worker`, if any (for
    /// checkpointing).
    pub fn previous(&self, worker: WorkerId) -> Option<f64> {
        self.previous[worker]
    }

    /// Rebuilds a tracker from checkpointed timestamp pairs.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty or their lengths differ.
    pub fn restore(latest: Vec<Option<f64>>, previous: Vec<Option<f64>>) -> Self {
        assert!(!latest.is_empty(), "need at least one worker");
        assert_eq!(
            latest.len(),
            previous.len(),
            "timestamp table length mismatch"
        );
        Self { latest, previous }
    }

    /// Forgets both timestamps of `worker` — the eviction path, so a rejoining worker
    /// re-measures its pace from scratch instead of mixing lives.
    ///
    /// # Panics
    ///
    /// Panics if the worker id is out of range.
    pub fn forget(&mut self, worker: WorkerId) {
        self.latest[worker] = None;
        self.previous[worker] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_table_tracks_fastest_and_slowest() {
        let mut t = ClockTable::new(3);
        t.increment(0);
        t.increment(0);
        t.increment(1);
        assert_eq!(t.count(0), 2);
        assert_eq!(t.slowest_count(), 0);
        assert_eq!(t.slowest_worker(), 2);
        assert_eq!(t.fastest_worker(), 0);
        assert!(t.is_fastest(0));
        assert!(!t.is_fastest(1));
        assert_eq!(t.spread(), 2);
        assert_eq!(t.lead_over_slowest(0), 2);
        assert_eq!(t.total(), 3);
    }

    #[test]
    fn ties_resolve_to_lowest_id() {
        let mut t = ClockTable::new(3);
        t.increment(1);
        t.increment(2);
        // workers 1 and 2 tie at 1, worker 0 is slowest
        assert_eq!(t.slowest_worker(), 0);
        assert_eq!(t.fastest_worker(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        ClockTable::new(0);
    }

    #[test]
    fn retired_workers_do_not_count_as_slowest() {
        let mut t = ClockTable::new(3);
        t.increment(0);
        t.increment(0);
        t.increment(1);
        // Worker 2 never pushed; retiring it makes worker 1 the slowest.
        assert_eq!(t.slowest_worker(), 2);
        t.retire(2);
        assert!(!t.is_active(2));
        assert_eq!(t.slowest_worker(), 1);
        assert_eq!(t.slowest_count(), 1);
        assert_eq!(t.lead_over_slowest(0), 1);
        // Retiring everyone falls back to the full table rather than panicking.
        t.retire(0);
        t.retire(1);
        assert_eq!(t.slowest_count(), 0);
    }

    #[test]
    fn lead_is_zero_for_workers_behind_the_slowest_active() {
        let mut t = ClockTable::new(2);
        t.increment(0);
        t.increment(0);
        t.retire(1);
        // Worker 1 (retired, count 0) is behind the slowest active worker (worker 0).
        assert_eq!(t.lead_over_slowest(1), 0);
    }

    #[test]
    fn interval_tracker_measures_push_gaps() {
        let mut a = IntervalTracker::new(2);
        assert!(a.interval(0).is_none());
        a.record_push(0, 1.0);
        assert!(a.interval(0).is_none());
        a.record_push(0, 3.5);
        assert_eq!(a.interval(0), Some(2.5));
        assert_eq!(a.latest(0), Some(3.5));
        assert!(!a.all_measured());
        a.record_push(1, 2.0);
        a.record_push(1, 6.0);
        assert!(a.all_measured());
        assert_eq!(a.interval(1), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn non_monotonic_push_times_panic() {
        let mut a = IntervalTracker::new(1);
        a.record_push(0, 5.0);
        a.record_push(0, 4.0);
    }

    #[test]
    fn interval_uses_two_latest_pushes_only() {
        let mut a = IntervalTracker::new(1);
        a.record_push(0, 0.0);
        a.record_push(0, 10.0);
        a.record_push(0, 11.0);
        assert_eq!(a.interval(0), Some(1.0));
    }
}
