//! The parameter server of Algorithm 1 (server part).

use crate::aggregator::{AggregationMode, GradientBuffer};
use crate::clock::{ClockTable, IntervalTracker, WorkerId};
use crate::gate::SyncGate;
use crate::policy::{PolicyKind, SyncPolicy};
use crate::sharded::ShardedStore;
use crate::staleness::StalenessTracker;
use dssp_nn::Sgd;
use serde::{Deserialize, Serialize};

/// Configuration of a [`ParameterServer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Number of workers connected to the server.
    pub num_workers: usize,
    /// The synchronization policy to apply.
    pub policy: PolicyKind,
    /// How pushed gradients are folded into the weights (DESIGN.md §6 ablation).
    #[serde(default)]
    pub aggregation: AggregationMode,
    /// Number of contiguous key-range shards the parameter storage is split into.
    /// `1` is the classic flat store; larger values exercise the key-sharded storage a
    /// multi-server deployment would use (per-shard version counters are reported by
    /// networked pulls). Bitwise weight evolution is independent of this setting.
    pub shards: usize,
}

impl ServerConfig {
    /// Creates a configuration for `num_workers` workers under `policy`, applying each
    /// push to the weights immediately, with unsharded (single-shard) storage.
    pub fn new(num_workers: usize, policy: PolicyKind) -> Self {
        Self {
            num_workers,
            policy,
            aggregation: AggregationMode::PerPush,
            shards: 1,
        }
    }

    /// Switches the server to the given aggregation mode, returning `self` for chaining.
    pub fn with_aggregation(mut self, aggregation: AggregationMode) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// Splits the parameter storage into `shards` contiguous key ranges, returning
    /// `self` for chaining.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// Outcome of one push request as reported by the allocation-free
/// [`ParameterServer::handle_push_into`] (releases go to a caller-owned buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushDecision {
    /// Whether the pushing worker may start its next iteration immediately
    /// (the `OK` signal of Algorithm 1).
    pub ok_now: bool,
    /// The server weight version (total pushes applied) after this push.
    pub version: u64,
    /// Extra-iteration credits the DSSP controller granted *at this push* (`r*` of
    /// Algorithm 2; always 0 for BSP/ASP/SSP and for pushes that spend an existing
    /// credit).
    pub granted_extra: u64,
    /// The pushing worker's staleness at push time (its clock lead over the slowest
    /// active worker) — the per-push sample behind the staleness histogram, surfaced
    /// here so networked serving loops can export it without re-deriving clock state.
    pub staleness: u64,
}

/// Outcome of one push request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushResult {
    /// Whether the pushing worker may start its next iteration immediately
    /// (the `OK` signal of Algorithm 1).
    pub ok_now: bool,
    /// Other workers that become unblocked as a consequence of this push and should now
    /// receive their deferred `OK`.
    pub released: Vec<WorkerId>,
    /// The server weight version (total pushes applied) after this push.
    pub version: u64,
    /// Extra-iteration credits the DSSP controller granted *at this push* (`r*` of
    /// Algorithm 2; always 0 for BSP/ASP/SSP and for pushes that spend an existing
    /// credit). Networked deployments echo this to the worker in its push reply.
    pub granted_extra: u64,
}

/// Aggregate statistics the server keeps about synchronization behaviour.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Total pushes applied.
    pub pushes: u64,
    /// Number of pushes that resulted in the pusher being blocked.
    pub blocked_pushes: u64,
    /// Number of deferred `OK`s that were eventually sent (worker releases).
    pub releases: u64,
    /// Histogram source: sum of the pusher's lead over the slowest worker at push time.
    pub staleness_sum: u64,
    /// Maximum observed lead over the slowest worker at push time.
    pub staleness_max: u64,
    /// Total extra-iteration credits granted by the DSSP synchronization controller
    /// (sum of every `r*` decision; 0 unless the policy is a DSSP variant).
    pub credits_granted: u64,
    /// Unspent credits returned to the pool when a worker was evicted mid-run (0 in a
    /// fixed-fleet run; only a DSSP variant can have credits to reclaim).
    #[serde(default)]
    pub credits_reclaimed: u64,
}

impl ServerStats {
    /// Mean staleness (lead over the slowest worker) observed at push time.
    pub fn mean_staleness(&self) -> f64 {
        if self.pushes == 0 {
            0.0
        } else {
            self.staleness_sum as f64 / self.pushes as f64
        }
    }

    /// Fraction of pushes whose worker had to wait for a deferred `OK`.
    pub fn blocked_fraction(&self) -> f64 {
        if self.pushes == 0 {
            0.0
        } else {
            self.blocked_pushes as f64 / self.pushes as f64
        }
    }
}

/// The parameter server: holds the globally shared weights, applies pushed gradients via
/// SGD, and gates workers according to the configured [`SyncPolicy`].
///
/// The server is runtime-agnostic — it never blocks a thread itself. `handle_push`
/// reports whether the pushing worker may continue and which previously blocked workers
/// are released; the surrounding runtime (simulator or thread pool) is responsible for
/// actually delivering the `OK` signals.
pub struct ParameterServer {
    store: ShardedStore,
    optimizer: Sgd,
    /// The gating-only half (clocks, intervals, policy, statistics) — the same state a
    /// multi-server group's coordinator runs without any storage.
    gate: SyncGate,
    buffer: GradientBuffer,
    config: ServerConfig,
}

impl std::fmt::Debug for ParameterServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParameterServer")
            .field("params", &self.store.len())
            .field("shards", &self.store.num_shards())
            .field("policy", &self.gate.policy_name())
            .field("version", &self.gate.version())
            .field("blocked", &self.gate.blocked_workers())
            .finish()
    }
}

impl ParameterServer {
    /// Creates a server holding `initial_params` and applying pushes with `optimizer`.
    ///
    /// The parameters live in a [`ShardedStore`] with `config.shards` contiguous key
    /// ranges (1 = flat). Sharding only affects the per-shard version metadata reported
    /// to networked pulls; the weight arithmetic is elementwise and therefore bitwise
    /// identical across shard counts.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero workers or zero shards.
    pub fn new(initial_params: Vec<f32>, optimizer: Sgd, config: ServerConfig) -> Self {
        assert!(config.num_workers > 0, "need at least one worker");
        let gate = SyncGate::new(config.num_workers, config.policy);
        let buffer = GradientBuffer::new(initial_params.len(), config.aggregation);
        Self {
            store: ShardedStore::new(initial_params, config.shards),
            optimizer,
            gate,
            buffer,
            config,
        }
    }

    /// The current globally shared weights (what a `pull` returns).
    pub fn weights(&self) -> &[f32] {
        self.store.as_flat()
    }

    /// The sharded parameter storage (key ranges and per-shard versions).
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Per-shard update versions, in shard order (reported by networked pull replies).
    pub fn shard_versions(&self) -> &[u64] {
        self.store.versions()
    }

    /// The server weight version: the total number of pushes applied so far.
    pub fn version(&self) -> u64 {
        self.gate.version()
    }

    /// The per-worker push counters.
    pub fn clocks(&self) -> &ClockTable {
        self.gate.clocks()
    }

    /// The push-timestamp table (table `A` of Algorithm 2).
    pub fn intervals(&self) -> &IntervalTracker {
        self.gate.intervals()
    }

    /// Synchronization statistics accumulated so far.
    pub fn stats(&self) -> &ServerStats {
        self.gate.stats()
    }

    /// The active policy's display name.
    pub fn policy_name(&self) -> String {
        self.gate.policy_name()
    }

    /// The configuration this server was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Workers currently waiting for a deferred `OK`.
    pub fn blocked_workers(&self) -> &[WorkerId] {
        self.gate.blocked_workers()
    }

    /// Direct access to the policy, for introspection (e.g. DSSP controller decisions).
    pub fn policy(&self) -> &dyn SyncPolicy {
        self.gate.policy()
    }

    /// The gating-only half: clocks, intervals, policy state and statistics. This is
    /// the exact state a multi-server group's coordinator runs stand-alone.
    pub fn gate(&self) -> &SyncGate {
        &self.gate
    }

    /// The server-side optimizer, exposing its momentum state for checkpointing.
    pub fn optimizer(&self) -> &Sgd {
        &self.optimizer
    }

    /// Rebuilds a server from checkpointed parts: the parameter store (weights, shard
    /// layout, and per-shard versions), the optimizer (with its momentum velocity and
    /// schedule epoch), and the gate (clocks, intervals, policy credits, statistics).
    ///
    /// The gradient aggregation buffer restarts empty: checkpoints are taken between
    /// pushes, where the default per-push aggregation never holds pending state. A
    /// buffered-aggregation run that checkpoints mid-buffer loses (only) the unapplied
    /// partial buffer, exactly as a crash would.
    ///
    /// # Panics
    ///
    /// Panics if the store's shard count disagrees with `config.shards`.
    pub fn restore(
        store: ShardedStore,
        optimizer: Sgd,
        gate: SyncGate,
        config: ServerConfig,
    ) -> Self {
        assert_eq!(
            store.num_shards(),
            config.shards,
            "restored store shard count disagrees with the configuration"
        );
        let buffer = GradientBuffer::new(store.len(), config.aggregation);
        Self {
            store,
            optimizer,
            gate,
            buffer,
            config,
        }
    }

    /// Informs the server-side optimizer of the current epoch so learning-rate schedules
    /// can take effect.
    pub fn set_epoch(&mut self, epoch: usize) {
        self.optimizer.set_epoch(epoch);
    }

    /// Handles a push request from `worker` carrying mini-batch gradients, at time
    /// `now` (seconds). Allocating convenience over
    /// [`ParameterServer::handle_push_into`].
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the parameter vector length or the worker id
    /// is out of range.
    pub fn handle_push(&mut self, worker: WorkerId, grads: &[f32], now: f64) -> PushResult {
        let mut released = Vec::new();
        let decision = self.handle_push_into(worker, grads, now, &mut released);
        PushResult {
            ok_now: decision.ok_now,
            released,
            version: decision.version,
            granted_extra: decision.granted_extra,
        }
    }

    /// Handles a push request from `worker` carrying mini-batch gradients, at time
    /// `now` (seconds), appending any released workers to the caller-owned `released`
    /// buffer (not cleared first).
    ///
    /// The gradients are applied to the global weights immediately (Algorithm 1, server
    /// line 2), the worker's clock is incremented, and the policy decides whether the
    /// worker gets its `OK` now or must wait. This is the networked server's hot path:
    /// with warm buffers it performs no heap allocation (gradient aggregation
    /// accumulates in place, the release scan reuses member scratch).
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the parameter vector length or the worker id
    /// is out of range.
    pub fn handle_push_into(
        &mut self,
        worker: WorkerId,
        grads: &[f32],
        now: f64,
        released: &mut Vec<WorkerId>,
    ) -> PushDecision {
        assert_eq!(
            grads.len(),
            self.store.len(),
            "gradient length {} does not match parameter length {}",
            grads.len(),
            self.store.len()
        );
        assert!(worker < self.config.num_workers, "worker id out of range");

        // Fold the push into the weights according to the aggregation mode: per-push
        // aggregation applies the pushed gradient itself (no copy), buffered
        // aggregation applies the in-place buffer average once enough accumulated.
        if self.buffer.add_in_place(grads) {
            let update = self.buffer.pending_update().unwrap_or(grads);
            self.optimizer.step(self.store.flat_mut(), update);
            self.store.bump_all_versions();
        }
        self.gate.on_push(worker, now, released)
    }

    /// Copies the current weights into `out` (cleared first) — what a worker's `pull`
    /// request returns before it overwrites its local replica. A bounds-checked memcpy
    /// into the caller-owned buffer; nothing is allocated once `out` is warm.
    pub fn pull_into(&self, out: &mut Vec<f32>) {
        self.store.pull_into(out);
    }

    /// The incremental pull: copies only the shards stale relative to the client's
    /// `known` version vector into caller-owned buffers (see
    /// [`ShardedStore::pull_delta_into`]); returns the number of shards shipped. The
    /// TCP transport bypasses this copy entirely — it encodes stale ranges straight
    /// from [`ParameterServer::store`] into the frame buffer via its `PullView` — but
    /// this is the storage-level form for substrates that need owned buffers.
    ///
    /// # Panics
    ///
    /// Panics if `known` has the wrong length (check
    /// [`ShardedStore::delta_compatible`] first).
    pub fn pull_delta_into(
        &self,
        known: &[u64],
        meta: &mut Vec<(u32, u64)>,
        weights: &mut Vec<f32>,
    ) -> usize {
        self.store.pull_delta_into(known, meta, weights)
    }

    /// Marks a worker as retired (it has completed its configured epochs and will push
    /// no more). Retired workers no longer count as the "slowest" worker, so workers
    /// that were waiting on them can be released; any such releases are returned.
    pub fn retire_worker(&mut self, worker: WorkerId, now: f64) -> Vec<WorkerId> {
        let mut released = Vec::new();
        self.gate.retire_into(worker, now, &mut released);
        released
    }

    /// Evicts a worker that died mid-run: reclaims its unspent DSSP credits into
    /// [`ServerStats::credits_reclaimed`], forgets its pace measurements, retires its
    /// clock, and releases anyone who was blocked on it. Returns the reclaimed credit
    /// count and the released workers.
    pub fn evict_worker(&mut self, worker: WorkerId, now: f64) -> (u64, Vec<WorkerId>) {
        let mut released = Vec::new();
        let reclaimed = self.gate.evict_into(worker, now, &mut released);
        (reclaimed, released)
    }

    /// The per-push staleness distribution observed so far.
    pub fn staleness(&self) -> &StalenessTracker {
        self.gate.staleness()
    }

    /// Applies whatever gradients are still sitting in the aggregation buffer (a no-op
    /// under per-push aggregation). Call at the end of training so buffered aggregation
    /// does not silently drop the trailing partial buffer.
    pub fn flush_aggregation(&mut self) {
        if self.buffer.flush_in_place() {
            let update = self
                .buffer
                .pending_update()
                .expect("flush_in_place returned true");
            self.optimizer.step(self.store.flat_mut(), update);
            self.store.bump_all_versions();
        }
    }

    /// Number of weight updates actually applied (equals [`ParameterServer::version`]
    /// under per-push aggregation, smaller under buffered aggregation).
    pub fn updates_applied(&self) -> u64 {
        self.buffer.emitted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssp_nn::{LrSchedule, SgdConfig};

    fn server(policy: PolicyKind, workers: usize, dims: usize) -> ParameterServer {
        let sgd = Sgd::new(
            SgdConfig {
                schedule: LrSchedule::constant(1.0),
                momentum: 0.0,
                weight_decay: 0.0,
            },
            dims,
        );
        ParameterServer::new(vec![0.0; dims], sgd, ServerConfig::new(workers, policy))
    }

    #[test]
    fn push_applies_gradient_to_weights() {
        let mut s = server(PolicyKind::Asp, 1, 3);
        s.handle_push(0, &[1.0, 2.0, 3.0], 0.0);
        assert_eq!(s.weights(), &[-1.0, -2.0, -3.0]);
        assert_eq!(s.version(), 1);
        let mut pulled = Vec::new();
        s.pull_into(&mut pulled);
        assert_eq!(pulled, vec![-1.0, -2.0, -3.0]);
    }

    #[test]
    fn bsp_releases_waiters_when_last_worker_pushes() {
        let mut s = server(PolicyKind::Bsp, 3, 1);
        let r0 = s.handle_push(0, &[0.1], 1.0);
        assert!(!r0.ok_now);
        let r1 = s.handle_push(1, &[0.1], 2.0);
        assert!(!r1.ok_now);
        assert!(r1.released.is_empty());
        let r2 = s.handle_push(2, &[0.1], 3.0);
        assert!(r2.ok_now);
        let mut released = r2.released.clone();
        released.sort_unstable();
        assert_eq!(released, vec![0, 1]);
        assert!(s.blocked_workers().is_empty());
    }

    #[test]
    fn asp_never_blocks_any_worker() {
        let mut s = server(PolicyKind::Asp, 2, 1);
        for i in 0..20 {
            let r = s.handle_push(0, &[0.0], i as f64);
            assert!(r.ok_now);
            assert!(r.released.is_empty());
        }
        assert_eq!(s.stats().blocked_pushes, 0);
        assert_eq!(s.stats().staleness_max, 20);
    }

    #[test]
    fn ssp_blocks_beyond_threshold_and_releases_after_catch_up() {
        let mut s = server(PolicyKind::Ssp { s: 1 }, 2, 1);
        assert!(s.handle_push(0, &[0.0], 1.0).ok_now);
        let r = s.handle_push(0, &[0.0], 2.0);
        assert!(!r.ok_now, "lead 2 exceeds threshold 1");
        assert_eq!(s.blocked_workers(), &[0]);
        // Worker 1 pushes once: lead of worker 0 drops to 1, so it gets released.
        let r = s.handle_push(1, &[0.0], 3.0);
        assert!(r.ok_now);
        assert_eq!(r.released, vec![0]);
        assert_eq!(s.stats().releases, 1);
    }

    #[test]
    fn stats_track_staleness_and_blocking() {
        let mut s = server(PolicyKind::Ssp { s: 0 }, 2, 1);
        s.handle_push(0, &[0.0], 1.0); // lead 1, blocked
        s.handle_push(1, &[0.0], 2.0); // lead 0, ok + releases worker 0
        let st = s.stats();
        assert_eq!(st.pushes, 2);
        assert_eq!(st.blocked_pushes, 1);
        assert_eq!(st.releases, 1);
        assert!((st.mean_staleness() - 0.5).abs() < 1e-9);
        assert!((st.blocked_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn epoch_forwarding_changes_learning_rate() {
        let sgd = Sgd::new(
            SgdConfig {
                schedule: LrSchedule::step(1.0, 0.1, &[1]),
                momentum: 0.0,
                weight_decay: 0.0,
            },
            1,
        );
        let mut s = ParameterServer::new(vec![0.0], sgd, ServerConfig::new(1, PolicyKind::Asp));
        s.handle_push(0, &[1.0], 0.0);
        assert!((s.weights()[0] + 1.0).abs() < 1e-6);
        s.set_epoch(1);
        s.handle_push(0, &[1.0], 1.0);
        assert!((s.weights()[0] + 1.1).abs() < 1e-6);
    }

    #[test]
    fn retiring_a_finished_worker_releases_the_waiters() {
        // Two-worker BSP: worker 0 pushes and waits for worker 1. If worker 1 has
        // finished training, retiring it must release worker 0.
        let mut s = server(PolicyKind::Bsp, 2, 1);
        let r = s.handle_push(0, &[0.0], 1.0);
        assert!(!r.ok_now);
        let released = s.retire_worker(1, 2.0);
        assert_eq!(released, vec![0]);
        assert!(s.blocked_workers().is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match parameter length")]
    fn wrong_gradient_length_panics() {
        let mut s = server(PolicyKind::Asp, 1, 2);
        s.handle_push(0, &[1.0], 0.0);
    }

    #[test]
    fn buffered_aggregation_applies_the_average_once_the_buffer_fills() {
        let sgd = Sgd::new(
            SgdConfig {
                schedule: LrSchedule::constant(1.0),
                momentum: 0.0,
                weight_decay: 0.0,
            },
            1,
        );
        let config = ServerConfig::new(2, PolicyKind::Asp)
            .with_aggregation(AggregationMode::Buffered { capacity: 2 });
        let mut s = ParameterServer::new(vec![0.0], sgd, config);
        s.handle_push(0, &[1.0], 0.0);
        // The first push is buffered: weights unchanged, but the push still counts.
        assert_eq!(s.weights(), &[0.0]);
        assert_eq!(s.version(), 1);
        assert_eq!(s.updates_applied(), 0);
        s.handle_push(1, &[3.0], 1.0);
        // The buffer emits the average (2.0), applied with lr 1.0.
        assert_eq!(s.weights(), &[-2.0]);
        assert_eq!(s.updates_applied(), 1);
        // A trailing partial buffer is applied by the explicit flush.
        s.handle_push(0, &[4.0], 2.0);
        assert_eq!(s.weights(), &[-2.0]);
        s.flush_aggregation();
        assert_eq!(s.weights(), &[-6.0]);
        assert_eq!(s.updates_applied(), 2);
    }

    #[test]
    fn staleness_histogram_matches_the_aggregate_stats() {
        let mut s = server(PolicyKind::Asp, 2, 1);
        for i in 0..5 {
            s.handle_push(0, &[0.0], i as f64);
        }
        s.handle_push(1, &[0.0], 5.0);
        let hist = s.staleness();
        assert_eq!(hist.total_pushes(), s.stats().pushes);
        assert_eq!(hist.max(), s.stats().staleness_max);
        assert!((hist.mean() - s.stats().mean_staleness()).abs() < 1e-12);
        assert_eq!(hist.worker_pushes(0), 5);
        assert_eq!(hist.worker_pushes(1), 1);
    }

    #[test]
    fn sharded_storage_evolves_bitwise_identically_to_flat_storage() {
        // The same push sequence against a 1-shard and a 4-shard server must produce
        // exactly the same weights at every step — sharding is metadata, not math.
        let make = |shards: usize| {
            let sgd = Sgd::new(
                SgdConfig {
                    schedule: LrSchedule::step(0.3, 0.5, &[1]),
                    momentum: 0.9,
                    weight_decay: 0.01,
                },
                9,
            );
            let initial: Vec<f32> = (0..9).map(|i| (i as f32).sin()).collect();
            ParameterServer::new(
                initial,
                sgd,
                ServerConfig::new(2, PolicyKind::Asp).with_shards(shards),
            )
        };
        let mut flat = make(1);
        let mut sharded = make(4);
        assert_eq!(sharded.store().num_shards(), 4);
        for i in 0..12u64 {
            let grads: Vec<f32> = (0..9)
                .map(|j| ((i as f32) * 0.3 + j as f32).cos())
                .collect();
            let worker = (i % 2) as usize;
            flat.handle_push(worker, &grads, i as f64);
            sharded.handle_push(worker, &grads, i as f64);
            assert_eq!(flat.weights(), sharded.weights(), "diverged at push {i}");
        }
        let (mut flat_pull, mut sharded_pull) = (Vec::new(), Vec::new());
        flat.pull_into(&mut flat_pull);
        sharded.pull_into(&mut sharded_pull);
        assert_eq!(flat_pull, sharded_pull);
        // Every shard saw every whole-model update.
        assert_eq!(sharded.shard_versions(), &[12, 12, 12, 12]);
        assert_eq!(flat.shard_versions(), &[12]);
        // A server-level delta pull against a half-stale cache ships the stale half.
        let (mut meta, mut delta_weights) = (Vec::new(), Vec::new());
        let shipped = sharded.pull_delta_into(&[12, 11, 12, 11], &mut meta, &mut delta_weights);
        assert_eq!(shipped, 2);
        assert_eq!(meta, vec![(1, 12), (3, 12)]);
        let store = sharded.store();
        assert_eq!(
            delta_weights,
            [store.shard(1), store.shard(3)].concat(),
            "delta weights are the stale shards' ranges, in shard order"
        );
    }

    #[test]
    fn push_result_reports_dssp_controller_grants() {
        let mut s = server(PolicyKind::Dssp { s_l: 1, r_max: 8 }, 2, 1);
        // Build interval history: worker 0 pushes every 1 s, worker 1 every 10 s.
        assert_eq!(s.handle_push(0, &[0.0], 1.0).granted_extra, 0);
        assert_eq!(s.handle_push(1, &[0.0], 10.0).granted_extra, 0);
        assert_eq!(s.handle_push(0, &[0.0], 2.0).granted_extra, 0);
        assert_eq!(s.handle_push(1, &[0.0], 20.0).granted_extra, 0);
        assert_eq!(s.handle_push(0, &[0.0], 3.0).granted_extra, 0); // lead 1 <= s_l
        let r = s.handle_push(0, &[0.0], 4.0); // lead 2 > s_l: controller consulted
        assert!(r.ok_now);
        assert!(r.granted_extra > 0, "fast worker should be granted extras");
        assert_eq!(s.stats().credits_granted, r.granted_extra);
    }

    #[test]
    fn non_dssp_policies_never_grant_extras() {
        let mut s = server(PolicyKind::Ssp { s: 1 }, 2, 1);
        for i in 0..6 {
            let r = s.handle_push(i % 2, &[0.0], i as f64);
            assert_eq!(r.granted_extra, 0);
        }
        assert_eq!(s.stats().credits_granted, 0);
    }

    #[test]
    fn debug_output_mentions_policy() {
        let s = server(PolicyKind::Dssp { s_l: 3, r_max: 12 }, 2, 1);
        assert!(format!("{s:?}").contains("DSSP"));
        assert_eq!(s.policy_name(), "DSSP s=3, r=12");
        assert_eq!(s.config().num_workers, 2);
    }
}
