//! Staleness accounting: the distribution of how far ahead of the slowest worker each
//! push was made.
//!
//! The paper reasons about staleness through its theory (Theorems 1–2 bound the regret
//! in terms of the threshold) and through aggregate observations ("a larger threshold of
//! SSP incurs more staler gradients"). The [`StalenessTracker`] records the full
//! per-push distribution so experiments can report not just the mean and maximum but the
//! whole histogram and its percentiles, which is what the ablation benches compare
//! across paradigms.

use crate::clock::WorkerId;
use serde::{Deserialize, Serialize};

/// A histogram of per-push staleness (the pushing worker's lead over the slowest active
/// worker at push time), with per-worker totals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StalenessTracker {
    /// `buckets[s]` counts pushes made with staleness exactly `s`; the last bucket
    /// absorbs everything at or above `buckets.len() - 1`.
    buckets: Vec<u64>,
    /// Per-worker sum of staleness values, for per-worker means.
    per_worker_sum: Vec<u64>,
    /// Per-worker push counts.
    per_worker_pushes: Vec<u64>,
    /// Largest staleness observed (even if it fell into the overflow bucket).
    max_seen: u64,
}

impl StalenessTracker {
    /// Creates a tracker for `num_workers` workers with `max_bucket + 1` histogram
    /// buckets (staleness values above `max_bucket` share the final bucket).
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` is zero.
    pub fn new(num_workers: usize, max_bucket: u64) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        Self {
            buckets: vec![0; (max_bucket + 1) as usize],
            per_worker_sum: vec![0; num_workers],
            per_worker_pushes: vec![0; num_workers],
            max_seen: 0,
        }
    }

    /// Records one push from `worker` with the given staleness (lead over the slowest
    /// worker at push time).
    ///
    /// # Panics
    ///
    /// Panics if the worker id is out of range.
    pub fn record(&mut self, worker: WorkerId, staleness: u64) {
        let idx = (staleness as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.per_worker_sum[worker] += staleness;
        self.per_worker_pushes[worker] += 1;
        self.max_seen = self.max_seen.max(staleness);
    }

    /// Total number of pushes recorded.
    pub fn total_pushes(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The histogram counts, indexed by staleness (the final bucket is an overflow
    /// bucket).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The largest staleness value ever recorded.
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// Mean staleness across all recorded pushes.
    pub fn mean(&self) -> f64 {
        let total = self.total_pushes();
        if total == 0 {
            return 0.0;
        }
        let sum: u64 = self.per_worker_sum.iter().sum();
        sum as f64 / total as f64
    }

    /// Mean staleness of one worker's pushes.
    pub fn worker_mean(&self, worker: WorkerId) -> f64 {
        if self.per_worker_pushes[worker] == 0 {
            0.0
        } else {
            self.per_worker_sum[worker] as f64 / self.per_worker_pushes[worker] as f64
        }
    }

    /// Number of pushes recorded for one worker.
    pub fn worker_pushes(&self, worker: WorkerId) -> u64 {
        self.per_worker_pushes[worker]
    }

    /// The smallest staleness value `s` such that at least `q` (in `[0, 1]`) of all
    /// recorded pushes had staleness at most `s`. Returns 0 when nothing was recorded.
    ///
    /// Values that fell into the overflow bucket are reported at the overflow index, so
    /// high quantiles are a lower bound when `max()` exceeds the bucket range.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total = self.total_pushes();
        if total == 0 {
            return 0;
        }
        let threshold = (q * total as f64).ceil() as u64;
        let mut cumulative = 0;
        for (s, &count) in self.buckets.iter().enumerate() {
            cumulative += count;
            if cumulative >= threshold {
                return s as u64;
            }
        }
        (self.buckets.len() - 1) as u64
    }

    /// Fraction of pushes whose staleness was zero (fresh updates).
    pub fn fresh_fraction(&self) -> f64 {
        let total = self.total_pushes();
        if total == 0 {
            0.0
        } else {
            self.buckets[0] as f64 / total as f64
        }
    }

    /// Per-worker sums of recorded staleness values (for checkpointing).
    pub fn per_worker_sums(&self) -> &[u64] {
        &self.per_worker_sum
    }

    /// Per-worker push counts (for checkpointing).
    pub fn per_worker_push_counts(&self) -> &[u64] {
        &self.per_worker_pushes
    }

    /// Rebuilds a tracker from checkpointed histogram and per-worker tables.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is empty, the per-worker tables are empty, or their lengths
    /// differ.
    pub fn restore(
        buckets: Vec<u64>,
        per_worker_sum: Vec<u64>,
        per_worker_pushes: Vec<u64>,
        max_seen: u64,
    ) -> Self {
        assert!(!buckets.is_empty(), "need at least one bucket");
        assert!(!per_worker_sum.is_empty(), "need at least one worker");
        assert_eq!(
            per_worker_sum.len(),
            per_worker_pushes.len(),
            "per-worker table length mismatch"
        );
        Self {
            buckets,
            per_worker_sum,
            per_worker_pushes,
            max_seen,
        }
    }

    /// Renders the histogram as a small markdown table (staleness, count, share).
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let total = self.total_pushes().max(1);
        let mut out = String::from("| staleness | pushes | share |\n|---|---|---|\n");
        for (s, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let label = if s == self.buckets.len() - 1 && self.max_seen as usize >= s {
                format!(">={s}")
            } else {
                s.to_string()
            };
            let _ = writeln!(
                out,
                "| {label} | {count} | {:.1}% |",
                100.0 * count as f64 / total as f64
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarises_staleness() {
        let mut t = StalenessTracker::new(2, 8);
        t.record(0, 0);
        t.record(0, 2);
        t.record(1, 4);
        t.record(1, 0);
        assert_eq!(t.total_pushes(), 4);
        assert_eq!(t.max(), 4);
        assert!((t.mean() - 1.5).abs() < 1e-12);
        assert!((t.worker_mean(0) - 1.0).abs() < 1e-12);
        assert!((t.worker_mean(1) - 2.0).abs() < 1e-12);
        assert_eq!(t.worker_pushes(0), 2);
        assert!((t.fresh_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overflow_bucket_absorbs_large_values_but_max_is_exact() {
        let mut t = StalenessTracker::new(1, 4);
        t.record(0, 100);
        assert_eq!(t.buckets()[4], 1);
        assert_eq!(t.max(), 100);
    }

    #[test]
    fn quantiles_walk_the_histogram() {
        let mut t = StalenessTracker::new(1, 10);
        for s in [0u64, 0, 1, 1, 1, 2, 3, 5, 5, 9] {
            t.record(0, s);
        }
        assert_eq!(t.quantile(0.0), 0);
        assert_eq!(t.quantile(0.2), 0);
        assert_eq!(t.quantile(0.5), 1);
        assert_eq!(t.quantile(0.9), 5);
        assert_eq!(t.quantile(1.0), 9);
    }

    #[test]
    fn empty_tracker_is_well_behaved() {
        let t = StalenessTracker::new(3, 4);
        assert_eq!(t.total_pushes(), 0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.quantile(0.5), 0);
        assert_eq!(t.fresh_fraction(), 0.0);
        assert_eq!(t.worker_mean(2), 0.0);
    }

    #[test]
    fn markdown_table_lists_only_populated_buckets() {
        let mut t = StalenessTracker::new(1, 4);
        t.record(0, 0);
        t.record(0, 3);
        let md = t.to_markdown();
        assert!(md.contains("| 0 | 1 |"));
        assert!(md.contains("| 3 | 1 |"));
        assert!(!md.contains("| 2 |"));
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn out_of_range_quantile_panics() {
        StalenessTracker::new(1, 4).quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        StalenessTracker::new(0, 4);
    }
}
