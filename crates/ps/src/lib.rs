//! Parameter-server core for the DSSP reproduction.
//!
//! This crate implements the paper's primary contribution and the synchronization
//! machinery it sits on:
//!
//! * [`ClockTable`] — the array `t` of Algorithm 1 (push requests received per worker);
//! * [`IntervalTracker`] — table `A` of Algorithm 2 (the two most recent push
//!   timestamps per worker, from which iteration intervals are measured, Figure 1);
//! * [`SyncPolicy`] — the server-side decision logic with the four paradigms:
//!   [`Bsp`], [`Asp`], [`Ssp`] and [`Dssp`];
//! * [`SyncController`] — Algorithm 2: the DSSP synchronization controller that
//!   simulates the next `r_max` iterations of the fastest and slowest workers and picks
//!   the number of extra iterations `r*` minimizing the predicted waiting time
//!   (Figure 2);
//! * [`ParameterServer`] — the server of Algorithm 1: applies pushed gradients to the
//!   globally shared weights via SGD and gates each worker's next iteration with an
//!   `OK` decision;
//! * [`theory`] — numeric helpers for the regret bounds of Theorems 1 and 2.
//!
//! The crate is runtime-agnostic: it contains no threads and no virtual clock. Both the
//! discrete-event simulator (`dssp-sim`) and the multi-threaded runtime
//! (`dssp-core::runtime`) drive the same `ParameterServer`, so the decision logic under
//! test is identical in both settings.
//!
//! # Example
//!
//! ```
//! use dssp_ps::{ParameterServer, PolicyKind, ServerConfig};
//! use dssp_nn::{Sgd, SgdConfig};
//!
//! let config = ServerConfig::new(2, PolicyKind::Dssp { s_l: 3, r_max: 12 });
//! let sgd = Sgd::new(SgdConfig::default(), 4);
//! let mut server = ParameterServer::new(vec![0.0; 4], sgd, config);
//! let result = server.handle_push(0, &[0.1, 0.1, 0.1, 0.1], 1.0);
//! assert!(result.ok_now);
//! ```

#![deny(missing_docs)]

mod aggregator;
mod checkpoint;
mod clock;
mod controller;
mod gate;
mod policy;
mod server;
mod sharded;
mod staleness;
pub mod theory;

pub use aggregator::{AggregationMode, GradientBuffer};
pub use checkpoint::{
    coord_checkpoint_name, server_checkpoint_name, shard_checkpoint_name, Checkpoint,
    CheckpointError, LayoutSnapshot, StoreSnapshot, CHECKPOINT_MAGIC, CHECKPOINT_TMP_SUFFIX,
    CHECKPOINT_VERSION, MAX_CHECKPOINT_LEN,
};
pub use clock::{ClockTable, IntervalTracker, WorkerId};
pub use controller::{ControllerDecision, IntervalEstimator, SyncController};
pub use gate::{GateSnapshot, SyncGate};
pub use policy::{Asp, Bsp, Dssp, PolicyCtx, PolicyKind, Ssp, SyncPolicy};
pub use server::{ParameterServer, PushDecision, PushResult, ServerConfig, ServerStats};
pub use sharded::{delta_compatible, shard_range, ShardedStore};
pub use staleness::StalenessTracker;
