//! Golden-file test for the fleet-health analyzer: a recorded events directory
//! (`tests/fixtures/analyze/`, six workers × two rounds plus the server's push
//! stream) with a hand-computed breakdown. Worker 5 waits 5 000 µs at the DSSP
//! gate in round 2 and must come out flagged as the straggler; every other
//! number in the report is asserted exactly.

use dssp_core::analyze::{analyze_dir, Analysis};
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("analyze")
}

fn golden() -> Analysis {
    analyze_dir(&fixture_dir()).expect("fixture dir reads")
}

#[test]
fn golden_round_breakdown_is_exact() {
    let a = golden();
    assert_eq!(a.events, 67);
    assert_eq!(a.rounds.len(), 2);

    // Round 1: every worker computed 300 µs (pull span-end → push span-begin) and
    // spent 150 µs on comms (100 µs initial pull + 50 µs push span), no gate wait.
    let r1 = &a.rounds[0];
    assert_eq!(r1.iteration, 1);
    assert_eq!(r1.workers.len(), 6);
    for w in &r1.workers {
        assert_eq!(
            (w.compute_us, w.comms_us, w.gate_wait_us),
            (300, 150, 0),
            "round 1 rank {}",
            w.rank
        );
    }
    assert_eq!(r1.wall_us(), 450);

    // Round 2: 300 µs compute, 50 µs comms; worker 5's 5 000 µs gate wait is
    // split out of its 5 050 µs push span.
    let r2 = &a.rounds[1];
    assert_eq!(r2.iteration, 2);
    for w in &r2.workers {
        let want_wait = if w.rank == 5 { 5_000 } else { 0 };
        assert_eq!(
            (w.compute_us, w.comms_us, w.gate_wait_us),
            (300, 50, want_wait),
            "round 2 rank {}",
            w.rank
        );
    }
    assert_eq!(r2.wall_us(), 5_350);
}

#[test]
fn golden_straggler_is_worker_five() {
    let a = golden();
    assert_eq!(a.workers.len(), 6);
    let flagged: Vec<u32> = a
        .workers
        .iter()
        .filter(|w| w.straggler)
        .map(|w| w.rank)
        .collect();
    assert_eq!(flagged, vec![5]);
    // One 5 000 µs outlier among six: mean 833.3, σ 1 863.4 → z = √5 ≈ 2.236.
    let w5 = a.workers.iter().find(|w| w.rank == 5).unwrap();
    assert!(
        (w5.z_score - 5f64.sqrt()).abs() < 1e-9,
        "z = {}",
        w5.z_score
    );
    assert_eq!(
        (w5.rounds, w5.compute_us, w5.comms_us, w5.gate_wait_us),
        (2, 600, 200, 5_000)
    );
    for w in a.workers.iter().filter(|w| w.rank != 5) {
        assert_eq!(
            (w.rounds, w.compute_us, w.comms_us, w.gate_wait_us),
            (2, 600, 200, 0),
            "rank {}",
            w.rank
        );
        assert!(w.z_score < 0.0, "rank {} z = {}", w.rank, w.z_score);
    }
}

#[test]
fn golden_push_latency_and_staleness() {
    let a = golden();
    // Twelve pushes join across roles: six at 20 µs (round 1), six at 30 µs
    // (round 2). Nearest-rank p50 over the sorted sample lands on 30.
    let l = a.push_latency.expect("pushes joined");
    assert_eq!(
        (l.count, l.p50_us, l.p90_us, l.p99_us, l.max_us),
        (12, 30, 30, 30, 30)
    );
    // Rounds fully interleave, so the replayed staleness is 0 throughout.
    assert_eq!(a.staleness_cdf, vec![(0, 1.0)]);
    for r in &a.rounds {
        assert!(r.mean_staleness.abs() < 1e-9);
    }
    // With only two rounds no wall time can clear mean + 2σ.
    assert!(a.slow_rounds.is_empty());
}

#[test]
fn golden_report_renders_and_json_parses() {
    let a = golden();
    let text = a.to_text();
    assert!(text.contains("6 workers, 2 rounds"), "{text}");
    assert!(text.contains("stragglers: [5]"), "{text}");
    let json = a.to_json();
    let v = dssp_core::json::parse(&json).expect("valid JSON");
    assert_eq!(v.get("events").and_then(|e| e.as_u64()), Some(67));
}
