//! Experiment configuration and execution on the simulator.

use dssp_cluster::ClusterSpec;
use dssp_data::{SyntheticImageSpec, SyntheticVectorSpec};
use dssp_nn::models::ModelSpec;
use dssp_nn::{LrSchedule, SgdConfig};
use dssp_ps::PolicyKind;
use dssp_sim::{DataSpec, RunTrace, SimConfig, Simulation};

/// A fully configured distributed-training experiment.
///
/// `Experiment` is a thin, validated wrapper over [`dssp_sim::SimConfig`]; use
/// [`ExperimentBuilder`] to construct one fluently.
#[derive(Debug, Clone)]
pub struct Experiment {
    config: SimConfig,
}

impl Experiment {
    /// Wraps an explicit simulator configuration.
    pub fn from_config(config: SimConfig) -> Self {
        Self { config }
    }

    /// The underlying simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the experiment on the discrete-event simulator.
    pub fn run(&self) -> RunTrace {
        Simulation::new(self.config.clone()).run()
    }

    /// Runs the same experiment once per policy, returning the traces in the same order.
    ///
    /// Everything except the synchronization paradigm (data, initial weights, cluster,
    /// jitter seeds) is held fixed, matching the paper's methodology of comparing
    /// paradigms on identical workloads.
    pub fn compare(&self, policies: &[PolicyKind]) -> Vec<RunTrace> {
        policies
            .iter()
            .map(|&policy| {
                let mut config = self.config.clone();
                config.policy = policy;
                Simulation::new(config).run()
            })
            .collect()
    }
}

/// Fluent builder for [`Experiment`].
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    config: SimConfig,
}

impl ExperimentBuilder {
    /// Starts from an explicit simulator configuration.
    pub fn from_config(config: SimConfig) -> Self {
        Self { config }
    }

    /// A small MLP on a synthetic vector task over the heterogeneous two-worker cluster:
    /// quick enough for tests and the quickstart example.
    pub fn small_mlp() -> Self {
        let config = SimConfig {
            model: ModelSpec::Mlp {
                input_dim: 32,
                hidden: vec![32],
                classes: 10,
            },
            data: DataSpec::Vector(SyntheticVectorSpec {
                classes: 10,
                dim: 32,
                train_size: 1_000,
                test_size: 250,
                noise_std: 0.8,
            }),
            cluster: ClusterSpec::heterogeneous_pair(),
            policy: PolicyKind::Dssp { s_l: 3, r_max: 12 },
            batch_size: 32,
            epochs: 3,
            sgd: SgdConfig {
                schedule: LrSchedule::constant(0.05),
                momentum: 0.9,
                weight_decay: 0.0,
            },
            seed: 42,
            eval_every_pushes: 16,
            eval_max_examples: 250,
            cost_override: None,
        };
        Self { config }
    }

    /// Sets the model architecture.
    pub fn model(mut self, model: ModelSpec) -> Self {
        self.config.model = model;
        self
    }

    /// Trains on a synthetic image dataset.
    pub fn image_data(mut self, spec: SyntheticImageSpec) -> Self {
        self.config.data = DataSpec::Image(spec);
        self
    }

    /// Trains on a synthetic flat-vector dataset.
    pub fn vector_data(mut self, spec: SyntheticVectorSpec) -> Self {
        self.config.data = DataSpec::Vector(spec);
        self
    }

    /// Sets the cluster (devices, link, slowdowns).
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.config.cluster = cluster;
        self
    }

    /// Sets the synchronization paradigm.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the mini-batch size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.batch_size = batch_size;
        self
    }

    /// Sets the number of passes each worker makes over its shard.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.config.epochs = epochs;
        self
    }

    /// Sets the server-side SGD configuration.
    pub fn sgd(mut self, sgd: SgdConfig) -> Self {
        self.config.sgd = sgd;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets how often (in applied pushes) test accuracy is sampled.
    pub fn eval_every(mut self, pushes: u64) -> Self {
        self.config.eval_every_pushes = pushes;
        self
    }

    /// Builds the experiment without running it.
    pub fn build(self) -> Experiment {
        Experiment {
            config: self.config,
        }
    }

    /// Builds and runs the experiment.
    pub fn run(self) -> RunTrace {
        self.build().run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrips_settings() {
        let exp = ExperimentBuilder::small_mlp()
            .policy(PolicyKind::Bsp)
            .batch_size(16)
            .epochs(1)
            .seed(7)
            .eval_every(5)
            .build();
        assert_eq!(exp.config().policy, PolicyKind::Bsp);
        assert_eq!(exp.config().batch_size, 16);
        assert_eq!(exp.config().epochs, 1);
        assert_eq!(exp.config().seed, 7);
        assert_eq!(exp.config().eval_every_pushes, 5);
    }

    #[test]
    fn compare_runs_one_trace_per_policy() {
        let exp = ExperimentBuilder::small_mlp().epochs(1).build();
        let traces = exp.compare(&[PolicyKind::Bsp, PolicyKind::Asp]);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].policy, "BSP");
        assert_eq!(traces[1].policy, "ASP");
        // Identical total work: same number of pushes in both runs.
        assert_eq!(traces[0].total_pushes, traces[1].total_pushes);
    }

    #[test]
    fn run_produces_non_trivial_accuracy() {
        let trace = ExperimentBuilder::small_mlp().epochs(2).run();
        assert!(
            trace.final_accuracy() > 0.2,
            "accuracy {}",
            trace.final_accuracy()
        );
    }
}
