//! Structured event stream: a lock-free, bounded, append-only event log.
//!
//! Every networked role (single server, coordinator, shard server, worker) can record
//! the synchronization decisions it observes — pushes, pulls, gate blocks and
//! releases, r* credit grants, evictions, joins, checkpoints, reconnects — into an
//! [`EventLog`] and flush it to one NDJSON file per role at shutdown (`--event-log
//! DIR`). The DSSP paper's central claim is only visible as a *time series* of these
//! decisions, so the log is what turns a live run from a poll-at-end black box into an
//! inspectable timeline (see `repro -- trace`).
//!
//! Recording is designed for the PR 4 zero-allocation hot paths:
//!
//! * slots are preallocated at construction (`Box<[Slot]>` of atomics);
//! * a writer claims an index with one `fetch_add` and fills the slot with four
//!   relaxed stores plus one release store — no locks, no allocation, no `unsafe`;
//! * when the log is full, events are dropped and counted, never reallocated;
//! * a disabled log is simply an `Option::None` at the call site — the hook costs one
//!   branch.
//!
//! Timestamps are Unix-epoch microseconds ([`now_micros`]) rather than a per-process
//! monotonic clock, so NDJSON files flushed by *different processes* of one group run
//! merge onto a single comparable timeline.

use crate::json::{self, Value};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Which process role emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The classic single parameter server (`repro -- serve`).
    Server,
    /// The group coordinator (clock/controller service).
    Coordinator,
    /// A storage-only shard server (rank = server index).
    ShardServer,
    /// A training worker (rank = worker rank).
    Worker,
}

impl Role {
    /// All roles, in wire order (the index is the packed representation).
    pub const ALL: [Role; 4] = [
        Role::Server,
        Role::Coordinator,
        Role::ShardServer,
        Role::Worker,
    ];

    /// Stable lowercase name used in the NDJSON `role` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Server => "server",
            Role::Coordinator => "coord",
            Role::ShardServer => "shard",
            Role::Worker => "worker",
        }
    }

    /// Parses the name produced by [`Role::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|r| r.as_str() == s)
    }

    /// Conventional NDJSON file name for this role at `rank` (shard index / worker
    /// rank; the single server and the coordinator ignore the rank).
    pub fn file_name(self, rank: u32) -> String {
        match self {
            Role::Server => "server.ndjson".to_string(),
            Role::Coordinator => "coord.ndjson".to_string(),
            Role::ShardServer => format!("shard-{rank}.ndjson"),
            Role::Worker => format!("worker-{rank}.ndjson"),
        }
    }
}

/// What happened. The `payload` interpretation is per-kind (documented on each
/// variant); it is always a single `u64` so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A gradient push was sent (worker: payload = iteration) or applied (server:
    /// payload = resulting version).
    Push,
    /// A pull completed (payload = model version pulled, or shard count served).
    Pull,
    /// The synchronization gate blocked a worker (payload = blocked worker rank).
    GateBlock,
    /// A blocked worker was released (payload = released worker rank, or on the
    /// worker side the microseconds spent waiting).
    GateRelease,
    /// The DSSP policy granted extra credits (payload = r* credits granted).
    CreditGrant,
    /// A worker was evicted (payload = evicted worker rank).
    Eviction,
    /// A process joined / completed its handshake (payload = rank or resume point).
    Join,
    /// A checkpoint was written (payload = model version checkpointed).
    Checkpoint,
    /// A worker↔shard-server link was re-established (payload = server index).
    Reconnect,
    /// A shard migration froze the group and started transferring (payload = target
    /// layout epoch).
    MigrationPrepare,
    /// One shard's weights + momentum landed on its destination server (payload =
    /// global shard index).
    ShardTransfer,
    /// A migration committed: the group now serves the new layout (payload = the
    /// committed layout epoch).
    MigrationCommit,
    /// A migration was rolled back; the group keeps its old layout (payload = the
    /// abandoned target epoch).
    MigrationRollback,
    /// A traced operation started on this role (payload = a [`SpanOp`] discriminant;
    /// the `trace` field names the operation).
    SpanBegin,
    /// A traced operation finished on this role (payload = the same [`SpanOp`]
    /// discriminant its `span-begin` carried).
    SpanEnd,
}

impl EventKind {
    /// All kinds, in wire order (the index is the packed representation — new kinds
    /// are appended at the end, never inserted).
    pub const ALL: [EventKind; 15] = [
        EventKind::Push,
        EventKind::Pull,
        EventKind::GateBlock,
        EventKind::GateRelease,
        EventKind::CreditGrant,
        EventKind::Eviction,
        EventKind::Join,
        EventKind::Checkpoint,
        EventKind::Reconnect,
        EventKind::MigrationPrepare,
        EventKind::ShardTransfer,
        EventKind::MigrationCommit,
        EventKind::MigrationRollback,
        EventKind::SpanBegin,
        EventKind::SpanEnd,
    ];

    /// Stable kebab-case name used in the NDJSON `kind` field.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Push => "push",
            EventKind::Pull => "pull",
            EventKind::GateBlock => "gate-block",
            EventKind::GateRelease => "gate-release",
            EventKind::CreditGrant => "credit-grant",
            EventKind::Eviction => "eviction",
            EventKind::Join => "join",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Reconnect => "reconnect",
            EventKind::MigrationPrepare => "migration-prepare",
            EventKind::ShardTransfer => "shard-transfer",
            EventKind::MigrationCommit => "migration-commit",
            EventKind::MigrationRollback => "migration-rollback",
            EventKind::SpanBegin => "span-begin",
            EventKind::SpanEnd => "span-end",
        }
    }

    /// Parses the name produced by [`EventKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.as_str() == s)
    }

    fn index(self) -> u64 {
        Self::ALL.iter().position(|k| *k == self).expect("in ALL") as u64
    }
}

/// The operation a `span-begin`/`span-end` pair brackets, carried in the event
/// payload (a worker-side networked operation; the span duration is that
/// operation's communication time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOp {
    /// A gradient push (single-server `Push` or a group push fan-out, send → ack).
    Push,
    /// A weight pull (request → reply applied).
    Pull,
    /// A clock push to the coordinator (announce → grant received).
    Clock,
}

impl SpanOp {
    /// The payload value encoding this operation.
    pub fn code(self) -> u64 {
        match self {
            SpanOp::Push => 1,
            SpanOp::Pull => 2,
            SpanOp::Clock => 3,
        }
    }

    /// Decodes a span payload back into the operation, if known.
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            1 => Some(SpanOp::Push),
            2 => Some(SpanOp::Pull),
            3 => Some(SpanOp::Clock),
            _ => None,
        }
    }

    /// Stable name used in rendered timelines and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanOp::Push => "push",
            SpanOp::Pull => "pull",
            SpanOp::Clock => "clock",
        }
    }
}

/// Packs a worker-originated causal trace id from the originating rank and a
/// per-rank operation sequence number. `seq` starts at 1, so the id 0 is reserved
/// for "untraced" ([`NO_TRACE`]).
pub fn trace_id(rank: u32, seq: u32) -> u64 {
    (u64::from(rank) << 32) | u64::from(seq)
}

/// Unpacks a [`trace_id`] back into `(rank, seq)`.
pub fn trace_parts(trace: u64) -> (u32, u32) {
    ((trace >> 32) as u32, trace as u32)
}

/// The trace id of an untraced event (no causal context).
pub const NO_TRACE: u64 = 0;

/// One recorded observation: when, who, what, and a kind-specific payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Unix-epoch microseconds at record time.
    pub ts: u64,
    /// Emitting role.
    pub role: Role,
    /// Rank within the role (worker rank / shard index; 0 for server and coord).
    pub rank: u32,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (see [`EventKind`]).
    pub payload: u64,
    /// Causal trace id ([`trace_id`]) of the worker operation this event belongs
    /// to, or [`NO_TRACE`] when the event has no causal context.
    pub trace: u64,
}

/// Encodes an event as one NDJSON line (no trailing newline).
pub fn encode_line(e: &Event) -> String {
    format!(
        "{{\"ts\": {}, \"role\": {}, \"rank\": {}, \"kind\": {}, \"payload\": {}, \"trace\": {}}}",
        e.ts,
        json::escape(e.role.as_str()),
        e.rank,
        json::escape(e.kind.as_str()),
        e.payload,
        e.trace
    )
}

/// Parses one NDJSON line back into an [`Event`]. Truncated lines, missing fields,
/// wrong field types and unknown role/kind names are all rejected.
pub fn parse_line(line: &str) -> Result<Event, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let field = |name: &str| -> Result<&Value, String> {
        v.get(name).ok_or_else(|| format!("missing field '{name}'"))
    };
    let num = |name: &str| -> Result<u64, String> {
        field(name)?
            .as_u64()
            .ok_or_else(|| format!("field '{name}' is not a non-negative integer"))
    };
    let role_name = field("role")?
        .as_str()
        .ok_or_else(|| "field 'role' is not a string".to_string())?;
    let role = Role::parse(role_name).ok_or_else(|| format!("unknown role '{role_name}'"))?;
    let kind_name = field("kind")?
        .as_str()
        .ok_or_else(|| "field 'kind' is not a string".to_string())?;
    let kind = EventKind::parse(kind_name).ok_or_else(|| format!("unknown kind '{kind_name}'"))?;
    let rank = num("rank")?;
    let rank = u32::try_from(rank).map_err(|_| "field 'rank' out of range".to_string())?;
    Ok(Event {
        ts: num("ts")?,
        role,
        rank,
        kind,
        payload: num("payload")?,
        trace: num("trace")?,
    })
}

/// Unix-epoch microseconds right now (the shared clock across a group's processes).
pub fn now_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

struct Slot {
    ts: AtomicU64,
    payload: AtomicU64,
    trace: AtomicU64,
    // kind index + 1; 0 marks a slot that was claimed but not yet (or never) filled.
    meta: AtomicU64,
}

/// The lock-free, bounded, append-only event log (one per process).
///
/// Writers call [`EventLog::record`] from any thread; it never blocks, never
/// allocates, and drops (counting) once the fixed capacity is exhausted. The log is
/// read back with [`EventLog::events`] — normally once, at shutdown, to flush NDJSON.
pub struct EventLog {
    role: Role,
    rank: u32,
    slots: Box<[Slot]>,
    next: AtomicUsize,
    dropped: AtomicU64,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("role", &self.role)
            .field("rank", &self.rank)
            .field("capacity", &self.slots.len())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl EventLog {
    /// Default capacity: enough for every event of the repository's largest smoke
    /// runs with plenty of headroom, at ~1.5 MiB of preallocated slots.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// A log for `role`/`rank` with [`EventLog::DEFAULT_CAPACITY`] slots.
    pub fn new(role: Role, rank: u32) -> Self {
        Self::with_capacity(role, rank, Self::DEFAULT_CAPACITY)
    }

    /// A log with an explicit slot capacity (events beyond it are dropped, counted).
    pub fn with_capacity(role: Role, rank: u32, capacity: usize) -> Self {
        let slots = (0..capacity)
            .map(|_| Slot {
                ts: AtomicU64::new(0),
                payload: AtomicU64::new(0),
                trace: AtomicU64::new(0),
                meta: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            role,
            rank,
            slots,
            next: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The emitting role this log was built for.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The rank within the role this log was built for.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Records one event, timestamped now. Lock-free and allocation-free: one
    /// `fetch_add` to claim a slot, five atomic stores to fill it.
    #[inline]
    pub fn record(&self, kind: EventKind, payload: u64) {
        self.record_traced_at(now_micros(), kind, payload, NO_TRACE);
    }

    /// Like [`EventLog::record`] with an explicit timestamp (tests, replays).
    #[inline]
    pub fn record_at(&self, ts: u64, kind: EventKind, payload: u64) {
        self.record_traced_at(ts, kind, payload, NO_TRACE);
    }

    /// Records one event stamped with a causal [`trace_id`], timestamped now.
    #[inline]
    pub fn record_traced(&self, kind: EventKind, payload: u64, trace: u64) {
        self.record_traced_at(now_micros(), kind, payload, trace);
    }

    /// Like [`EventLog::record_traced`] with an explicit timestamp.
    #[inline]
    pub fn record_traced_at(&self, ts: u64, kind: EventKind, payload: u64, trace: u64) {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = self.slots.get(i) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        slot.ts.store(ts, Ordering::Relaxed);
        slot.payload.store(payload, Ordering::Relaxed);
        slot.trace.store(trace, Ordering::Relaxed);
        // The release store publishes the slot: a reader that acquires a non-zero
        // meta sees the ts/payload/trace stores above.
        slot.meta.store(kind.index() + 1, Ordering::Release);
    }

    /// Number of events currently recorded (filled slots).
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.slots.len())
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A snapshot of all published events, in record order. Slots claimed by a writer
    /// that has not finished its stores yet are skipped.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.len());
        for slot in self.slots.iter().take(self.len()) {
            let meta = slot.meta.load(Ordering::Acquire);
            if meta == 0 {
                continue;
            }
            let kind = EventKind::ALL[(meta - 1) as usize];
            out.push(Event {
                ts: slot.ts.load(Ordering::Relaxed),
                role: self.role,
                rank: self.rank,
                kind,
                payload: slot.payload.load(Ordering::Relaxed),
                trace: slot.trace.load(Ordering::Relaxed),
            });
        }
        out
    }

    /// Renders the whole log as NDJSON (one [`encode_line`] per event).
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            let _ = writeln!(out, "{}", encode_line(&e));
        }
        out
    }

    /// The conventional file name this log flushes to (role- and rank-derived).
    pub fn file_name(&self) -> String {
        self.role.file_name(self.rank)
    }

    /// Flushes the log to `dir/<file_name>`, creating `dir` if needed. Returns the
    /// written path.
    pub fn flush_to_dir(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_ndjson())?;
        Ok(path)
    }
}

/// Reads and merges every `*.ndjson` file in `dir`, sorted by timestamp (ties broken
/// by role/rank so the order is deterministic). Malformed lines are an error — a
/// torn flush should fail loudly, not render a misleading timeline.
pub fn read_dir_events(dir: &Path) -> std::io::Result<Vec<Event>> {
    let mut events = Vec::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("ndjson"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path)?;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event = parse_line(line).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", path.display(), lineno + 1),
                )
            })?;
            events.push(event);
        }
    }
    events.sort_by_key(|e| (e.ts, e.role.as_str(), e.rank));
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            ts: 1_723_000_000_123_456,
            role: Role::Worker,
            rank: 2,
            kind: EventKind::CreditGrant,
            payload: 7,
            trace: trace_id(2, 9),
        }
    }

    #[test]
    fn every_kind_and_role_round_trips_through_ndjson() {
        for role in Role::ALL {
            for kind in EventKind::ALL {
                let e = Event {
                    ts: 42,
                    role,
                    rank: 3,
                    kind,
                    payload: u64::MAX,
                    trace: trace_id(3, u32::MAX),
                };
                let line = encode_line(&e);
                assert_eq!(parse_line(&line).unwrap(), e, "line: {line}");
            }
        }
    }

    #[test]
    fn trace_ids_pack_and_unpack() {
        assert_eq!(trace_id(0, 1), 1);
        assert_eq!(trace_parts(trace_id(7, 42)), (7, 42));
        assert_eq!(
            trace_parts(trace_id(u32::MAX, u32::MAX)),
            (u32::MAX, u32::MAX)
        );
        assert_eq!(NO_TRACE, 0);
        for op in [SpanOp::Push, SpanOp::Pull, SpanOp::Clock] {
            assert_eq!(SpanOp::from_code(op.code()), Some(op));
        }
        assert_eq!(SpanOp::from_code(0), None);
    }

    #[test]
    fn truncated_lines_are_rejected() {
        let line = encode_line(&sample());
        for cut in 1..line.len() {
            assert!(
                parse_line(&line[..cut]).is_err(),
                "prefix of length {cut} must not parse: {}",
                &line[..cut]
            );
        }
    }

    #[test]
    fn unknown_names_and_wrong_types_are_rejected() {
        assert!(parse_line(
            r#"{"ts": 1, "role": "gremlin", "rank": 0, "kind": "push", "payload": 0}"#
        )
        .is_err());
        assert!(parse_line(
            r#"{"ts": 1, "role": "worker", "rank": 0, "kind": "pushed", "payload": 0}"#
        )
        .is_err());
        assert!(parse_line(
            r#"{"ts": -1, "role": "worker", "rank": 0, "kind": "push", "payload": 0}"#
        )
        .is_err());
        assert!(
            parse_line(r#"{"role": "worker", "rank": 0, "kind": "push", "payload": 0}"#).is_err()
        );
        // Pre-v6 lines without a trace field are rejected too: the stream format is
        // versioned with the protocol, and a torn flush must fail loudly.
        assert!(parse_line(
            r#"{"ts": 1, "role": "worker", "rank": 0, "kind": "push", "payload": 0}"#
        )
        .is_err());
    }

    #[test]
    fn log_records_in_order_and_drops_when_full() {
        let log = EventLog::with_capacity(Role::ShardServer, 1, 4);
        for i in 0..6u64 {
            log.record_at(100 + i, EventKind::Push, i);
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.dropped(), 2);
        let events = log.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].payload, 0);
        assert_eq!(events[3].payload, 3);
        assert!(events
            .iter()
            .all(|e| e.role == Role::ShardServer && e.rank == 1));
    }

    #[test]
    fn concurrent_recording_loses_nothing_under_capacity() {
        let log = std::sync::Arc::new(EventLog::with_capacity(Role::Server, 0, 4096));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..512u64 {
                        log.record_at(t * 10_000 + i, EventKind::Pull, i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(log.len(), 2048);
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.events().len(), 2048);
    }

    #[test]
    fn flush_and_read_dir_round_trip() {
        let dir = std::env::temp_dir().join(format!("dssp-events-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let worker = EventLog::with_capacity(Role::Worker, 0, 16);
        worker.record_at(20, EventKind::Push, 1);
        worker.record_at(40, EventKind::GateBlock, 0);
        let server = EventLog::with_capacity(Role::Server, 0, 16);
        server.record_at(30, EventKind::CreditGrant, 9);
        worker.flush_to_dir(&dir).unwrap();
        server.flush_to_dir(&dir).unwrap();
        let merged = read_dir_events(&dir).unwrap();
        assert_eq!(merged.len(), 3);
        assert_eq!(
            merged.iter().map(|e| e.ts).collect::<Vec<_>>(),
            vec![20, 30, 40],
            "merged stream is time-sorted across roles"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
