//! Chrome-trace (Trace Event Format) export of DSSP runs.
//!
//! [`render_chrome_trace`] turns a merged event stream (see [`crate::events`]) into
//! the JSON array-of-events dialect that `chrome://tracing`, Perfetto and `speedscope`
//! all load: per-worker timeline lanes with `compute` / `blocked` / `pull` duration
//! spans, instant markers for r* credit grants, evictions, joins, checkpoints and
//! reconnects, `migration` duration spans on the server-family lanes (prepare →
//! commit, or prepare → rollback), and named process/thread metadata so the lanes
//! read as "worker 0 … worker N / coordinator / shard k".
//!
//! Two additions ride the v6 causal trace ids: `span-begin`/`span-end` pairs render
//! as `op:push` / `op:pull` / `op:clock` duration spans (the worker's own view of
//! one networked operation), and every trace id that touches more than one lane
//! becomes a chrome-trace *flow* (`ph: s/t/f` arrows), so clicking one push draws
//! the arrow from the worker's send through the server's gate decision and back.
//!
//! [`render_chrome_trace_from_run`] is the fallback for runs recorded *without* an
//! event log: it renders a [`RunTrace`]'s evaluation points as counter tracks
//! (accuracy, loss, pushes over time), which is enough to see run shape but not
//! individual gating decisions.

use crate::events::{Event, EventKind, Role, SpanOp, NO_TRACE};
use crate::json;
use dssp_sim::RunTrace;

/// Process-id lanes in the rendered trace, one per role.
fn pid(role: Role) -> u32 {
    match role {
        Role::Server => 1,
        Role::Coordinator => 1,
        Role::ShardServer => 2,
        Role::Worker => 3,
    }
}

fn process_name(role: Role) -> &'static str {
    match role {
        Role::Server | Role::Coordinator => "dssp server",
        Role::ShardServer => "dssp shard servers",
        Role::Worker => "dssp workers",
    }
}

fn thread_name(role: Role, rank: u32) -> String {
    match role {
        Role::Server => "server".to_string(),
        Role::Coordinator => "coordinator".to_string(),
        Role::ShardServer => format!("shard {rank}"),
        Role::Worker => format!("worker {rank}"),
    }
}

struct TraceWriter {
    out: String,
    first: bool,
}

impl TraceWriter {
    fn new() -> Self {
        Self {
            out: String::from("{\"traceEvents\": [\n"),
            first: true,
        }
    }

    fn push(&mut self, event_json: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str("  ");
        self.out.push_str(event_json);
    }

    fn meta(&mut self, name: &str, pid: u32, tid: Option<u32>, value: &str) {
        let tid_field = tid.map(|t| format!(", \"tid\": {t}")).unwrap_or_default();
        self.push(&format!(
            "{{\"ph\": \"M\", \"name\": {}, \"pid\": {pid}{tid_field}, \"args\": {{\"name\": {}}}}}",
            json::escape(name),
            json::escape(value)
        ));
    }

    fn span(&mut self, name: &str, pid: u32, tid: u32, ts: u64, dur: u64) {
        self.push(&format!(
            "{{\"ph\": \"X\", \"name\": {}, \"pid\": {pid}, \"tid\": {tid}, \"ts\": {ts}, \"dur\": {dur}}}",
            json::escape(name)
        ));
    }

    fn instant(&mut self, name: &str, pid: u32, tid: u32, ts: u64, arg: (&str, u64)) {
        self.push(&format!(
            "{{\"ph\": \"i\", \"name\": {}, \"pid\": {pid}, \"tid\": {tid}, \"ts\": {ts}, \"s\": \"t\", \"args\": {{{}: {}}}}}",
            json::escape(name),
            json::escape(arg.0),
            arg.1
        ));
    }

    /// One chrome-trace flow event: `ph` is `s` (start), `t` (step) or `f` (finish).
    /// Flows with the same name/category/id are drawn as one arrow chain; `bp: "e"`
    /// on the finish binds the arrowhead to the enclosing slice.
    fn flow(&mut self, ph: char, id: u64, pid: u32, tid: u32, ts: u64) {
        let bp = if ph == 'f' { ", \"bp\": \"e\"" } else { "" };
        self.push(&format!(
            "{{\"ph\": \"{ph}\", \"name\": \"trace\", \"cat\": \"causal\", \"id\": {id}, \"pid\": {pid}, \"tid\": {tid}, \"ts\": {ts}{bp}}}"
        ));
    }

    fn counter(&mut self, name: &str, pid: u32, ts: u64, series: &str, value: f64) {
        self.push(&format!(
            "{{\"ph\": \"C\", \"name\": {}, \"pid\": {pid}, \"ts\": {ts}, \"args\": {{{}: {value:.6}}}}}",
            json::escape(name),
            json::escape(series)
        ));
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

/// Renders a merged, time-sorted event stream as Trace Event Format JSON.
///
/// Worker lanes are reconstructed from each worker's own event sequence:
///
/// * `compute` — from the previous pull (or the worker's first event) to its `push`;
/// * `blocked` — from `gate-block` to `gate-release` (the synchronization stall the
///   DSSP policy exists to shrink);
/// * `pull` — from `gate-release` to the `pull` completion.
///
/// `credit-grant` events become instant `r* grant` markers with the granted credit
/// count in `args`, which is the paper's "r* over time" figure as a timeline. All
/// non-worker roles contribute instant markers on their own lanes.
pub fn render_chrome_trace(events: &[Event]) -> String {
    let mut w = TraceWriter::new();
    let t0 = events.iter().map(|e| e.ts).min().unwrap_or(0);

    // Lane metadata: one process per role family, one thread per (role, rank).
    let mut lanes: Vec<(Role, u32)> = events.iter().map(|e| (e.role, e.rank)).collect();
    lanes.sort_by_key(|(role, rank)| (pid(*role), *rank, role.as_str()));
    lanes.dedup();
    let mut named_pids: Vec<u32> = Vec::new();
    for (role, rank) in &lanes {
        if !named_pids.contains(&pid(*role)) {
            named_pids.push(pid(*role));
            w.meta("process_name", pid(*role), None, process_name(*role));
        }
        w.meta(
            "thread_name",
            pid(*role),
            Some(*rank),
            &thread_name(*role, *rank),
        );
    }

    // Per-worker span reconstruction state, indexed by rank.
    let max_worker = events
        .iter()
        .filter(|e| e.role == Role::Worker)
        .map(|e| e.rank)
        .max()
        .map(|r| r as usize + 1)
        .unwrap_or(0);
    let mut ready_at: Vec<Option<u64>> = vec![None; max_worker];
    let mut blocked_at: Vec<Option<u64>> = vec![None; max_worker];
    let mut pull_from: Vec<Option<u64>> = vec![None; max_worker];
    // Open migrations per server-family lane: prepare opens, commit/rollback closes.
    let mut migrating_since: std::collections::HashMap<(u32, u32), u64> =
        std::collections::HashMap::new();
    // Open traced operation spans, keyed by (lane, trace): span-begin opens,
    // span-end closes and emits the `op:<name>` slice.
    let mut open_spans: std::collections::HashMap<(u32, u32, u64), u64> =
        std::collections::HashMap::new();
    // Every traced event, for the flow-arrow pass after the lanes are rendered.
    let mut flows: Vec<(u64, u64, u32, u32)> = Vec::new();

    for e in events {
        let ts = e.ts - t0;
        let (p, tid) = (pid(e.role), e.rank);
        if e.trace != NO_TRACE {
            flows.push((e.trace, ts, p, tid));
        }
        // Traced operation spans are role-agnostic: any lane may bracket one.
        match e.kind {
            EventKind::SpanBegin => {
                open_spans.insert((p, tid, e.trace), ts);
                continue;
            }
            EventKind::SpanEnd => {
                if let Some(start) = open_spans.remove(&(p, tid, e.trace)) {
                    let name = SpanOp::from_code(e.payload)
                        .map(SpanOp::as_str)
                        .unwrap_or("?");
                    w.span(
                        &format!("op:{name}"),
                        p,
                        tid,
                        start,
                        ts.saturating_sub(start),
                    );
                }
                continue;
            }
            _ => {}
        }
        if e.role != Role::Worker {
            // Server-family lanes: every event is an instant marker, and the
            // migration phases additionally bracket a duration span so a drain or
            // rebalance reads as one block on the timeline.
            w.instant(e.kind.as_str(), p, tid, ts, ("payload", e.payload));
            match e.kind {
                EventKind::MigrationPrepare => {
                    migrating_since.insert((p, tid), ts);
                }
                EventKind::MigrationCommit | EventKind::MigrationRollback => {
                    if let Some(start) = migrating_since.remove(&(p, tid)) {
                        let name = if e.kind == EventKind::MigrationCommit {
                            "migration"
                        } else {
                            "migration (rolled back)"
                        };
                        w.span(name, p, tid, start, ts.saturating_sub(start));
                    }
                }
                _ => {}
            }
            continue;
        }
        let rank = e.rank as usize;
        match e.kind {
            EventKind::Join => {
                ready_at[rank] = Some(ts);
                w.instant("join", p, tid, ts, ("resume_at", e.payload));
            }
            EventKind::Push => {
                if let Some(start) = ready_at[rank].take() {
                    w.span("compute", p, tid, start, ts.saturating_sub(start));
                }
                // If no block follows, the pull starts right after the push reply.
                pull_from[rank] = Some(ts);
            }
            EventKind::GateBlock => {
                blocked_at[rank] = Some(ts);
            }
            EventKind::GateRelease => {
                if let Some(start) = blocked_at[rank].take() {
                    w.span("blocked", p, tid, start, ts.saturating_sub(start));
                }
                pull_from[rank] = Some(ts);
            }
            EventKind::Pull => {
                if let Some(start) = pull_from[rank].take() {
                    w.span("pull", p, tid, start, ts.saturating_sub(start));
                }
                ready_at[rank] = Some(ts);
            }
            EventKind::CreditGrant => {
                w.instant("r* grant", p, tid, ts, ("granted", e.payload));
            }
            EventKind::Eviction => {
                ready_at[rank] = None;
                blocked_at[rank] = None;
                w.instant("eviction", p, tid, ts, ("rank", e.payload));
            }
            // Migration events are recorded by the coordinator and the shard servers
            // (instant markers above); a worker lane renders any straggler the same.
            EventKind::Checkpoint
            | EventKind::Reconnect
            | EventKind::MigrationPrepare
            | EventKind::ShardTransfer
            | EventKind::MigrationCommit
            | EventKind::MigrationRollback => {
                w.instant(e.kind.as_str(), p, tid, ts, ("payload", e.payload));
            }
            // Consumed by the role-agnostic span pass above.
            EventKind::SpanBegin | EventKind::SpanEnd => {}
        }
    }

    // Causal flow arrows: each trace id that visits more than one lane becomes one
    // s → t… → f chain, with a flow point at every lane *transition* (consecutive
    // events on the same lane collapse — the arrow shows the hop, not every event).
    flows.sort_unstable();
    let mut i = 0;
    while i < flows.len() {
        let trace = flows[i].0;
        let mut points: Vec<(u64, u32, u32)> = Vec::new();
        while i < flows.len() && flows[i].0 == trace {
            let (_, ts, p, t) = flows[i];
            if points
                .last()
                .map(|&(_, lp, lt)| (lp, lt) != (p, t))
                .unwrap_or(true)
            {
                points.push((ts, p, t));
            }
            i += 1;
        }
        if points.len() < 2 {
            continue;
        }
        let last = points.len() - 1;
        for (k, &(ts, p, t)) in points.iter().enumerate() {
            let ph = match k {
                0 => 's',
                k if k == last => 'f',
                _ => 't',
            };
            w.flow(ph, trace, p, t, ts);
        }
    }
    w.finish()
}

/// Renders a [`RunTrace`]'s evaluation points as chrome-trace counter tracks
/// (`test_accuracy`, `train_loss`, `pushes` over run time) — the fallback when a run
/// was recorded without `--event-log`.
pub fn render_chrome_trace_from_run(trace: &RunTrace) -> String {
    let mut w = TraceWriter::new();
    w.meta(
        "process_name",
        1,
        None,
        &format!("{} ({})", trace.policy, trace.model),
    );
    for p in &trace.points {
        let ts = (p.time_s * 1_000_000.0).max(0.0) as u64;
        w.counter("test_accuracy", 1, ts, "accuracy", p.test_accuracy);
        w.counter("train_loss", 1, ts, "loss", p.train_loss);
        w.counter("pushes", 1, ts, "pushes", p.pushes as f64);
    }
    w.finish()
}

/// Parses the JSON written by [`crate::report::trace_json`] back into the subset of
/// [`RunTrace`] the chrome-trace counter renderer needs (policy, model, workers,
/// evaluation points, totals). Wall-clock-only convenience — synchronization stats
/// are not reconstructed.
pub fn parse_run_trace(text: &str) -> Result<RunTrace, String> {
    let v = json::parse(text).map_err(|e| e.to_string())?;
    let str_field = |name: &str| -> Result<String, String> {
        v.get(name)
            .and_then(|f| f.as_str())
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field '{name}'"))
    };
    let points = v
        .get("points")
        .and_then(|p| p.as_array())
        .ok_or_else(|| "missing array field 'points'".to_string())?
        .iter()
        .map(|p| {
            Ok(dssp_sim::TracePoint {
                time_s: p
                    .get("time_s")
                    .and_then(|f| f.as_f64())
                    .ok_or_else(|| "point missing 'time_s'".to_string())?,
                pushes: p.get("pushes").and_then(|f| f.as_u64()).unwrap_or(0),
                epoch: p.get("epoch").and_then(|f| f.as_u64()).unwrap_or(0) as usize,
                test_accuracy: p
                    .get("test_accuracy")
                    .and_then(|f| f.as_f64())
                    .unwrap_or(0.0),
                train_loss: p.get("train_loss").and_then(|f| f.as_f64()).unwrap_or(0.0),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(RunTrace {
        policy: str_field("policy")?,
        model: str_field("model")?,
        workers: v.get("workers").and_then(|f| f.as_u64()).unwrap_or(0) as usize,
        points,
        total_time_s: v
            .get("total_time_s")
            .and_then(|f| f.as_f64())
            .unwrap_or(0.0),
        total_pushes: v.get("total_pushes").and_then(|f| f.as_u64()).unwrap_or(0),
        worker_summaries: Vec::new(),
        server_stats: Default::default(),
        group_servers: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(ts: u64, role: Role, rank: u32, kind: EventKind, payload: u64) -> Event {
        et(ts, role, rank, kind, payload, NO_TRACE)
    }

    fn et(ts: u64, role: Role, rank: u32, kind: EventKind, payload: u64, trace: u64) -> Event {
        Event {
            ts,
            role,
            rank,
            kind,
            payload,
            trace,
        }
    }

    #[test]
    fn worker_lane_reconstructs_compute_blocked_pull_spans() {
        let events = vec![
            e(1_000, Role::Worker, 0, EventKind::Join, 0),
            e(1_000, Role::Worker, 0, EventKind::Pull, 0),
            e(1_400, Role::Worker, 0, EventKind::Push, 1),
            e(1_400, Role::Worker, 0, EventKind::GateBlock, 0),
            e(1_900, Role::Worker, 0, EventKind::GateRelease, 500),
            e(1_920, Role::Worker, 0, EventKind::CreditGrant, 6),
            e(2_000, Role::Worker, 0, EventKind::Pull, 2),
            e(1_890, Role::Server, 0, EventKind::CreditGrant, 6),
        ];
        let json_text = render_chrome_trace(&events);
        let v = json::parse(&json_text).expect("rendered trace is valid JSON");
        let items = v.get("traceEvents").unwrap().as_array().unwrap();
        let names: Vec<&str> = items
            .iter()
            .filter_map(|i| i.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"compute"));
        assert!(names.contains(&"blocked"));
        assert!(names.contains(&"pull"));
        assert!(names.contains(&"r* grant"));
        assert!(items.iter().any(|i| {
            i.get("name").and_then(|n| n.as_str()) == Some("thread_name")
                && i.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    == Some("worker 0")
        }));
        let blocked = items
            .iter()
            .find(|i| i.get("name").and_then(|n| n.as_str()) == Some("blocked"))
            .unwrap();
        assert_eq!(blocked.get("ts").unwrap().as_u64(), Some(400));
        assert_eq!(blocked.get("dur").unwrap().as_u64(), Some(500));
    }

    #[test]
    fn traced_push_renders_an_op_span_and_a_cross_lane_flow() {
        let trace = crate::events::trace_id(0, 1);
        let events = vec![
            // Worker 0 brackets one push; the server's push/grant carry the same id.
            et(
                1_000,
                Role::Worker,
                0,
                EventKind::SpanBegin,
                SpanOp::Push.code(),
                trace,
            ),
            et(1_010, Role::Worker, 0, EventKind::Push, 1, trace),
            et(1_200, Role::Server, 0, EventKind::Push, 0, trace),
            et(1_210, Role::Server, 0, EventKind::CreditGrant, 3, trace),
            et(1_400, Role::Worker, 0, EventKind::GateRelease, 390, trace),
            et(
                1_450,
                Role::Worker,
                0,
                EventKind::SpanEnd,
                SpanOp::Push.code(),
                trace,
            ),
        ];
        let json_text = render_chrome_trace(&events);
        let v = json::parse(&json_text).expect("rendered trace is valid JSON");
        let items = v.get("traceEvents").unwrap().as_array().unwrap();
        let op = items
            .iter()
            .find(|i| i.get("name").and_then(|n| n.as_str()) == Some("op:push"))
            .expect("op:push span");
        assert_eq!(op.get("ts").unwrap().as_u64(), Some(0));
        assert_eq!(op.get("dur").unwrap().as_u64(), Some(450));
        // Flow chain: worker → server → worker is three lane transitions → s, t, f.
        let phs: Vec<&str> = items
            .iter()
            .filter(|i| i.get("cat").and_then(|c| c.as_str()) == Some("causal"))
            .filter_map(|i| i.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert_eq!(phs, ["s", "t", "f"]);
        let finish = items
            .iter()
            .find(|i| i.get("ph").and_then(|p| p.as_str()) == Some("f"))
            .expect("flow finish");
        assert_eq!(finish.get("bp").and_then(|b| b.as_str()), Some("e"));
        assert_eq!(finish.get("id").unwrap().as_u64(), Some(trace));
    }

    #[test]
    fn untraced_events_draw_no_flows() {
        let events = vec![
            e(1_000, Role::Worker, 0, EventKind::Push, 1),
            e(1_200, Role::Server, 0, EventKind::Push, 0),
        ];
        let json_text = render_chrome_trace(&events);
        assert!(!json_text.contains("\"cat\": \"causal\""));
    }

    #[test]
    fn migration_phases_bracket_a_span_on_the_coordinator_lane() {
        let events = vec![
            e(1_000, Role::Coordinator, 0, EventKind::MigrationPrepare, 1),
            e(1_200, Role::Coordinator, 0, EventKind::ShardTransfer, 2),
            e(1_500, Role::Coordinator, 0, EventKind::MigrationCommit, 1),
            e(2_000, Role::Coordinator, 0, EventKind::MigrationPrepare, 2),
            e(2_100, Role::Coordinator, 0, EventKind::MigrationRollback, 2),
        ];
        let json_text = render_chrome_trace(&events);
        let v = json::parse(&json_text).expect("rendered trace is valid JSON");
        let items = v.get("traceEvents").unwrap().as_array().unwrap();
        let span = |name: &str| {
            items
                .iter()
                .find(|i| {
                    i.get("ph").and_then(|p| p.as_str()) == Some("X")
                        && i.get("name").and_then(|n| n.as_str()) == Some(name)
                })
                .unwrap_or_else(|| panic!("no '{name}' span"))
        };
        let committed = span("migration");
        assert_eq!(committed.get("ts").unwrap().as_u64(), Some(0));
        assert_eq!(committed.get("dur").unwrap().as_u64(), Some(500));
        let rolled_back = span("migration (rolled back)");
        assert_eq!(rolled_back.get("dur").unwrap().as_u64(), Some(100));
        // Phase instants are still rendered alongside the spans.
        assert!(items.iter().any(|i| {
            i.get("ph").and_then(|p| p.as_str()) == Some("i")
                && i.get("name").and_then(|n| n.as_str()) == Some("shard-transfer")
        }));
    }

    #[test]
    fn run_trace_round_trips_through_json_into_counters() {
        let trace = RunTrace {
            policy: "DSSP s=3, r=12".into(),
            model: "mlp".into(),
            workers: 2,
            points: vec![dssp_sim::TracePoint {
                time_s: 0.5,
                pushes: 8,
                epoch: 0,
                test_accuracy: 0.25,
                train_loss: 1.2,
            }],
            total_time_s: 0.5,
            total_pushes: 8,
            worker_summaries: vec![],
            server_stats: Default::default(),
            group_servers: vec![],
        };
        let parsed = parse_run_trace(&crate::report::trace_json(&trace)).unwrap();
        assert_eq!(parsed.policy, trace.policy);
        assert_eq!(parsed.points.len(), 1);
        let rendered = render_chrome_trace_from_run(&parsed);
        let v = json::parse(&rendered).expect("counter trace is valid JSON");
        assert!(v.get("traceEvents").unwrap().as_array().unwrap().len() >= 3);
    }
}
