//! The transport-agnostic training driver.
//!
//! The DSSP decision logic (`dssp_ps::ParameterServer`) is runtime-agnostic; what *was*
//! duplicated between runtimes was everything around it: building the job (dataset,
//! shards, model replicas, server), the worker step-loop (pull → compute → push) and
//! the server decision-loop (apply push, gate, evaluate, summarize). This module
//! extracts those pieces so that every substrate drives the same code:
//!
//! * the discrete-event simulator (`dssp-sim`) — virtual time, single thread;
//! * the threaded runtime ([`crate::runtime`]) — real threads, channels;
//! * the networked runtime (`dssp-net`) — real processes, TCP or loopback transports.
//!
//! The simulator keeps its own event loop (virtual time needs one), but the threaded
//! and networked runtimes are thin substrate adapters over [`WorkerStep`] and
//! [`ServerLoop`].
//!
//! # Deterministic mode
//!
//! Real-time substrates are racy: which worker's push reaches the server first depends
//! on OS scheduling, so two runs — or the same run on two substrates — differ bitwise
//! even with identical seeds. Setting [`JobConfig::deterministic`] imposes a canonical
//! event order with [`DeterministicGate`]: the server buffers incoming events and only
//! processes a push when every runnable worker's next event has arrived, always picking
//! the lowest-ranked one, and the policy clock becomes a logical event counter instead
//! of wall time. Two deterministic runs of the same job produce bitwise-identical
//! weights, accuracies and synchronization statistics on *any* substrate (threads,
//! loopback channels, TCP sockets); only wall-clock fields differ (see
//! [`dssp_sim::RunTrace::with_times_zeroed`]). The cost is lockstep-ish pacing, so the
//! mode is for equivalence testing and debugging, not throughput.

use dssp_data::BatchIter;
use dssp_nn::models::ModelSpec;
use dssp_nn::{accuracy, Model, Sequential, Sgd, SgdConfig, SoftmaxCrossEntropy, Workspace};
use dssp_ps::{ParameterServer, PolicyKind, ServerConfig, SyncGate};
use dssp_sim::{DataSpec, RunTrace, TracePoint, WorkerSummary};
use dssp_tensor::Tensor;
use std::collections::VecDeque;
use std::time::Duration;

/// Configuration of one distributed training job, shared by the threaded and networked
/// runtimes (the simulator has its own `SimConfig` because it also models the cluster).
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Model architecture replicated by every worker.
    pub model: ModelSpec,
    /// Dataset specification.
    pub data: DataSpec,
    /// Number of workers.
    pub num_workers: usize,
    /// Synchronization paradigm.
    pub policy: PolicyKind,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Passes over each worker's shard.
    pub epochs: usize,
    /// Server-side SGD configuration.
    pub sgd: SgdConfig,
    /// Master seed.
    pub seed: u64,
    /// Evaluate the global weights every this many pushes.
    pub eval_every_pushes: u64,
    /// Cap on test examples per evaluation.
    pub eval_max_examples: usize,
    /// Artificial extra compute delay per iteration for each worker, in milliseconds.
    /// An empty vector means no extra delay; otherwise it must have one entry per
    /// worker. Unequal delays emulate a heterogeneous cluster.
    pub extra_compute_delay_ms: Vec<u64>,
    /// Number of contiguous key-range shards for the server's parameter storage
    /// (1 = flat). Weight arithmetic is bitwise independent of this setting.
    pub shards: usize,
    /// Number of shard-server processes the model's shards are spread over in a
    /// multi-server group deployment (`dssp-coord`). `1` is the classic single-server
    /// topology (and the only value the simulator, the threaded runtime and plain
    /// `dssp-net` serve/worker accept). Server `i` owns the contiguous run of global
    /// shards given by `dssp_ps::shard_range(shards, servers, i)`, so the assignment
    /// is never carried on the wire. Part of the config digest: a group worker cannot
    /// silently join a job with a different topology.
    pub servers: usize,
    /// Whether networked workers request incremental pulls (`PullDelta` with their
    /// cached per-shard versions, the server shipping only shards whose version
    /// advanced) instead of re-downloading the full model every iteration. On by
    /// default; bitwise-neutral (the reconstructed weights are identical either way).
    /// Included in the config digest so a delta-pulling worker cannot silently join a
    /// full-pull job. Ignored by the simulator and the threaded runtime, which have no
    /// pull step.
    pub delta_pulls: bool,
    /// Impose a canonical event order and a logical policy clock so runs are bitwise
    /// reproducible across substrates (see the module docs). Off by default.
    pub deterministic: bool,
    /// Chaos hook: make the server abort the run after this many applied pushes, as if
    /// it had failed. Exercises the graceful-shutdown path (workers receive a shutdown
    /// command instead of being leaked). `None` disables the hook.
    pub fail_after_pushes: Option<u64>,
    /// Structured chaos hook generalizing [`JobConfig::fail_after_pushes`]: which
    /// process dies, in which protocol phase, and whether the run is expected to be
    /// restarted from checkpoints or to continue after eviction. `None` disables the
    /// hook. Excluded from [`JobConfig::stable_digest`] so a restarted (fault-free)
    /// process accepts checkpoints taken by its faulted predecessor.
    pub fault_plan: Option<FaultPlan>,
    /// Checkpoint persistence: directory, cadence and restore flag. `None` disables
    /// checkpointing. Excluded from [`JobConfig::stable_digest`] (where a run stores
    /// its state does not change what it computes).
    pub checkpoint: Option<CheckpointSpec>,
    /// How long the threaded runtime's server waits without any worker message before
    /// checking for dead worker threads, in milliseconds.
    pub stall_timeout_ms: u64,
    /// Observability: directory the networked roles flush their structured event logs
    /// to as NDJSON, one file per role (`server.ndjson`, `coord.ndjson`,
    /// `shard-<i>.ndjson`, `worker-<rank>.ndjson`). `None` disables event recording
    /// entirely (the hooks cost one branch). Excluded from
    /// [`JobConfig::stable_digest`]: observing a run does not change what it
    /// computes.
    pub event_log: Option<std::path::PathBuf>,
    /// Observability: base `HOST:PORT` for the hand-rolled Prometheus `GET /metrics`
    /// endpoints. The single server and the group coordinator listen at the base
    /// port; shard server `i` listens at `port + 1 + i`; workers expose no endpoint.
    /// `None` disables the listeners. Excluded from [`JobConfig::stable_digest`] like
    /// [`JobConfig::event_log`].
    pub metrics_addr: Option<String>,
    /// Declarative live-migration trigger for group runs: run this drain/rebalance
    /// once the coordinator's clock reaches the spec's version (at the next quiescent
    /// round boundary). `None` means migrations happen only via the admin channel or
    /// the skew threshold. Excluded from [`JobConfig::stable_digest`]: migration moves
    /// shard ownership between servers, never shard boundaries or weight arithmetic,
    /// so the computed model is bitwise unchanged.
    pub migration: Option<MigrationSpec>,
    /// Auto-rebalance trigger for group runs: when the owned-shard imbalance among
    /// active servers exceeds this, the coordinator schedules a rebalance at the next
    /// round boundary. `None` disables the trigger. Excluded from
    /// [`JobConfig::stable_digest`] like [`JobConfig::migration`].
    pub migrate_threshold: Option<u64>,
}

/// Which layout change a [`MigrationSpec`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationCommand {
    /// Move every shard off this server (it stays in the fleet, empty).
    Drain(usize),
    /// Re-spread the shards evenly over the currently active servers.
    Rebalance,
}

/// A declarative migration trigger: run `command` once the coordinator's model
/// version (total applied pushes) reaches `at_version`. Fires at most once per
/// group life — only while the layout is still at epoch 0 — so a restarted
/// coordinator that restored a migrated (epoch ≥ 1) layout does not migrate again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationSpec {
    /// The drain or rebalance to run.
    pub command: MigrationCommand,
    /// Fire at the first quiescent round boundary at or after this model version.
    pub at_version: u64,
}

impl MigrationSpec {
    /// Parses the CLI form `drain:<server>:<at_version>` or `rebalance:<at_version>`.
    /// Returns `None` on any malformed component.
    pub fn parse(spec: &str) -> Option<Self> {
        let mut parts = spec.split(':');
        let command = match parts.next()? {
            "drain" => MigrationCommand::Drain(parts.next()?.parse().ok()?),
            "rebalance" => MigrationCommand::Rebalance,
            _ => return None,
        };
        let at_version: u64 = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(Self {
            command,
            at_version,
        })
    }

    /// Renders the spec back into the CLI form accepted by [`MigrationSpec::parse`].
    pub fn to_spec(&self) -> String {
        match self.command {
            MigrationCommand::Drain(server) => format!("drain:{server}:{}", self.at_version),
            MigrationCommand::Rebalance => format!("rebalance:{}", self.at_version),
        }
    }
}

/// Which process a [`FaultPlan`] kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultRole {
    /// The worker with this rank.
    Worker(usize),
    /// The shard server with this index (the classic single server is index 0).
    ShardServer(usize),
    /// The group coordinator.
    Coordinator,
}

/// In which protocol phase a [`FaultPlan`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// While a push is being produced or applied.
    Push,
    /// While a pull is being served.
    Pull,
    /// While the faulting worker is blocked by the synchronization gate.
    GateBlocked,
    /// Immediately after a checkpoint was written.
    Checkpoint,
    /// During the migration prepare phase (pushes frozen, before any shard moved).
    MigratePrepare,
    /// During a migration shard transfer (source extracting or destination staging).
    MigrateTransfer,
    /// During the migration commit broadcast (some peers on the new epoch, some not).
    MigrateCommit,
}

/// What happens after a [`FaultPlan`] kills its process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The process is restarted from its checkpoint and the run completes.
    KillRestart,
    /// The process is evicted: workers are reaped via the `ClientLost` path and the
    /// run continues (or, for servers, aborts with a typed error).
    KillEvict,
}

/// A structured fault injection: `role` dies in `phase` after `after` occurrences of
/// that phase, with `action` deciding whether the chaos harness restarts or evicts it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Which process dies.
    pub role: FaultRole,
    /// In which protocol phase it dies.
    pub phase: FaultPhase,
    /// Restart from checkpoint, or evict.
    pub action: FaultAction,
    /// Fire after this many occurrences of the phase (1-based: `1` = first).
    pub after: u64,
}

impl FaultPlan {
    /// Parses the CLI form `role:phase:action:after` where role is `worker<rank>`,
    /// `server<index>` or `coord`; phase is `push`, `pull`, `gate` or `ckpt`; action
    /// is `restart` or `evict`. Returns `None` on any malformed component.
    pub fn parse(spec: &str) -> Option<Self> {
        let mut parts = spec.split(':');
        let role = parts.next()?;
        let role = if let Some(rank) = role.strip_prefix("worker") {
            FaultRole::Worker(rank.parse().ok()?)
        } else if let Some(index) = role.strip_prefix("server") {
            FaultRole::ShardServer(index.parse().ok()?)
        } else if role == "coord" {
            FaultRole::Coordinator
        } else {
            return None;
        };
        let phase = match parts.next()? {
            "push" => FaultPhase::Push,
            "pull" => FaultPhase::Pull,
            "gate" => FaultPhase::GateBlocked,
            "ckpt" => FaultPhase::Checkpoint,
            "prepare" => FaultPhase::MigratePrepare,
            "transfer" => FaultPhase::MigrateTransfer,
            "commit" => FaultPhase::MigrateCommit,
            _ => return None,
        };
        let action = match parts.next()? {
            "restart" => FaultAction::KillRestart,
            "evict" => FaultAction::KillEvict,
            _ => return None,
        };
        let after: u64 = parts.next()?.parse().ok()?;
        if parts.next().is_some() || after == 0 {
            return None;
        }
        Some(Self {
            role,
            phase,
            action,
            after,
        })
    }

    /// Renders the plan back into the CLI form accepted by [`FaultPlan::parse`].
    pub fn to_spec(&self) -> String {
        let role = match self.role {
            FaultRole::Worker(rank) => format!("worker{rank}"),
            FaultRole::ShardServer(index) => format!("server{index}"),
            FaultRole::Coordinator => "coord".to_string(),
        };
        let phase = match self.phase {
            FaultPhase::Push => "push",
            FaultPhase::Pull => "pull",
            FaultPhase::GateBlocked => "gate",
            FaultPhase::Checkpoint => "ckpt",
            FaultPhase::MigratePrepare => "prepare",
            FaultPhase::MigrateTransfer => "transfer",
            FaultPhase::MigrateCommit => "commit",
        };
        let action = match self.action {
            FaultAction::KillRestart => "restart",
            FaultAction::KillEvict => "evict",
        };
        format!("{role}:{phase}:{action}:{}", self.after)
    }
}

/// Checkpoint persistence settings carried by a [`JobConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Directory the role-conventional checkpoint files live in.
    pub dir: std::path::PathBuf,
    /// Write a checkpoint every this many applied pushes.
    pub every_pushes: u64,
    /// Restore from the directory's checkpoints at startup instead of starting fresh.
    pub restore: bool,
}

impl JobConfig {
    /// A small default configuration: MLP on a synthetic vector task, two workers.
    pub fn small(policy: PolicyKind) -> Self {
        Self {
            model: ModelSpec::Mlp {
                input_dim: 16,
                hidden: vec![24],
                classes: 4,
            },
            data: DataSpec::Vector(dssp_data::SyntheticVectorSpec {
                classes: 4,
                dim: 16,
                train_size: 512,
                test_size: 128,
                noise_std: 0.7,
            }),
            num_workers: 2,
            policy,
            batch_size: 16,
            epochs: 2,
            sgd: SgdConfig::default(),
            seed: 11,
            eval_every_pushes: 16,
            eval_max_examples: 128,
            extra_compute_delay_ms: Vec::new(),
            shards: 1,
            servers: 1,
            delta_pulls: true,
            deterministic: false,
            fail_after_pushes: None,
            fault_plan: None,
            checkpoint: None,
            stall_timeout_ms: 30_000,
            event_log: None,
            metrics_addr: None,
            migration: None,
            migrate_threshold: None,
        }
    }

    /// A small configuration on the paper's downsized-AlexNet analogue (convolutional
    /// image model), two workers.
    pub fn small_alexnet(policy: PolicyKind) -> Self {
        Self {
            model: ModelSpec::DownsizedAlexNet {
                image_side: 8,
                classes: 4,
            },
            data: DataSpec::Image(
                dssp_data::SyntheticImageSpec::cifar10_like()
                    .with_classes(4)
                    .with_image_side(8)
                    .with_sizes(64, 32),
            ),
            batch_size: 8,
            epochs: 1,
            eval_every_pushes: 4,
            eval_max_examples: 32,
            seed: 5,
            ..Self::small(policy)
        }
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero workers, class mismatch, zero
    /// shards, or a delay vector whose length differs from the worker count).
    pub fn validate(&self) {
        assert!(self.num_workers > 0, "need at least one worker");
        assert!(self.shards > 0, "need at least one storage shard");
        assert!(self.servers > 0, "need at least one shard server");
        assert!(
            self.servers <= self.shards,
            "cannot spread {} shards over {} shard servers (every server must own at \
             least one shard; raise --shards)",
            self.shards,
            self.servers
        );
        assert_eq!(
            self.model.classes(),
            self.data.classes(),
            "model and dataset class counts must agree"
        );
        assert!(
            self.extra_compute_delay_ms.is_empty()
                || self.extra_compute_delay_ms.len() == self.num_workers,
            "extra_compute_delay_ms must be empty or have one entry per worker"
        );
    }

    /// A stable fingerprint of every training-relevant field (FNV-1a over a canonical
    /// rendering). The networked runtime embeds it in the `Hello` handshake so a server
    /// and its workers refuse to train under silently different configurations.
    pub fn digest(&self) -> u64 {
        let canonical = format!(
            "{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            self.stable_canonical(),
            self.fail_after_pushes,
            self.fault_plan,
            self.checkpoint,
            self.event_log,
            self.metrics_addr,
            self.migration,
            self.migrate_threshold,
        );
        fnv1a(&canonical)
    }

    /// Like [`JobConfig::digest`] but masking the chaos, persistence and
    /// observability hooks (`fail_after_pushes`, `fault_plan`, `checkpoint`,
    /// `event_log`, `metrics_addr`, `migration`, `migrate_threshold`), which change
    /// how a run is interrupted, stored, observed or re-sharded but not what it
    /// computes. Checkpoints record *this* digest, so a
    /// restarted process — which runs without the fault plan that killed its
    /// predecessor — still accepts the predecessor's checkpoints.
    pub fn stable_digest(&self) -> u64 {
        fnv1a(&self.stable_canonical())
    }

    /// Canonical rendering of the training-relevant (chaos-masked) fields.
    fn stable_canonical(&self) -> String {
        format!(
            "{:?}|{:?}|{}|{:?}|{}|{}|{:?}|{}|{}|{}|{:?}|{}|{}|{}|{}",
            self.model,
            self.data,
            self.num_workers,
            self.policy,
            self.batch_size,
            self.epochs,
            self.sgd,
            self.seed,
            self.eval_every_pushes,
            self.eval_max_examples,
            self.extra_compute_delay_ms,
            self.shards,
            self.servers,
            self.delta_pulls,
            self.deterministic,
        )
    }

    /// Per-worker iteration target for a shard of `shard_len` examples.
    fn target_iterations(&self, shard_len: usize) -> u64 {
        (self.epochs as u64) * (shard_len.div_ceil(self.batch_size) as u64)
    }
}

/// FNV-1a over a canonical string rendering (the digest hash both fingerprints share).
fn fnv1a(canonical: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in canonical.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One worker's training step-loop state: its model replica, shard iterator and scratch
/// buffers. Transport-agnostic — the surrounding runtime decides how weights arrive and
/// where gradients go.
pub struct WorkerStep {
    rank: usize,
    model: Sequential,
    batches: BatchIter,
    loss_fn: SoftmaxCrossEntropy,
    ws: Workspace,
    grad_logits: Tensor,
    target: u64,
    completed: u64,
    delay: Option<Duration>,
}

impl std::fmt::Debug for WorkerStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerStep")
            .field("rank", &self.rank)
            .field("target", &self.target)
            .field("completed", &self.completed)
            .finish()
    }
}

impl WorkerStep {
    /// Builds the step-loop state for worker `rank`: regenerates the (deterministic)
    /// dataset from the job seed and takes the rank's shard. Every substrate — and, in
    /// the networked runtime, every *process* — arrives at identical state this way.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent or `rank` is out of range.
    pub fn for_rank(config: &JobConfig, rank: usize) -> Self {
        config.validate();
        assert!(rank < config.num_workers, "worker rank out of range");
        let dataset = config.data.generate(config.seed);
        let shard = dataset
            .shard_train(config.num_workers)
            .into_iter()
            .nth(rank)
            .expect("shard for every rank");
        Self::with_shard(config, rank, shard)
    }

    /// Like [`WorkerStep::for_rank`] but takes rank's shard directly, for substrates
    /// that already generated the dataset in-process (the threaded runtime shares one
    /// generation across the server and all workers).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent or `rank` is out of range.
    pub fn with_shard(config: &JobConfig, rank: usize, shard: dssp_data::Shard) -> Self {
        config.validate();
        assert!(rank < config.num_workers, "worker rank out of range");
        let target = config.target_iterations(shard.len());
        let batches = BatchIter::new(
            shard,
            config.batch_size,
            config.seed.wrapping_add(rank as u64 + 1),
        );
        Self {
            rank,
            model: config.model.build(config.seed),
            batches,
            loss_fn: SoftmaxCrossEntropy::new(),
            ws: Workspace::new(),
            grad_logits: Tensor::default(),
            target,
            completed: 0,
            delay: config
                .extra_compute_delay_ms
                .get(rank)
                .copied()
                .filter(|&ms| ms > 0)
                .map(Duration::from_millis),
        }
    }

    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total iterations this worker will run.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Iterations completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Whether the worker has run all of its iterations.
    pub fn finished(&self) -> bool {
        self.completed >= self.target
    }

    /// Completed passes over this worker's shard.
    pub fn epoch(&self) -> usize {
        self.batches.epoch()
    }

    /// Total number of model parameters (the flat weight/gradient vector length).
    /// Group workers size their global weight cache from this before the first pull.
    pub fn param_len(&self) -> usize {
        self.model.param_len()
    }

    /// Fast-forwards the worker past its first `completed` iterations without running
    /// them: draws and discards that many mini-batches so the (deterministic) data
    /// stream sits exactly where the `completed`-th iteration left it. This is the
    /// restart path — a worker rejoining at a checkpointed clock replays its batch
    /// schedule, not its compute, and then continues bitwise-identically to a worker
    /// that never died.
    ///
    /// # Panics
    ///
    /// Panics if called after the worker already ran iterations, or if `completed`
    /// exceeds the iteration target.
    pub fn skip_to(&mut self, completed: u64) {
        assert_eq!(self.completed, 0, "skip_to only applies to a fresh worker");
        assert!(
            completed <= self.target,
            "cannot skip past the iteration target"
        );
        for _ in 0..completed {
            let _ = self.batches.next_batch();
        }
        self.completed = completed;
    }

    /// Runs one training iteration on `weights`: installs them in the local replica,
    /// draws the next mini-batch, and returns the flat gradient vector to push.
    /// Allocating convenience over [`WorkerStep::compute_gradient_into`] for substrates
    /// that move the gradient across a thread boundary (the server consumes the
    /// vector).
    pub fn compute_gradient(&mut self, weights: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.compute_gradient_into(weights, &mut out);
        out
    }

    /// Runs one training iteration on `weights`, writing the flat gradient into the
    /// caller-owned `out` buffer (resized to the parameter count; no allocation once
    /// warm). The networked worker reuses one buffer across its whole run and encodes
    /// the push frame straight from it.
    ///
    /// Applies the configured artificial compute delay first (heterogeneity emulation).
    pub fn compute_gradient_into(&mut self, weights: &[f32], out: &mut Vec<f32>) {
        if let Some(d) = self.delay {
            std::thread::sleep(d);
        }
        self.model.set_params_flat(weights);
        let (x, labels) = self.batches.next_batch();
        let logits = self.model.forward_ws(&x, true, &mut self.ws);
        let _ = self
            .loss_fn
            .loss_and_grad_into(logits, &labels, &mut self.grad_logits);
        self.model.zero_grads();
        self.model.backward_ws(&self.grad_logits, &mut self.ws);
        self.completed += 1;
        out.resize(self.model.param_len(), 0.0);
        self.model.read_grads_into(out);
    }
}

/// One event arriving at the server from a worker, as seen by [`ServerLoop`].
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerEvent {
    /// The worker pushed the gradients of its `iteration`-th iteration (1-based).
    Push {
        /// Pushing worker's rank.
        worker: usize,
        /// 1-based iteration number of this push.
        iteration: u64,
        /// Flat gradient vector.
        grads: Vec<f32>,
    },
    /// The worker finished all of its iterations.
    Done {
        /// Finishing worker's rank.
        worker: usize,
        /// Iterations it completed.
        iterations: u64,
        /// Epochs it completed.
        epochs: usize,
        /// Total time it spent waiting for deferred `OK`s, in seconds.
        waiting_time_s: f64,
    },
    /// The worker asks for the current weights. Only the networked runtime uses this
    /// variant — pulls are served by the transport layer and never reach
    /// [`ServerLoop::handle`]; it exists so [`DeterministicGate`] can order pulls
    /// relative to pushes.
    Pull {
        /// Pulling worker's rank.
        worker: usize,
    },
}

impl WorkerEvent {
    /// The rank the event came from.
    pub fn worker(&self) -> usize {
        match *self {
            WorkerEvent::Push { worker, .. }
            | WorkerEvent::Done { worker, .. }
            | WorkerEvent::Pull { worker } => worker,
        }
    }
}

/// An `OK` the server owes a worker after handling an event: the worker may start its
/// next iteration. The substrate decides how to deliver it (channel send with fresh
/// weights, or a `PushReply` frame followed by a served pull).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OkReply {
    /// The worker to release.
    pub worker: usize,
    /// Extra-iteration credits the DSSP controller granted at this event (0 for
    /// catch-up releases and non-DSSP policies).
    pub granted_extra: u64,
}

/// Where a [`ServerLoop`]'s parameter storage lives.
enum Backend {
    /// Storage and gating in one process — the classic topology every pre-group
    /// substrate uses.
    Local(ParameterServer),
    /// Gating only: the weights live on remote shard servers and only clock messages
    /// reach this loop (the `dssp-coord` coordinator). Pushes carry no gradients and
    /// evaluation weights are supplied externally
    /// ([`ServerLoop::record_eval_external`]).
    Clock(SyncGate),
}

/// The server decision-loop state shared by the threaded and networked runtimes: owns
/// the [`ParameterServer`] (or, in a group coordinator, just its gating half),
/// periodic evaluation, and the run summary.
pub struct ServerLoop {
    backend: Backend,
    eval_model: Sequential,
    eval_batch: (Tensor, Vec<usize>),
    eval_ws: Workspace,
    eval_every: u64,
    last_eval: u64,
    points: Vec<TracePoint>,
    /// Reusable scratch for the workers released by a push, so the networked hot path
    /// ([`ServerLoop::handle_push_slice`]) allocates nothing per message.
    released_scratch: Vec<usize>,
    summaries: Vec<Option<WorkerSummary>>,
    done: Vec<bool>,
    done_count: usize,
    targets: Vec<u64>,
    policy_label: String,
    model_name: String,
    num_workers: usize,
    deterministic: bool,
    tick: f64,
    fail_after: Option<u64>,
    aborted: bool,
    /// Set when a clock-only loop crosses its evaluation threshold: the logical/wall
    /// time the pending evaluation must be stamped with. The coordinator assembles the
    /// group's weights and calls [`ServerLoop::record_eval_external`].
    pending_eval: Option<f64>,
}

impl std::fmt::Debug for ServerLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerLoop")
            .field("policy", &self.policy_label)
            .field("version", &self.version())
            .field("done", &self.done_count)
            .finish()
    }
}

impl ServerLoop {
    /// Builds the full server side of a job: dataset, evaluation batch, initial model
    /// weights and the gated [`ParameterServer`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn new(config: &JobConfig) -> Self {
        config.validate();
        let dataset = config.data.generate(config.seed);
        Self::with_dataset(config, &dataset)
    }

    /// Like [`ServerLoop::new`] but reuses an already generated dataset (the threaded
    /// runtime shares one generation between the server and all worker shards).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn with_dataset(config: &JobConfig, dataset: &dssp_data::Dataset) -> Self {
        Self::build(config, dataset, false)
    }

    /// Builds the **gating-only** server side of a job: the same evaluation batch, run
    /// summary and decision logic as [`ServerLoop::new`], but no parameter storage —
    /// the weights live on remote shard servers. This is the group coordinator's loop:
    /// it handles [`WorkerEvent::Push`] events with empty gradient vectors (only the
    /// clock matters), raises [`ServerLoop::take_pending_eval`] when an evaluation is
    /// due, and is finished with [`ServerLoop::finish_external`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn clock_only(config: &JobConfig) -> Self {
        config.validate();
        let dataset = config.data.generate(config.seed);
        Self::build(config, &dataset, true)
    }

    fn build(config: &JobConfig, dataset: &dssp_data::Dataset, clock_only: bool) -> Self {
        config.validate();
        let targets: Vec<u64> = dataset
            .shard_train(config.num_workers)
            .iter()
            .map(|shard| config.target_iterations(shard.len()))
            .collect();
        let reference = config.model.build(config.seed);
        let backend = if clock_only {
            Backend::Clock(SyncGate::new(config.num_workers, config.policy))
        } else {
            let initial_params = reference.params_flat();
            let sgd = Sgd::new(config.sgd.clone(), initial_params.len());
            Backend::Local(ParameterServer::new(
                initial_params,
                sgd,
                ServerConfig::new(config.num_workers, config.policy).with_shards(config.shards),
            ))
        };
        Self {
            backend,
            eval_model: reference,
            eval_batch: dataset.test_batch(config.eval_max_examples),
            eval_ws: Workspace::new(),
            eval_every: config.eval_every_pushes,
            last_eval: 0,
            points: Vec::new(),
            released_scratch: Vec::new(),
            summaries: vec![None; config.num_workers],
            done: vec![false; config.num_workers],
            done_count: 0,
            targets,
            policy_label: config.policy.label(),
            model_name: config.model.display_name(),
            num_workers: config.num_workers,
            deterministic: config.deterministic,
            tick: 0.0,
            fail_after: config.fail_after_pushes,
            aborted: false,
            pending_eval: None,
        }
    }

    /// Per-worker iteration targets (used by workers, the gate, and launch tooling).
    pub fn targets(&self) -> &[u64] {
        &self.targets
    }

    /// Total number of model parameters. Available in both backends (the evaluation
    /// replica knows the model size even when the weights live remotely), so a group
    /// coordinator can size its assembly buffers.
    pub fn param_len(&self) -> usize {
        self.eval_model.param_len()
    }

    /// The underlying parameter server (weights, clocks, statistics).
    ///
    /// # Panics
    ///
    /// Panics on a clock-only loop, which has no local parameter store.
    pub fn server(&self) -> &ParameterServer {
        match &self.backend {
            Backend::Local(ps) => ps,
            Backend::Clock(_) => panic!("clock-only server loops have no parameter store"),
        }
    }

    /// Whether this loop holds the weights locally (`false` for a group coordinator,
    /// whose weights live on its shard servers).
    pub fn has_store(&self) -> bool {
        matches!(self.backend, Backend::Local(_))
    }

    /// Copies the current global weights (what an `OK` or pull reply ships). The
    /// networked runtime serves pulls zero-copy from the store instead
    /// (`ParameterServer::store`); this allocating form remains for the threaded
    /// runtime, whose `OK`s move an owned weight vector across a channel.
    ///
    /// # Panics
    ///
    /// Panics on a clock-only loop.
    pub fn pull(&self) -> Vec<f32> {
        self.server().weights().to_vec()
    }

    /// Total pushes applied so far.
    pub fn version(&self) -> u64 {
        match &self.backend {
            Backend::Local(ps) => ps.version(),
            Backend::Clock(gate) => gate.version(),
        }
    }

    /// Number of workers currently blocked by the synchronization policy (waiting for
    /// the slowest worker to catch up). Feeds the serving loops' blocked-worker gauge.
    pub fn blocked_count(&self) -> usize {
        match &self.backend {
            Backend::Local(ps) => ps.blocked_workers().len(),
            Backend::Clock(gate) => gate.blocked_workers().len(),
        }
    }

    /// Whether every worker has reported [`WorkerEvent::Done`].
    pub fn all_done(&self) -> bool {
        self.done_count >= self.num_workers
    }

    /// Whether one specific worker has reported [`WorkerEvent::Done`].
    pub fn worker_done(&self, worker: usize) -> bool {
        self.done[worker]
    }

    /// Whether the chaos hook ([`JobConfig::fail_after_pushes`]) has tripped; the
    /// substrate must stop the run and shut workers down.
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    /// Whether this loop runs on the logical clock (deterministic mode).
    pub fn deterministic(&self) -> bool {
        self.deterministic
    }

    /// The number of pushes received from one worker so far (the clock a rejoining
    /// worker is admitted at).
    pub fn push_count(&self, worker: usize) -> u64 {
        match &self.backend {
            Backend::Local(ps) => ps.clocks().count(worker),
            Backend::Clock(gate) => gate.clocks().count(worker),
        }
    }

    /// All per-worker push counts, in rank order.
    pub fn push_counts(&self) -> Vec<u64> {
        (0..self.num_workers).map(|w| self.push_count(w)).collect()
    }

    /// The synchronization statistics accumulated so far (both backends).
    pub fn stats(&self) -> &dssp_ps::ServerStats {
        match &self.backend {
            Backend::Local(ps) => ps.stats(),
            Backend::Clock(gate) => gate.stats(),
        }
    }

    /// Captures this loop's durable state as a [`dssp_ps::Checkpoint`] stamped with
    /// `job_digest` (callers pass [`JobConfig::stable_digest`]): store + optimizer +
    /// gate for a local loop, gate only for a clock-only loop, plus the logical tick so
    /// a restored loop keeps feeding the interval table monotonic timestamps.
    pub fn snapshot(&self, job_digest: u64) -> dssp_ps::Checkpoint {
        let (store, gate) = match &self.backend {
            Backend::Local(ps) => {
                let s = ps.store();
                (
                    Some(dssp_ps::StoreSnapshot {
                        flat: s.as_flat().to_vec(),
                        offsets: s.offsets().iter().map(|&o| o as u64).collect(),
                        versions: s.versions().to_vec(),
                        velocity: ps.optimizer().velocity().to_vec(),
                        epoch: ps.optimizer().current_epoch() as u64,
                    }),
                    Some(ps.gate().snapshot()),
                )
            }
            Backend::Clock(g) => (None, Some(g.snapshot())),
        };
        dssp_ps::Checkpoint {
            job_digest,
            tick: self.tick,
            store,
            gate,
            layout: None,
        }
    }

    /// Rebuilds a server loop from a checkpoint taken by [`ServerLoop::snapshot`]
    /// under the same (chaos-masked) job configuration. Worker `Done` bookkeeping
    /// restarts empty: every worker — including ones already at their target —
    /// reconnects and re-announces its completion, repopulating the summaries.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's sections do not match the loop kind implied by the
    /// configuration (`clock_only` needs a gate section; a full loop needs both), or
    /// if restored table sizes disagree with the configuration.
    pub fn restore(config: &JobConfig, ckpt: &dssp_ps::Checkpoint, clock_only: bool) -> Self {
        config.validate();
        let dataset = config.data.generate(config.seed);
        let mut sl = Self::build(config, &dataset, clock_only);
        let gate_snap = ckpt
            .gate
            .as_ref()
            .expect("checkpoint for a server loop carries a gate section");
        assert_eq!(
            gate_snap.counts.len(),
            config.num_workers,
            "checkpointed worker count disagrees with the configuration"
        );
        let gate = SyncGate::restore(config.policy, gate_snap);
        sl.backend = if clock_only {
            Backend::Clock(gate)
        } else {
            let store_snap = ckpt
                .store
                .as_ref()
                .expect("checkpoint for a storage-owning loop carries a store section");
            let store = dssp_ps::ShardedStore::restore(
                store_snap.flat.clone(),
                store_snap.offsets.iter().map(|&o| o as usize).collect(),
                store_snap.versions.clone(),
            );
            let sgd = Sgd::restore(
                config.sgd.clone(),
                store_snap.velocity.clone(),
                store_snap.epoch as usize,
            );
            Backend::Local(ParameterServer::restore(
                store,
                sgd,
                gate,
                ServerConfig::new(config.num_workers, config.policy).with_shards(config.shards),
            ))
        };
        sl.tick = ckpt.tick;
        sl.last_eval = sl.version();
        sl
    }

    /// Evicts a dead worker mid-run: reclaims its DSSP credits, retires its clock so
    /// the gate stops waiting on it, synthesizes the worker summary its `Done` will
    /// never deliver (its push count so far, zero waiting time), and returns the `OK`s
    /// its departure releases. Idempotent per worker.
    pub fn evict_worker(&mut self, worker: usize, wall_now: f64) -> Vec<OkReply> {
        if self.done[worker] {
            return Vec::new();
        }
        let now = self.clock(wall_now);
        let mut released = Vec::new();
        match &mut self.backend {
            Backend::Local(ps) => {
                let (_, r) = ps.evict_worker(worker, now);
                released = r;
            }
            Backend::Clock(gate) => {
                gate.evict_into(worker, now, &mut released);
            }
        }
        self.summaries[worker] = Some(WorkerSummary {
            worker,
            iterations: self.push_count(worker),
            epochs: 0,
            waiting_time_s: 0.0,
        });
        self.done[worker] = true;
        self.done_count += 1;
        released
            .into_iter()
            .filter(|&r| !self.done[r])
            .map(|r| OkReply {
                worker: r,
                granted_extra: 0,
            })
            .collect()
    }

    fn clock(&mut self, wall_now: f64) -> f64 {
        if self.deterministic {
            self.tick += 1.0;
            self.tick
        } else {
            wall_now
        }
    }

    /// Handles one worker event at wall-clock time `wall_now` (seconds since run start;
    /// ignored in deterministic mode, where a logical event counter feeds the policy).
    ///
    /// Returns the `OK`s now owed, pusher first when its push was granted. Workers that
    /// already reported `Done` are filtered out (their `OK`s have nowhere to go).
    ///
    /// # Panics
    ///
    /// Panics on a [`WorkerEvent::Pull`] — pulls are transport-level and must be served
    /// by the substrate.
    pub fn handle(&mut self, event: WorkerEvent, wall_now: f64) -> Vec<OkReply> {
        match event {
            WorkerEvent::Push { worker, grads, .. } => {
                let mut replies = Vec::new();
                self.handle_push_slice(worker, &grads, wall_now, &mut replies);
                replies
            }
            WorkerEvent::Done {
                worker,
                iterations,
                epochs,
                waiting_time_s,
            } => {
                let now = self.clock(wall_now);
                if self.done[worker] {
                    return Vec::new();
                }
                self.summaries[worker] = Some(WorkerSummary {
                    worker,
                    iterations,
                    epochs,
                    waiting_time_s,
                });
                self.done[worker] = true;
                self.done_count += 1;
                let mut released = Vec::new();
                match &mut self.backend {
                    Backend::Local(ps) => released = ps.retire_worker(worker, now),
                    Backend::Clock(gate) => gate.retire_into(worker, now, &mut released),
                }
                released
                    .into_iter()
                    .filter(|&released| !self.done[released])
                    .map(|released| OkReply {
                        worker: released,
                        granted_extra: 0,
                    })
                    .collect()
            }
            WorkerEvent::Pull { worker } => {
                panic!("pull from worker {worker} reached ServerLoop::handle; pulls are transport-level")
            }
        }
    }

    /// The borrowed-gradient push path: applies one push and appends the `OK`s now
    /// owed (pusher first when granted) to the caller-owned `replies` buffer, which is
    /// **not** cleared first. Equivalent to [`ServerLoop::handle`] with a
    /// [`WorkerEvent::Push`], but the gradient is borrowed and all bookkeeping reuses
    /// member scratch, so the networked server's steady-state command loop performs no
    /// heap allocation per push (periodic evaluations excepted).
    ///
    /// Returns the policy's [`dssp_ps::PushDecision`] for this push — whether the
    /// pusher proceeds, any r* credit granted, and the pusher's staleness — so serving
    /// loops can export gate activity (events, metrics) without re-deriving clock
    /// state.
    pub fn handle_push_slice(
        &mut self,
        worker: usize,
        grads: &[f32],
        wall_now: f64,
        replies: &mut Vec<OkReply>,
    ) -> dssp_ps::PushDecision {
        let now = self.clock(wall_now);
        self.released_scratch.clear();
        let decision = match &mut self.backend {
            Backend::Local(ps) => {
                ps.handle_push_into(worker, grads, now, &mut self.released_scratch)
            }
            // Clock-only loops receive no gradients (the worker applied them on the
            // shard servers); only the synchronization state advances here.
            Backend::Clock(gate) => gate.on_push(worker, now, &mut self.released_scratch),
        };
        if decision.ok_now && !self.done[worker] {
            replies.push(OkReply {
                worker,
                granted_extra: decision.granted_extra,
            });
        }
        for i in 0..self.released_scratch.len() {
            let released = self.released_scratch[i];
            if !self.done[released] {
                replies.push(OkReply {
                    worker: released,
                    granted_extra: 0,
                });
            }
        }
        if self.version() - self.last_eval >= self.eval_every {
            match &self.backend {
                Backend::Local(_) => self.record_eval(now),
                // The weights are remote: remember the evaluation is due and at what
                // clock value; the coordinator pulls the group's weights and calls
                // `record_eval_external` before processing the next event.
                Backend::Clock(_) => {
                    self.last_eval = self.version();
                    self.pending_eval = Some(now);
                }
            }
        }
        if let Some(limit) = self.fail_after {
            if self.version() >= limit {
                self.aborted = true;
            }
        }
        decision
    }

    /// [`ServerLoop::handle`] plus the deterministic-gate bookkeeping both substrates
    /// need: reports the push outcome and releases to the gate (when one is active) so
    /// its view of which workers are runnable stays in lockstep with the policy. The
    /// caller only delivers the returned `OK`s.
    pub fn handle_gated(
        &mut self,
        gate: &mut Option<DeterministicGate>,
        event: WorkerEvent,
        wall_now: f64,
    ) -> Vec<OkReply> {
        let pushed = match &event {
            WorkerEvent::Push {
                worker, iteration, ..
            } => Some((*worker, *iteration)),
            _ => None,
        };
        let replies = self.handle(event, wall_now);
        if let Some(g) = gate.as_mut() {
            if let Some((pusher, iteration)) = pushed {
                let ok = replies.iter().any(|r| r.worker == pusher);
                g.on_push_processed(pusher, iteration, ok);
            }
            for reply in &replies {
                if pushed.map(|(p, _)| p) != Some(reply.worker) {
                    g.on_released(reply.worker);
                }
            }
        }
        replies
    }

    fn record_eval(&mut self, now: f64) {
        self.last_eval = self.version();
        let Backend::Local(ps) = &self.backend else {
            panic!("clock-only loops evaluate via record_eval_external");
        };
        push_eval_point(
            &mut self.eval_model,
            &self.eval_batch,
            &mut self.eval_ws,
            &mut self.points,
            ps.version(),
            ps.weights(),
            now,
        );
    }

    /// Takes the pending evaluation raised by a clock-only push, if any: the returned
    /// value is the clock time the evaluation point must be stamped with. The caller
    /// assembles the group's current weights and passes both to
    /// [`ServerLoop::record_eval_external`].
    pub fn take_pending_eval(&mut self) -> Option<f64> {
        self.pending_eval.take()
    }

    /// Records an evaluation point from externally supplied weights (a group
    /// coordinator's view of its shard servers' slices, assembled in shard order).
    pub fn record_eval_external(&mut self, weights: &[f32], now: f64) {
        let pushes = self.version();
        push_eval_point(
            &mut self.eval_model,
            &self.eval_batch,
            &mut self.eval_ws,
            &mut self.points,
            pushes,
            weights,
            now,
        );
    }

    /// Final evaluation and trace assembly. `wall_total` is the wall-clock duration of
    /// the run (replaced by the logical clock in deterministic mode).
    ///
    /// # Panics
    ///
    /// Panics if some worker never reported `Done` (callers must check
    /// [`ServerLoop::all_done`] / [`ServerLoop::aborted`] first), or on a clock-only
    /// loop (use [`ServerLoop::finish_external`]).
    pub fn finish(mut self, wall_total: f64) -> RunTrace {
        let total = if self.deterministic {
            self.tick
        } else {
            wall_total
        };
        self.record_eval(total);
        self.into_trace(total)
    }

    /// [`ServerLoop::finish`] for clock-only loops: the final evaluation runs on the
    /// externally supplied weights (the group's assembled model).
    ///
    /// # Panics
    ///
    /// Panics if some worker never reported `Done`.
    pub fn finish_external(mut self, weights: &[f32], wall_total: f64) -> RunTrace {
        let total = if self.deterministic {
            self.tick
        } else {
            wall_total
        };
        self.last_eval = self.version();
        self.record_eval_external(weights, total);
        self.into_trace(total)
    }

    fn into_trace(self, total: f64) -> RunTrace {
        let stats = match &self.backend {
            Backend::Local(ps) => ps.stats().clone(),
            Backend::Clock(gate) => gate.stats().clone(),
        };
        RunTrace {
            policy: self.policy_label,
            model: self.model_name,
            workers: self.num_workers,
            points: self.points,
            total_time_s: total,
            total_pushes: match &self.backend {
                Backend::Local(ps) => ps.version(),
                Backend::Clock(gate) => gate.version(),
            },
            worker_summaries: self
                .summaries
                .into_iter()
                .map(|s| s.expect("summary recorded for every worker"))
                .collect(),
            server_stats: stats,
            group_servers: Vec::new(),
        }
    }
}

/// Evaluates `weights` on the held-out batch and appends the resulting trace point —
/// the shared body of the local and external evaluation paths (free function so the
/// field borrows stay disjoint).
#[allow(clippy::too_many_arguments)]
fn push_eval_point(
    eval_model: &mut Sequential,
    eval_batch: &(Tensor, Vec<usize>),
    eval_ws: &mut Workspace,
    points: &mut Vec<TracePoint>,
    pushes: u64,
    weights: &[f32],
    now: f64,
) {
    eval_model.set_params_flat(weights);
    let logits = eval_model.forward_ws(&eval_batch.0, false, eval_ws);
    let acc = accuracy(logits, &eval_batch.1);
    points.push(TracePoint {
        time_s: now,
        pushes,
        epoch: 0,
        test_accuracy: f64::from(acc),
        train_loss: 0.0,
    });
}

/// Gate state of one worker, from the server's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateState {
    /// Computing; its next event will be a push (or its final push's `Done`).
    Running,
    /// Released but yet to collect weights; its next event will be a pull
    /// (pull-step substrates only).
    AwaitingPull,
    /// Blocked by the policy; it will send nothing until released.
    Blocked,
    /// Its final push was dispatched; its next event will be `Done`.
    Draining,
    /// Retired.
    Done,
}

/// Imposes a canonical, arrival-order-independent processing order on worker events
/// (see the module docs on deterministic mode).
///
/// The substrate feeds every incoming event through [`DeterministicGate::offer`] and
/// drains [`DeterministicGate::next`]; an event is only released once every worker that
/// could still produce one has delivered its next event, and among the queued heads the
/// smallest `(iteration, rank)` key wins — a Kahn-style merge that is fair across
/// workers and independent of arrival timing. After processing a push the substrate
/// reports the outcome ([`DeterministicGate::on_push_processed`] /
/// [`DeterministicGate::on_released`]) so the gate can track which workers are
/// runnable.
#[derive(Debug)]
pub struct DeterministicGate {
    queues: Vec<VecDeque<WorkerEvent>>,
    states: Vec<GateState>,
    targets: Vec<u64>,
    /// Iteration of the last dispatched push per worker; a silent runnable worker's
    /// next event therefore has key `last_key + 1`, which bounds how long dispatch must
    /// wait for it.
    last_key: Vec<u64>,
    /// Whether released workers fetch weights with an explicit pull event (networked
    /// runtime) or receive them inline with the `OK` (threaded runtime).
    pull_step: bool,
}

impl DeterministicGate {
    /// Creates a gate for workers with the given iteration targets. `pull_step` says
    /// whether the substrate's workers send an explicit pull after each `OK`.
    pub fn new(targets: Vec<u64>, pull_step: bool) -> Self {
        let n = targets.len();
        Self {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            states: vec![
                if pull_step {
                    GateState::AwaitingPull
                } else {
                    GateState::Running
                };
                n
            ],
            targets,
            last_key: vec![0; n],
            pull_step,
        }
    }

    /// Creates a gate for a run restored from a checkpoint where each worker has
    /// already pushed `counts[w]` times: dispatch bookkeeping starts from those
    /// iteration keys instead of zero, so a rejoining worker's first push (iteration
    /// `counts[w] + 1`) sorts exactly where it would have in the unfailed run. Workers
    /// already at their target are expected to re-announce only their `Done`.
    ///
    /// # Panics
    ///
    /// Panics if `counts` and `targets` lengths differ or a count exceeds its target.
    pub fn resume(targets: Vec<u64>, counts: &[u64], pull_step: bool) -> Self {
        assert_eq!(targets.len(), counts.len(), "count/target length mismatch");
        let n = targets.len();
        let states = (0..n)
            .map(|w| {
                assert!(
                    counts[w] <= targets[w],
                    "restored count exceeds iteration target"
                );
                if pull_step {
                    // Every restarted worker re-pulls the weights before anything else.
                    GateState::AwaitingPull
                } else if counts[w] >= targets[w] {
                    GateState::Draining
                } else {
                    GateState::Running
                }
            })
            .collect();
        Self {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            states,
            targets,
            last_key: counts.to_vec(),
            pull_step,
        }
    }

    /// Removes an evicted worker from dispatch: its queued events are dropped and it
    /// never again gates other workers' dispatch. Anything it still had in flight is
    /// gone with it.
    pub fn forget_worker(&mut self, worker: usize) {
        self.queues[worker].clear();
        self.states[worker] = GateState::Done;
    }

    /// Enqueues an incoming event.
    pub fn offer(&mut self, event: WorkerEvent) {
        let worker = event.worker();
        self.queues[worker].push_back(event);
    }

    /// Releases the next event in canonical order, or `None` if the gate must wait for
    /// more arrivals.
    pub fn next(&mut self) -> Option<WorkerEvent> {
        // Phase 1: while any released worker still owes a pull, only pulls may pass —
        // serving a push first would let the pulled weights drift from the `OK`-time
        // snapshot the pull-less substrates hand out.
        let mut any_awaiting = false;
        for w in 0..self.states.len() {
            if self.states[w] == GateState::AwaitingPull {
                any_awaiting = true;
                if matches!(self.queues[w].front(), Some(WorkerEvent::Pull { .. })) {
                    self.states[w] = GateState::Running;
                    return self.queues[w].pop_front();
                }
            }
        }
        if any_awaiting {
            return None;
        }
        // Phase 2: release the queued head with the smallest (iteration, rank) key —
        // but only once no silent runnable worker could still produce a smaller one
        // (its next key is bounded below by its last dispatched iteration + 1).
        let mut best: Option<(u64, usize)> = None;
        for w in 0..self.states.len() {
            if matches!(self.states[w], GateState::Running | GateState::Draining) {
                if let Some(front) = self.queues[w].front() {
                    let key = Self::event_key(front);
                    if best.map_or(true, |(k, r)| (key, w) < (k, r)) {
                        best = Some((key, w));
                    }
                }
            }
        }
        let (key, w) = best?;
        for v in 0..self.states.len() {
            if matches!(self.states[v], GateState::Running | GateState::Draining)
                && self.queues[v].is_empty()
                && (self.last_key[v] + 1, v) < (key, w)
            {
                return None; // worker v's in-flight event sorts earlier; wait for it
            }
        }
        let event = self.queues[w].pop_front();
        match &event {
            Some(WorkerEvent::Push { iteration, .. }) => self.last_key[w] = *iteration,
            Some(WorkerEvent::Done { .. }) => self.states[w] = GateState::Done,
            _ => {}
        }
        event
    }

    /// Canonical ordering key of an event: the 1-based iteration it concludes (`Done`
    /// sorts right after the worker's final push).
    fn event_key(event: &WorkerEvent) -> u64 {
        match event {
            WorkerEvent::Push { iteration, .. } => *iteration,
            WorkerEvent::Done { iterations, .. } => iterations + 1,
            WorkerEvent::Pull { .. } => 0,
        }
    }

    /// Reports the outcome of a dispatched push: whether the pusher was granted its
    /// `OK` (`ok`), and which 1-based iteration the push carried.
    pub fn on_push_processed(&mut self, worker: usize, iteration: u64, ok: bool) {
        self.states[worker] = if iteration >= self.targets[worker] {
            // The final push is followed by `Done` without waiting for the OK.
            GateState::Draining
        } else if !ok {
            GateState::Blocked
        } else if self.pull_step {
            GateState::AwaitingPull
        } else {
            GateState::Running
        };
    }

    /// Whether the gate has heard from this worker recently enough to know it is not
    /// dead: either an event of its is still queued, or its `Done` was dispatched.
    /// (Stall detectors use this so a worker whose final `Done` is gate-held while a
    /// slow peer computes is not misdiagnosed as crashed.)
    pub fn worker_accounted_for(&self, worker: usize) -> bool {
        !self.queues[worker].is_empty() || self.states[worker] == GateState::Done
    }

    /// Reports that a previously blocked worker received its deferred `OK`.
    pub fn on_released(&mut self, worker: usize) {
        if self.states[worker] == GateState::Blocked {
            self.states[worker] = if self.pull_step {
                GateState::AwaitingPull
            } else {
                GateState::Running
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_digest_is_stable_and_sensitive() {
        let a = JobConfig::small(PolicyKind::Bsp);
        let b = JobConfig::small(PolicyKind::Bsp);
        assert_eq!(a.digest(), b.digest());
        let mut c = JobConfig::small(PolicyKind::Bsp);
        c.seed += 1;
        assert_ne!(a.digest(), c.digest());
        let d = JobConfig::small(PolicyKind::Asp);
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn worker_step_runs_its_shard_deterministically() {
        let config = JobConfig::small(PolicyKind::Bsp);
        let mut a = WorkerStep::for_rank(&config, 0);
        let mut b = WorkerStep::for_rank(&config, 0);
        let init = ServerLoop::new(&config).pull();
        assert_eq!(a.target(), b.target());
        assert!(a.target() > 0);
        let ga = a.compute_gradient(&init);
        let gb = b.compute_gradient(&init);
        assert_eq!(
            ga, gb,
            "same rank and seed must give bitwise-equal gradients"
        );
        assert_eq!(a.completed(), 1);
        assert!(!a.finished());
    }

    #[test]
    fn server_loop_tracks_done_workers_and_finishes() {
        let mut config = JobConfig::small(PolicyKind::Asp);
        config.num_workers = 2;
        let mut sl = ServerLoop::new(&config);
        let dims = sl.pull().len();
        let replies = sl.handle(
            WorkerEvent::Push {
                worker: 0,
                iteration: 1,
                grads: vec![0.0; dims],
            },
            0.1,
        );
        assert_eq!(
            replies,
            vec![OkReply {
                worker: 0,
                granted_extra: 0
            }]
        );
        assert!(!sl.all_done());
        for w in 0..2 {
            sl.handle(
                WorkerEvent::Done {
                    worker: w,
                    iterations: 1,
                    epochs: 1,
                    waiting_time_s: 0.0,
                },
                0.2,
            );
        }
        assert!(sl.all_done());
        let trace = sl.finish(0.3);
        assert_eq!(trace.total_pushes, 1);
        assert_eq!(trace.worker_summaries.len(), 2);
    }

    #[test]
    fn chaos_hook_trips_after_the_configured_push_count() {
        let mut config = JobConfig::small(PolicyKind::Asp);
        config.fail_after_pushes = Some(2);
        let mut sl = ServerLoop::new(&config);
        let dims = sl.pull().len();
        for i in 0..2u64 {
            sl.handle(
                WorkerEvent::Push {
                    worker: 0,
                    iteration: i + 1,
                    grads: vec![0.0; dims],
                },
                i as f64,
            );
        }
        assert!(sl.aborted());
    }

    #[test]
    fn gate_orders_concurrent_pushes_by_iteration_then_rank() {
        let mut gate = DeterministicGate::new(vec![2, 2], false);
        // Worker 1's push arrives first, but the gate holds it until worker 0's is in.
        gate.offer(WorkerEvent::Push {
            worker: 1,
            iteration: 1,
            grads: vec![],
        });
        assert!(gate.next().is_none(), "must wait for worker 0");
        gate.offer(WorkerEvent::Push {
            worker: 0,
            iteration: 1,
            grads: vec![],
        });
        let first = gate.next().expect("both queued");
        assert_eq!(first.worker(), 0, "equal iterations break ties by rank");
        gate.on_push_processed(0, 1, true);
        // Worker 0's next push can only carry iteration 2, which sorts after worker 1's
        // queued iteration 1 — so worker 1 dispatches without waiting (no starvation).
        let second = gate.next().expect("worker 1's head is provably minimal");
        assert_eq!(second.worker(), 1);
        gate.on_push_processed(1, 1, true);
        assert!(gate.next().is_none(), "both workers' next events in flight");
        // Iteration 2 pushes tie again and break by rank, but only once both are in.
        gate.offer(WorkerEvent::Push {
            worker: 1,
            iteration: 2,
            grads: vec![],
        });
        assert!(
            gate.next().is_none(),
            "worker 0's iteration 2 could still win"
        );
        gate.offer(WorkerEvent::Push {
            worker: 0,
            iteration: 2,
            grads: vec![],
        });
        assert_eq!(gate.next().unwrap().worker(), 0);
    }

    #[test]
    fn gate_blocked_workers_do_not_stall_dispatch() {
        let mut gate = DeterministicGate::new(vec![3, 3], false);
        gate.offer(WorkerEvent::Push {
            worker: 0,
            iteration: 1,
            grads: vec![],
        });
        gate.offer(WorkerEvent::Push {
            worker: 1,
            iteration: 1,
            grads: vec![],
        });
        gate.next().unwrap();
        gate.on_push_processed(0, 1, false); // worker 0 blocked
                                             // Worker 1's queued push dispatches even though worker 0 will stay silent.
        let ev = gate.next().expect("blocked worker must not gate others");
        assert_eq!(ev.worker(), 1);
        gate.on_push_processed(1, 1, true);
        gate.on_released(0);
        // Worker 0 is runnable again: dispatch now waits for both.
        gate.offer(WorkerEvent::Push {
            worker: 1,
            iteration: 2,
            grads: vec![],
        });
        assert!(gate.next().is_none(), "waits for released worker 0");
    }

    #[test]
    fn gate_with_pull_step_serves_pulls_before_any_push() {
        let mut gate = DeterministicGate::new(vec![2, 2], true);
        // Worker 1 pulled and even pushed already; worker 0 still owes its initial
        // pull, so nothing mutating may pass.
        gate.offer(WorkerEvent::Pull { worker: 1 });
        gate.offer(WorkerEvent::Push {
            worker: 1,
            iteration: 1,
            grads: vec![],
        });
        assert!(matches!(gate.next(), Some(WorkerEvent::Pull { worker: 1 })));
        assert!(
            gate.next().is_none(),
            "worker 0 owes a pull; pushes must wait"
        );
        gate.offer(WorkerEvent::Pull { worker: 0 });
        assert!(matches!(gate.next(), Some(WorkerEvent::Pull { worker: 0 })));
        // Now both are running; worker 1's push still waits for worker 0's.
        assert!(gate.next().is_none());
        gate.offer(WorkerEvent::Push {
            worker: 0,
            iteration: 1,
            grads: vec![],
        });
        assert_eq!(gate.next().unwrap().worker(), 0);
        gate.on_push_processed(0, 1, true);
        // Worker 0 owes a pull again before worker 1's queued push may pass.
        assert!(gate.next().is_none());
        gate.offer(WorkerEvent::Pull { worker: 0 });
        assert!(matches!(gate.next(), Some(WorkerEvent::Pull { worker: 0 })));
        assert_eq!(gate.next().unwrap().worker(), 1);
    }

    #[test]
    fn gate_final_push_expects_done_even_when_blocked() {
        let mut gate = DeterministicGate::new(vec![1, 2], false);
        gate.offer(WorkerEvent::Push {
            worker: 0,
            iteration: 1,
            grads: vec![],
        });
        gate.offer(WorkerEvent::Push {
            worker: 1,
            iteration: 1,
            grads: vec![],
        });
        assert_eq!(gate.next().unwrap().worker(), 0);
        // Final push of worker 0, blocked by the policy: its Done is still expected
        // (key 2), but worker 1's queued iteration-1 push sorts first.
        gate.on_push_processed(0, 1, false);
        gate.offer(WorkerEvent::Done {
            worker: 0,
            iterations: 1,
            epochs: 1,
            waiting_time_s: 0.0,
        });
        assert_eq!(gate.next().unwrap().worker(), 1);
        gate.on_push_processed(1, 1, true);
        let ev = gate.next().unwrap();
        assert!(matches!(ev, WorkerEvent::Done { worker: 0, .. }));
        // After Done, worker 0 no longer gates worker 1's second push.
        assert!(gate.next().is_none(), "waits for worker 1's next event");
        gate.offer(WorkerEvent::Push {
            worker: 1,
            iteration: 2,
            grads: vec![],
        });
        assert_eq!(gate.next().unwrap().worker(), 1);
    }
}
