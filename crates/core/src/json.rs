//! A minimal hand-rolled JSON reader and string escaper.
//!
//! The offline serde shim only marks types — it does not serialize — so every JSON
//! artifact in this repository is rendered by hand ([`crate::report::trace_json`], the
//! event-log NDJSON codec, the chrome-trace exporter). This module supplies the other
//! direction: a small recursive-descent parser good enough to read those artifacts
//! back (run traces, event-log lines) without any external dependency.
//!
//! The parser is strict where it matters for round-tripping: it rejects trailing
//! garbage, unterminated strings and truncated documents, so a half-written NDJSON
//! line fails loudly instead of yielding a partial event.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A plain non-negative integer that fits `u64`, kept exact — `f64` would round
    /// anything above 2^53 (event timestamps and payloads are full-range `u64`s).
    Uint(u64),
    /// Any other JSON number (parsed as `f64`).
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order (duplicate keys are kept; lookup returns the first).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number (lossy above 2^53 for exact integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Uint(n) => Some(*n as f64),
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Uint(n) => Some(*n),
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: byte offset of the problem plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document. Trailing non-whitespace input is an error, so a
/// truncated or concatenated document is rejected rather than silently accepted.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Escapes `s` as a JSON string literal, including the surrounding quotes. The escape
/// set matches what [`parse`] resolves, so `parse(&escape(s))` round-trips any string.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: a second \uXXXX must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                            char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?
                        } else if (0xdc00..0xe000).contains(&hi) {
                            return Err(self.err("lone low surrogate"));
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 sequences: the input was a &str, so
                    // continuation bytes are guaranteed well-formed.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    self.pos = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        // Plain non-negative integers stay exact (f64 rounds above 2^53).
        if text.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Uint(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        let v = parse(r#"{"a": [1, "two", {"b": false}]}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_str(), Some("two"));
        assert_eq!(arr[2].get("b").unwrap(), &Value::Bool(false));
    }

    #[test]
    fn escape_round_trips_awkward_strings() {
        for s in [
            "plain",
            "q\"uo\\te",
            "new\nline\ttab",
            "unicode: ✓ é",
            "\u{1}\u{1f}",
        ] {
            let escaped = escape(s);
            assert_eq!(parse(&escaped).unwrap(), Value::String(s.to_string()));
        }
    }

    #[test]
    fn resolves_unicode_escapes_and_surrogate_pairs() {
        assert_eq!(parse(r#""é😀""#).unwrap(), Value::String("é😀".to_string()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_truncation_and_trailing_garbage() {
        assert!(parse(r#"{"a": 1"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn trace_json_output_parses() {
        // The hand-rolled writer and this reader must agree on the dialect.
        let trace = dssp_sim::RunTrace {
            policy: "DSSP s=3, r=12".into(),
            model: "m".into(),
            workers: 2,
            points: vec![],
            total_time_s: 1.0,
            total_pushes: 4,
            worker_summaries: vec![],
            server_stats: Default::default(),
            group_servers: vec![],
        };
        let json = crate::report::trace_json(&trace);
        let v = parse(&json).unwrap();
        assert_eq!(v.get("total_pushes").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("policy").unwrap().as_str(), Some("DSSP s=3, r=12"));
    }
}
