//! Fleet health analytics: joins the per-role NDJSON event streams of one run
//! (`--event-log DIR`) into a per-round, per-worker explanation of where time went.
//!
//! The v6 causal trace ids ([`trace_id`](crate::events::trace_id)) are the join key:
//! a worker stamps one id on every operation it originates, the server/coordinator
//! stamp the same id on the events that operation caused, and the worker brackets
//! the operation with `span-begin`/`span-end`. Joining on the id therefore
//! reconstructs, for every push, the full causal chain
//!
//! ```text
//! worker span-begin ──wire──▶ server push (+ gate decision) ──wire──▶ worker
//!   gate-release ──▶ worker span-end
//! ```
//!
//! from which the analyzer derives:
//!
//! * a **per-round breakdown** per worker — compute vs. communication vs. DSSP
//!   gate wait — with slow rounds (wall time > mean + 2σ) called out together with
//!   the worker and component that dominated them;
//! * **cross-role push latency percentiles** (p50/p90/p99): worker `span-begin` to
//!   the server's `push` event with the same trace id, i.e. the one-way
//!   send + decode + apply time, measured across processes on the shared
//!   Unix-epoch-microsecond clock;
//! * a **staleness CDF**, replayed from the server's push stream with per-rank
//!   logical clocks (the paper's central distribution — how far ahead of the
//!   slowest worker each push ran);
//! * a **z-score straggler report** over total gate-wait time (a worker whose wait
//!   is more than [`STRAGGLER_Z`] standard deviations above the fleet mean is
//!   flagged — the offline twin of the live `dssp_straggler` gauge).
//!
//! `repro -- analyze <events-dir>` renders [`Analysis::to_text`]; `--json` emits
//! [`Analysis::to_json`] for dashboards and the golden tests.

use crate::events::{read_dir_events, Event, EventKind, Role, SpanOp, NO_TRACE};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::path::Path;

/// A worker is flagged as a straggler when its total gate-wait time exceeds the
/// fleet mean by more than this many standard deviations (matches the live
/// detector in `dssp-net`'s observability layer).
pub const STRAGGLER_Z: f64 = 2.0;

/// Rounds whose wall time exceeds the mean by more than this many standard
/// deviations are reported as slow, with their dominant worker and component.
pub const SLOW_ROUND_Z: f64 = 2.0;

/// One worker's time breakdown within one round (one push iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerRound {
    /// The worker's rank.
    pub rank: u32,
    /// Microseconds spent computing the gradient (previous operation's end to this
    /// round's push `span-begin`).
    pub compute_us: u64,
    /// Microseconds spent communicating: pull spans feeding this round plus the
    /// push span net of the gate wait.
    pub comms_us: u64,
    /// Microseconds the DSSP gate blocked this worker (the worker-side
    /// `gate-release` payload for this round's trace).
    pub gate_wait_us: u64,
}

impl WorkerRound {
    /// Total microseconds this worker spent on this round.
    pub fn total_us(&self) -> u64 {
        self.compute_us + self.comms_us + self.gate_wait_us
    }
}

/// One round of the job: every worker's breakdown for one push iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// The iteration number (worker push payload).
    pub iteration: u64,
    /// Per-worker breakdowns, sorted by rank.
    pub workers: Vec<WorkerRound>,
    /// Mean staleness of the pushes the server applied for this iteration
    /// (`NaN`-free: 0.0 when the server stream recorded none).
    pub mean_staleness: f64,
}

impl RoundReport {
    /// The round's wall time: the slowest worker's total.
    pub fn wall_us(&self) -> u64 {
        self.workers
            .iter()
            .map(WorkerRound::total_us)
            .max()
            .unwrap_or(0)
    }
}

/// A worker's whole-run totals and its straggler verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerTotals {
    /// The worker's rank.
    pub rank: u32,
    /// Rounds this worker completed (pushes with a closed span).
    pub rounds: u64,
    /// Total compute microseconds.
    pub compute_us: u64,
    /// Total communication microseconds.
    pub comms_us: u64,
    /// Total DSSP gate-wait microseconds.
    pub gate_wait_us: u64,
    /// This worker's gate-wait z-score against the fleet.
    pub z_score: f64,
    /// Whether the z-score exceeds [`STRAGGLER_Z`].
    pub straggler: bool,
}

/// Cross-role push latency distribution (worker `span-begin` → server `push`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of pushes that joined across roles.
    pub count: usize,
    /// 50th percentile, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

/// A round flagged as slow, with the dominant worker and time component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowRound {
    /// The flagged iteration.
    pub iteration: u64,
    /// The round's wall time, microseconds.
    pub wall_us: u64,
    /// The rank that took longest this round.
    pub rank: u32,
    /// The dominant component for that rank: `"compute"`, `"comms"` or
    /// `"gate-wait"`.
    pub component: &'static str,
}

/// The full fleet-health report for one run's event directory.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Per-round reports, sorted by iteration.
    pub rounds: Vec<RoundReport>,
    /// Per-worker totals, sorted by rank.
    pub workers: Vec<WorkerTotals>,
    /// Cross-role push latency percentiles (`None` when no push joined — e.g. a
    /// run recorded without worker logs).
    pub push_latency: Option<LatencyStats>,
    /// Staleness CDF: `(staleness, cumulative fraction)` pairs, ascending.
    pub staleness_cdf: Vec<(u64, f64)>,
    /// Rounds slower than mean + [`SLOW_ROUND_Z`]·σ, with their culprit.
    pub slow_rounds: Vec<SlowRound>,
    /// Total events analyzed.
    pub events: usize,
}

/// Reads every `*.ndjson` file in `dir` and analyzes the merged stream.
pub fn analyze_dir(dir: &Path) -> std::io::Result<Analysis> {
    Ok(analyze(&read_dir_events(dir)?))
}

/// In-flight state for one worker's current push round while streaming its events.
struct OpenRound {
    trace: u64,
    iteration: u64,
    compute_us: u64,
    pull_us: u64,
    gate_wait_us: u64,
}

/// Analyzes a time-sorted event stream (as produced by [`read_dir_events`]).
pub fn analyze(events: &[Event]) -> Analysis {
    // --- Per-worker streaming pass: rebuild each rank's rounds from its spans. ---
    // rank → stream state.
    let mut open_spans: HashMap<(u32, u64), (u64, SpanOp)> = HashMap::new();
    let mut prev_end: HashMap<u32, u64> = HashMap::new();
    let mut pending_comms: HashMap<u32, u64> = HashMap::new();
    let mut open_round: HashMap<u32, OpenRound> = HashMap::new();
    let mut rounds_by_iter: BTreeMap<u64, Vec<WorkerRound>> = BTreeMap::new();
    // trace → worker push span-begin ts, for the cross-role latency join.
    let mut push_begin: HashMap<u64, u64> = HashMap::new();
    let mut latencies: Vec<u64> = Vec::new();

    // --- Server replay state: per-rank logical clocks → staleness samples. ---
    let mut clocks: BTreeMap<u32, u64> = BTreeMap::new();
    for e in events {
        if e.role == Role::Worker {
            clocks.entry(e.rank).or_insert(0);
        }
    }
    let mut staleness_by_iter: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut staleness_all: Vec<u64> = Vec::new();

    for e in events {
        match e.role {
            Role::Worker => {
                let rank = e.rank;
                match e.kind {
                    EventKind::Join => {
                        prev_end.insert(rank, e.ts);
                    }
                    EventKind::SpanBegin => {
                        let Some(op) = SpanOp::from_code(e.payload) else {
                            continue;
                        };
                        open_spans.insert((rank, e.trace), (e.ts, op));
                        if op == SpanOp::Push {
                            let compute_us =
                                e.ts.saturating_sub(prev_end.get(&rank).copied().unwrap_or(e.ts));
                            open_round.insert(
                                rank,
                                OpenRound {
                                    trace: e.trace,
                                    iteration: 0,
                                    compute_us,
                                    pull_us: pending_comms.remove(&rank).unwrap_or(0),
                                    gate_wait_us: 0,
                                },
                            );
                            push_begin.insert(e.trace, e.ts);
                        }
                    }
                    EventKind::Push => {
                        if let Some(r) = open_round.get_mut(&rank) {
                            if r.trace == e.trace {
                                r.iteration = e.payload;
                            }
                        }
                    }
                    EventKind::GateRelease => {
                        if let Some(r) = open_round.get_mut(&rank) {
                            if r.trace == e.trace {
                                // Worker-side gate-release payload = µs waited.
                                r.gate_wait_us += e.payload;
                            }
                        }
                    }
                    EventKind::SpanEnd => {
                        let Some((begin, op)) = open_spans.remove(&(rank, e.trace)) else {
                            continue;
                        };
                        let dur = e.ts.saturating_sub(begin);
                        prev_end.insert(rank, e.ts);
                        match op {
                            // Pull and clock spans are pure communication; they
                            // feed the *next* push's round.
                            SpanOp::Pull | SpanOp::Clock => {
                                *pending_comms.entry(rank).or_insert(0) += dur;
                            }
                            SpanOp::Push => {
                                if let Some(r) = open_round.remove(&rank) {
                                    if r.trace == e.trace {
                                        let comms_us =
                                            r.pull_us + dur.saturating_sub(r.gate_wait_us);
                                        rounds_by_iter.entry(r.iteration).or_default().push(
                                            WorkerRound {
                                                rank,
                                                compute_us: r.compute_us,
                                                comms_us,
                                                gate_wait_us: r.gate_wait_us,
                                            },
                                        );
                                    }
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            // The decision-making roles: their push stream is the ground truth for
            // both the latency join and the staleness replay. (Shard servers also
            // log per-slice pushes, but each worker push fans out to many slices —
            // counting those would double-count, so the replay sticks to the role
            // that ran the DSSP gate.)
            Role::Server | Role::Coordinator => {
                if e.kind == EventKind::Push {
                    if e.trace != NO_TRACE {
                        if let Some(begin) = push_begin.get(&e.trace) {
                            latencies.push(e.ts.saturating_sub(*begin));
                        }
                    }
                    // Server push payload = pusher rank. Replay the logical clock.
                    let pusher = e.payload as u32;
                    let min = clocks.values().copied().min().unwrap_or(0);
                    let clock = clocks.entry(pusher).or_insert(0);
                    let staleness = clock.saturating_sub(min);
                    *clock += 1;
                    let iteration = *clock;
                    staleness_by_iter
                        .entry(iteration)
                        .or_default()
                        .push(staleness);
                    staleness_all.push(staleness);
                }
            }
            Role::ShardServer => {}
        }
    }

    // --- Assemble the per-round table. ---
    let mut rounds: Vec<RoundReport> = rounds_by_iter
        .into_iter()
        .map(|(iteration, mut workers)| {
            workers.sort_by_key(|w| w.rank);
            let mean_staleness = staleness_by_iter
                .get(&iteration)
                .filter(|s| !s.is_empty())
                .map(|s| s.iter().sum::<u64>() as f64 / s.len() as f64)
                .unwrap_or(0.0);
            RoundReport {
                iteration,
                workers,
                mean_staleness,
            }
        })
        .collect();
    rounds.sort_by_key(|r| r.iteration);

    // --- Slow-round detection: wall time z-score over all rounds. ---
    let slow_rounds = detect_slow_rounds(&rounds);

    // --- Per-worker totals and the straggler z-test on gate-wait time. ---
    let mut totals: BTreeMap<u32, WorkerTotals> = BTreeMap::new();
    for round in &rounds {
        for w in &round.workers {
            let t = totals.entry(w.rank).or_insert(WorkerTotals {
                rank: w.rank,
                rounds: 0,
                compute_us: 0,
                comms_us: 0,
                gate_wait_us: 0,
                z_score: 0.0,
                straggler: false,
            });
            t.rounds += 1;
            t.compute_us += w.compute_us;
            t.comms_us += w.comms_us;
            t.gate_wait_us += w.gate_wait_us;
        }
    }
    let mut workers: Vec<WorkerTotals> = totals.into_values().collect();
    if workers.len() >= 2 {
        let n = workers.len() as f64;
        let mean = workers.iter().map(|w| w.gate_wait_us as f64).sum::<f64>() / n;
        let var = workers
            .iter()
            .map(|w| {
                let d = w.gate_wait_us as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        let std = var.sqrt();
        for w in &mut workers {
            w.z_score = if std > 0.0 {
                (w.gate_wait_us as f64 - mean) / std
            } else {
                0.0
            };
            w.straggler = w.z_score > STRAGGLER_Z;
        }
    }

    // --- Push-latency percentiles and the staleness CDF. ---
    latencies.sort_unstable();
    let push_latency = (!latencies.is_empty()).then(|| LatencyStats {
        count: latencies.len(),
        p50_us: percentile(&latencies, 0.50),
        p90_us: percentile(&latencies, 0.90),
        p99_us: percentile(&latencies, 0.99),
        max_us: *latencies.last().expect("non-empty"),
    });
    staleness_all.sort_unstable();
    let staleness_cdf = cdf(&staleness_all);

    Analysis {
        rounds,
        workers,
        push_latency,
        staleness_cdf,
        slow_rounds,
        events: events.len(),
    }
}

/// Nearest-rank percentile of a sorted, non-empty sample.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Collapses a sorted sample into `(value, cumulative fraction)` pairs.
fn cdf(sorted: &[u64]) -> Vec<(u64, f64)> {
    let n = sorted.len();
    let mut out: Vec<(u64, f64)> = Vec::new();
    for (i, &v) in sorted.iter().enumerate() {
        let frac = (i + 1) as f64 / n as f64;
        match out.last_mut() {
            Some(last) if last.0 == v => last.1 = frac,
            _ => out.push((v, frac)),
        }
    }
    out
}

/// Flags rounds whose wall time exceeds mean + [`SLOW_ROUND_Z`]·σ, naming the
/// slowest worker and its dominant component.
fn detect_slow_rounds(rounds: &[RoundReport]) -> Vec<SlowRound> {
    if rounds.len() < 2 {
        return Vec::new();
    }
    let walls: Vec<f64> = rounds.iter().map(|r| r.wall_us() as f64).collect();
    let n = walls.len() as f64;
    let mean = walls.iter().sum::<f64>() / n;
    let std = (walls.iter().map(|w| (w - mean) * (w - mean)).sum::<f64>() / n).sqrt();
    if std <= 0.0 {
        return Vec::new();
    }
    let threshold = mean + SLOW_ROUND_Z * std;
    rounds
        .iter()
        .filter(|r| (r.wall_us() as f64) > threshold)
        .filter_map(|r| {
            let culprit = r.workers.iter().max_by_key(|w| w.total_us())?;
            let component = if culprit.gate_wait_us >= culprit.compute_us
                && culprit.gate_wait_us >= culprit.comms_us
            {
                "gate-wait"
            } else if culprit.comms_us >= culprit.compute_us {
                "comms"
            } else {
                "compute"
            };
            Some(SlowRound {
                iteration: r.iteration,
                wall_us: r.wall_us(),
                rank: culprit.rank,
                component,
            })
        })
        .collect()
}

impl Analysis {
    /// Renders the report as human-readable text (the default `repro -- analyze`
    /// output).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== fleet health: {} events, {} workers, {} rounds ==",
            self.events,
            self.workers.len(),
            self.rounds.len()
        );
        let _ = writeln!(
            out,
            "\nper-worker totals (µs):\n{:>6} {:>8} {:>12} {:>12} {:>12} {:>8}  straggler",
            "rank", "rounds", "compute", "comms", "gate-wait", "z"
        );
        for w in &self.workers {
            let _ = writeln!(
                out,
                "{:>6} {:>8} {:>12} {:>12} {:>12} {:>8.2}  {}",
                w.rank,
                w.rounds,
                w.compute_us,
                w.comms_us,
                w.gate_wait_us,
                w.z_score,
                if w.straggler { "YES" } else { "no" }
            );
        }
        match &self.push_latency {
            Some(l) => {
                let _ = writeln!(
                    out,
                    "\npush latency (worker span-begin → server push, {} joined): p50={}µs p90={}µs p99={}µs max={}µs",
                    l.count, l.p50_us, l.p90_us, l.p99_us, l.max_us
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "\npush latency: no cross-role joins (missing worker or server logs?)"
                );
            }
        }
        if self.staleness_cdf.is_empty() {
            let _ = writeln!(out, "staleness: no server push stream recorded");
        } else {
            let _ = write!(out, "staleness CDF:");
            for (v, frac) in &self.staleness_cdf {
                let _ = write!(out, " s≤{v}: {:.0}%", frac * 100.0);
            }
            let _ = writeln!(out);
        }
        if self.slow_rounds.is_empty() {
            let _ = writeln!(
                out,
                "slow rounds: none (no round beyond mean + {SLOW_ROUND_Z}σ)"
            );
        } else {
            let _ = writeln!(out, "slow rounds ({}):", self.slow_rounds.len());
            for s in &self.slow_rounds {
                let _ = writeln!(
                    out,
                    "  iter {:>5}: wall {}µs — worker {} dominated by {}",
                    s.iteration, s.wall_us, s.rank, s.component
                );
            }
        }
        let stragglers: Vec<u32> = self
            .workers
            .iter()
            .filter(|w| w.straggler)
            .map(|w| w.rank)
            .collect();
        if stragglers.is_empty() {
            let _ = writeln!(
                out,
                "stragglers: none (all gate-wait z-scores ≤ {STRAGGLER_Z})"
            );
        } else {
            let _ = writeln!(
                out,
                "stragglers: {stragglers:?} (gate-wait z > {STRAGGLER_Z})"
            );
        }
        out
    }

    /// Renders the report as a single JSON object (for `repro -- analyze --json`
    /// and the golden tests).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"events\": {}, ", self.events);
        let _ = write!(out, "\"rounds\": [");
        for (i, r) in self.rounds.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"iteration\": {}, \"wall_us\": {}, \"mean_staleness\": {:.3}, \"workers\": [",
                r.iteration,
                r.wall_us(),
                r.mean_staleness
            );
            for (j, w) in r.workers.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"rank\": {}, \"compute_us\": {}, \"comms_us\": {}, \"gate_wait_us\": {}}}",
                    w.rank, w.compute_us, w.comms_us, w.gate_wait_us
                );
            }
            out.push_str("]}");
        }
        let _ = write!(out, "], \"workers\": [");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"rank\": {}, \"rounds\": {}, \"compute_us\": {}, \"comms_us\": {}, \"gate_wait_us\": {}, \"z_score\": {:.3}, \"straggler\": {}}}",
                w.rank, w.rounds, w.compute_us, w.comms_us, w.gate_wait_us, w.z_score, w.straggler
            );
        }
        out.push_str("], ");
        match &self.push_latency {
            Some(l) => {
                let _ = write!(
                    out,
                    "\"push_latency_us\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}, ",
                    l.count, l.p50_us, l.p90_us, l.p99_us, l.max_us
                );
            }
            None => out.push_str("\"push_latency_us\": null, "),
        }
        let _ = write!(out, "\"staleness_cdf\": [");
        for (i, (v, frac)) in self.staleness_cdf.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{v}, {frac:.4}]");
        }
        let _ = write!(out, "], \"slow_rounds\": [");
        for (i, s) in self.slow_rounds.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"iteration\": {}, \"wall_us\": {}, \"rank\": {}, \"component\": \"{}\"}}",
                s.iteration, s.wall_us, s.rank, s.component
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::trace_id;

    fn ev(ts: u64, role: Role, rank: u32, kind: EventKind, payload: u64, trace: u64) -> Event {
        Event {
            ts,
            role,
            rank,
            kind,
            payload,
            trace,
        }
    }

    /// Two workers, two rounds each; worker 1 is gate-blocked hard in round 2.
    fn fixture() -> Vec<Event> {
        let mut e = Vec::new();
        for rank in 0..2u32 {
            let base = 1_000 + u64::from(rank) * 10;
            e.push(ev(base, Role::Worker, rank, EventKind::Join, 0, 0));
            // Initial pull: 100 µs of comms feeding round 1.
            let t_pull = trace_id(rank, 1);
            e.push(ev(
                base + 100,
                Role::Worker,
                rank,
                EventKind::SpanBegin,
                SpanOp::Pull.code(),
                t_pull,
            ));
            e.push(ev(
                base + 200,
                Role::Worker,
                rank,
                EventKind::SpanEnd,
                SpanOp::Pull.code(),
                t_pull,
            ));
            // Round 1: 300 µs compute, 50 µs push span, no gate wait.
            let t1 = trace_id(rank, 2);
            e.push(ev(
                base + 500,
                Role::Worker,
                rank,
                EventKind::SpanBegin,
                SpanOp::Push.code(),
                t1,
            ));
            e.push(ev(base + 505, Role::Worker, rank, EventKind::Push, 1, t1));
            e.push(ev(
                base + 520,
                Role::Server,
                0,
                EventKind::Push,
                u64::from(rank),
                t1,
            ));
            e.push(ev(
                base + 550,
                Role::Worker,
                rank,
                EventKind::SpanEnd,
                SpanOp::Push.code(),
                t1,
            ));
            // Round 2: 300 µs compute again; worker 1 waits 2 000 µs at the gate.
            let t2 = trace_id(rank, 3);
            let wait = if rank == 1 { 2_000 } else { 0 };
            e.push(ev(
                base + 850,
                Role::Worker,
                rank,
                EventKind::SpanBegin,
                SpanOp::Push.code(),
                t2,
            ));
            e.push(ev(base + 855, Role::Worker, rank, EventKind::Push, 2, t2));
            e.push(ev(
                base + 880,
                Role::Server,
                0,
                EventKind::Push,
                u64::from(rank),
                t2,
            ));
            if wait > 0 {
                e.push(ev(
                    base + 850 + wait,
                    Role::Worker,
                    rank,
                    EventKind::GateRelease,
                    wait,
                    t2,
                ));
            }
            e.push(ev(
                base + 900 + wait,
                Role::Worker,
                rank,
                EventKind::SpanEnd,
                SpanOp::Push.code(),
                t2,
            ));
        }
        e.sort_by_key(|e| e.ts);
        e
    }

    #[test]
    fn rounds_split_compute_comms_and_gate_wait() {
        let a = analyze(&fixture());
        assert_eq!(a.rounds.len(), 2);
        let r1 = &a.rounds[0];
        assert_eq!(r1.iteration, 1);
        assert_eq!(r1.workers.len(), 2);
        // Round 1, worker 0: 300 µs compute (pull end 1 200 → push begin 1 500),
        // comms = 100 µs pull + 50 µs push span.
        let w0 = &r1.workers[0];
        assert_eq!((w0.compute_us, w0.comms_us, w0.gate_wait_us), (300, 150, 0));
        // Round 2, worker 1: its 2 000 µs wait is split out of the push span.
        let r2 = &a.rounds[1];
        let w1 = r2.workers.iter().find(|w| w.rank == 1).unwrap();
        assert_eq!(w1.gate_wait_us, 2_000);
        assert_eq!(w1.comms_us, 50); // 2 050 µs span − 2 000 µs gate wait
        assert_eq!(w1.compute_us, 300);
    }

    #[test]
    fn push_latency_joins_worker_spans_to_server_pushes() {
        let a = analyze(&fixture());
        let l = a.push_latency.expect("pushes joined");
        // Every push: server event 20 or 30 µs after the worker span-begin.
        assert_eq!(l.count, 4);
        assert!(l.p50_us >= 20 && l.max_us <= 30, "{l:?}");
    }

    #[test]
    fn staleness_replay_builds_a_cdf() {
        let a = analyze(&fixture());
        // 4 server pushes, interleaved rank 0/1 → all staleness 0.
        assert_eq!(a.staleness_cdf, vec![(0, 1.0)]);
        assert!((a.rounds[0].mean_staleness - 0.0).abs() < 1e-9);
    }

    #[test]
    fn outsized_gate_wait_flags_a_straggler() {
        // The two-worker fixture can't exceed z = 2 (max z for n=2 is 1); widen the
        // fleet so worker 1's wait stands out.
        let mut e = fixture();
        for rank in 2..6u32 {
            let base = 5_000 + u64::from(rank) * 10;
            let t = trace_id(rank, 1);
            e.push(ev(
                base,
                Role::Worker,
                rank,
                EventKind::SpanBegin,
                SpanOp::Push.code(),
                t,
            ));
            e.push(ev(base + 5, Role::Worker, rank, EventKind::Push, 1, t));
            e.push(ev(
                base + 50,
                Role::Worker,
                rank,
                EventKind::SpanEnd,
                SpanOp::Push.code(),
                t,
            ));
        }
        e.sort_by_key(|e| e.ts);
        let a = analyze(&e);
        let flagged: Vec<u32> = a
            .workers
            .iter()
            .filter(|w| w.straggler)
            .map(|w| w.rank)
            .collect();
        assert_eq!(flagged, vec![1]);
        let w1 = a.workers.iter().find(|w| w.rank == 1).unwrap();
        assert!(w1.z_score > STRAGGLER_Z, "z = {}", w1.z_score);
    }

    #[test]
    fn text_and_json_render_the_report() {
        let a = analyze(&fixture());
        let text = a.to_text();
        assert!(text.contains("per-worker totals"), "{text}");
        assert!(text.contains("push latency"), "{text}");
        let json = a.to_json();
        let v = crate::json::parse(&json).expect("valid JSON");
        assert_eq!(
            v.get("events").and_then(|e| e.as_u64()),
            Some(fixture().len() as u64)
        );
        assert!(v.get("rounds").is_some());
        assert!(v.get("push_latency_us").is_some());
    }

    #[test]
    fn empty_stream_analyzes_to_an_empty_report() {
        let a = analyze(&[]);
        assert!(a.rounds.is_empty());
        assert!(a.workers.is_empty());
        assert!(a.push_latency.is_none());
        assert!(a.staleness_cdf.is_empty());
        assert!(!a.to_text().is_empty());
        assert!(crate::json::parse(&a.to_json()).is_ok());
    }
}
