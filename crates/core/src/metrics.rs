//! Metrics over run traces: time-to-accuracy tables, curve averaging, throughput.

use dssp_sim::{RunTrace, TracePoint};
use serde::{Deserialize, Serialize};

/// One row of a time-to-accuracy table (the paper's Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeToAccuracyRow {
    /// The paradigm label.
    pub policy: String,
    /// For each requested target accuracy: the earliest virtual time (seconds) at which
    /// it was reached, or `None` if it never was (the paper prints a dash).
    pub times: Vec<Option<f64>>,
}

/// Builds the paper's Table I: for each trace, the time to reach each target accuracy.
pub fn time_to_accuracy_table(traces: &[RunTrace], targets: &[f64]) -> Vec<TimeToAccuracyRow> {
    traces
        .iter()
        .map(|trace| TimeToAccuracyRow {
            policy: trace.policy.clone(),
            times: targets.iter().map(|&t| trace.time_to_accuracy(t)).collect(),
        })
        .collect()
}

/// Averages several runs into one accuracy-versus-time curve by resampling each run on a
/// common time grid and averaging the accuracies.
///
/// This is how the paper's "Average SSP s=3 to 15" curves (right column of Figure 3) are
/// produced from the 13 individual SSP runs.
///
/// # Panics
///
/// Panics if `traces` is empty or `samples` is zero.
pub fn average_curve(traces: &[RunTrace], samples: usize, label: impl Into<String>) -> RunTrace {
    assert!(!traces.is_empty(), "cannot average zero traces");
    assert!(samples > 0, "need at least one sample point");
    let max_time = traces.iter().map(|t| t.total_time_s).fold(0.0f64, f64::max);
    let points: Vec<TracePoint> = (1..=samples)
        .map(|i| {
            let time_s = max_time * i as f64 / samples as f64;
            let mean_acc = traces
                .iter()
                .map(|t| t.accuracy_at_time(time_s))
                .sum::<f64>()
                / traces.len() as f64;
            let mean_pushes = (traces
                .iter()
                .map(|t| {
                    t.points
                        .iter()
                        .take_while(|p| p.time_s <= time_s)
                        .last()
                        .map(|p| p.pushes)
                        .unwrap_or(0)
                })
                .sum::<u64>() as f64
                / traces.len() as f64) as u64;
            TracePoint {
                time_s,
                pushes: mean_pushes,
                epoch: 0,
                test_accuracy: mean_acc,
                train_loss: 0.0,
            }
        })
        .collect();
    RunTrace {
        policy: label.into(),
        model: traces[0].model.clone(),
        workers: traces[0].workers,
        points,
        total_time_s: max_time,
        total_pushes: (traces.iter().map(|t| t.total_pushes).sum::<u64>() as f64
            / traces.len() as f64) as u64,
        worker_summaries: Vec::new(),
        server_stats: Default::default(),
        group_servers: Vec::new(),
    }
}

/// Summary statistics of a single run used by the throughput analysis (Section V-C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputSummary {
    /// The paradigm label.
    pub policy: String,
    /// Applied pushes per second of virtual time.
    pub pushes_per_second: f64,
    /// Total virtual training time.
    pub total_time_s: f64,
    /// Total time workers spent waiting for deferred `OK`s.
    pub waiting_time_s: f64,
    /// Mean staleness observed at push time.
    pub mean_staleness: f64,
    /// Final test accuracy.
    pub final_accuracy: f64,
    /// Best test accuracy seen at any evaluation point.
    pub best_accuracy: f64,
}

impl ThroughputSummary {
    /// Builds the summary for one trace.
    pub fn of(trace: &RunTrace) -> Self {
        Self {
            policy: trace.policy.clone(),
            pushes_per_second: trace.iteration_throughput(),
            total_time_s: trace.total_time_s,
            waiting_time_s: trace.total_waiting_time(),
            mean_staleness: trace.server_stats.mean_staleness(),
            final_accuracy: trace.final_accuracy(),
            best_accuracy: trace.best_accuracy(),
        }
    }
}

/// The area under the accuracy-versus-time curve, normalised by total time.
///
/// A higher value means the run spent more of its wall-clock time at high accuracy —
/// a scalar proxy for "converges to a higher accuracy earlier" that is convenient for
/// regression tests comparing paradigms.
pub fn accuracy_time_auc(trace: &RunTrace) -> f64 {
    if trace.points.len() < 2 || trace.total_time_s <= 0.0 {
        return trace.final_accuracy();
    }
    let mut area = 0.0;
    let mut prev_t = 0.0;
    let mut prev_acc = 0.0;
    for p in &trace.points {
        area += (p.time_s - prev_t) * prev_acc;
        prev_t = p.time_s;
        prev_acc = p.test_accuracy;
    }
    area += (trace.total_time_s - prev_t) * prev_acc;
    area / trace.total_time_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssp_ps::ServerStats;

    fn trace(policy: &str, times: &[f64], accs: &[f64]) -> RunTrace {
        let points = times
            .iter()
            .zip(accs)
            .enumerate()
            .map(|(i, (&t, &a))| TracePoint {
                time_s: t,
                pushes: (i as u64 + 1) * 10,
                epoch: i,
                test_accuracy: a,
                train_loss: 1.0,
            })
            .collect();
        RunTrace {
            policy: policy.to_string(),
            model: "m".into(),
            workers: 2,
            points,
            total_time_s: *times.last().unwrap_or(&0.0),
            total_pushes: times.len() as u64 * 10,
            worker_summaries: vec![],
            server_stats: ServerStats::default(),
            group_servers: Vec::new(),
        }
    }

    #[test]
    fn table_reports_first_crossing_or_none() {
        let traces = vec![
            trace("FAST", &[1.0, 2.0, 3.0], &[0.3, 0.6, 0.7]),
            trace("SLOW", &[1.0, 2.0, 3.0], &[0.1, 0.2, 0.3]),
        ];
        let table = time_to_accuracy_table(&traces, &[0.5, 0.65]);
        assert_eq!(table[0].times, vec![Some(2.0), Some(3.0)]);
        assert_eq!(table[1].times, vec![None, None]);
    }

    #[test]
    fn average_curve_is_between_the_inputs() {
        let traces = vec![
            trace("A", &[1.0, 2.0], &[0.2, 0.4]),
            trace("B", &[1.0, 2.0], &[0.6, 0.8]),
        ];
        let avg = average_curve(&traces, 4, "avg");
        assert_eq!(avg.policy, "avg");
        let final_acc = avg.final_accuracy();
        assert!(
            (final_acc - 0.6).abs() < 1e-9,
            "avg of 0.4 and 0.8 is 0.6, got {final_acc}"
        );
        // Every averaged point lies between the per-trace extremes at that time.
        for p in &avg.points {
            assert!(p.test_accuracy <= 0.8 && p.test_accuracy >= 0.0);
        }
    }

    #[test]
    fn auc_rewards_early_convergence() {
        let early = trace("early", &[1.0, 2.0, 10.0], &[0.7, 0.7, 0.7]);
        let late = trace("late", &[1.0, 9.0, 10.0], &[0.0, 0.0, 0.7]);
        assert!(accuracy_time_auc(&early) > accuracy_time_auc(&late));
    }

    #[test]
    fn throughput_summary_copies_headline_numbers() {
        let t = trace("X", &[1.0, 2.0], &[0.5, 0.9]);
        let s = ThroughputSummary::of(&t);
        assert_eq!(s.policy, "X");
        assert!((s.final_accuracy - 0.9).abs() < 1e-12);
        assert!((s.pushes_per_second - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot average zero traces")]
    fn averaging_nothing_panics() {
        average_curve(&[], 4, "x");
    }
}
