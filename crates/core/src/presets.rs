//! Ready-made experiment configurations for every experiment in the paper.
//!
//! Each preset mirrors one workload of the paper's evaluation section at a reduced
//! scale (see `EXPERIMENTS.md` for the scaling table):
//!
//! | paper workload | preset |
//! |---|---|
//! | downsized AlexNet on CIFAR-10, 4-worker homogeneous SOSCIP cluster (Fig. 3a/3b) | [`alexnet_homogeneous`] |
//! | ResNet-50 on CIFAR-100, same cluster (Fig. 3c/3d) | [`resnet50_homogeneous`] |
//! | ResNet-110 on CIFAR-100, same cluster (Fig. 3e/3f) | [`resnet110_homogeneous`] |
//! | ResNet-110 on CIFAR-100, 2-worker GTX 1060 + GTX 1080 Ti cluster (Fig. 4 / Table I) | [`resnet110_heterogeneous`] |
//!
//! The paper's hyperparameters (batch 128, 300 epochs, lr 0.001 / 0.05 with 0.1 decay at
//! epochs 200 and 250) are scaled to the reproduction's smaller datasets: batch 32,
//! 6–12 epochs, proportionally larger learning rates, with the decay milestones kept at
//! the same 2/3 and 5/6 fractions of training.

use dssp_cluster::ClusterSpec;
use dssp_data::SyntheticImageSpec;
use dssp_nn::models::ModelSpec;
use dssp_nn::{CostProfile, LrSchedule, SgdConfig};
use dssp_ps::PolicyKind;
use dssp_sim::{DataSpec, SimConfig};
use serde::{Deserialize, Serialize};

/// Cost profile (in the cluster model's scaled units) standing in for the paper's real
/// downsized AlexNet: parameter-heavy (dominated by the two fully connected layers),
/// comparatively few FLOPs per example, so with a mini-batch of 32 the per-iteration
/// compute is roughly 10× the one-way transfer time on the homogeneous cluster's link.
pub fn alexnet_paper_cost() -> CostProfile {
    CostProfile {
        flops_per_example: 500_000,
        param_count: 4_800,
        has_fc_layers: true,
    }
}

/// Cost profile standing in for a CIFAR-style ResNet-50: far fewer parameters than the
/// AlexNet (no fully connected layers except the classifier) but roughly 3× its FLOPs.
pub fn resnet50_paper_cost() -> CostProfile {
    CostProfile {
        flops_per_example: 1_400_000,
        param_count: 1_500,
        has_fc_layers: false,
    }
}

/// Cost profile standing in for a CIFAR-style ResNet-110: roughly 2.3× the parameters
/// and FLOPs of the ResNet-50 profile, still parameter-light relative to the AlexNet.
pub fn resnet110_paper_cost() -> CostProfile {
    CostProfile {
        flops_per_example: 3_200_000,
        param_count: 3_400,
        has_fc_layers: false,
    }
}

/// How large an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Small datasets and few epochs: seconds per run, used by tests and Criterion
    /// benches.
    Quick,
    /// The scale used to regenerate the figures in `EXPERIMENTS.md` (tens of seconds per
    /// run).
    Full,
}

impl Scale {
    fn sizes(self, full_train: usize, full_test: usize) -> (usize, usize) {
        match self {
            Scale::Quick => (full_train / 4, full_test / 2),
            Scale::Full => (full_train, full_test),
        }
    }

    fn epochs(self, full: usize) -> usize {
        match self {
            Scale::Quick => (full / 3).max(1),
            Scale::Full => full,
        }
    }
}

/// The DSSP configuration used throughout the paper's experiments:
/// `s_L = 3`, range `[0, 12]` (equivalent to SSP thresholds 3..=15).
pub fn dssp_reference() -> PolicyKind {
    PolicyKind::Dssp { s_l: 3, r_max: 12 }
}

/// The SSP threshold sweep the paper averages over: `s = 3, 4, ..., 15`.
pub fn ssp_sweep() -> Vec<PolicyKind> {
    (3..=15).map(|s| PolicyKind::Ssp { s }).collect()
}

/// The four headline paradigms compared in Figures 3a/3c/3e (SSP represented by its
/// lower-bound threshold; the averaged-SSP curve is produced by [`ssp_sweep`]).
pub fn headline_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Bsp,
        PolicyKind::Asp,
        PolicyKind::Ssp { s: 3 },
        dssp_reference(),
    ]
}

/// The number of classes used for the CIFAR-10-like task.
pub const CIFAR10_LIKE_CLASSES: usize = 10;

/// The number of classes used for the CIFAR-100-like task.
///
/// The synthetic stand-in uses 20 classes rather than 100 so that the scaled-down
/// ResNets reach a meaningful accuracy within the reduced epoch budget; the task still
/// plays CIFAR-100's role of being markedly harder than the 10-class task.
pub const CIFAR100_LIKE_CLASSES: usize = 20;

const IMAGE_SIDE: usize = 8;

fn cifar10_like(scale: Scale) -> DataSpec {
    let (train, test) = scale.sizes(2_000, 400);
    DataSpec::Image(
        SyntheticImageSpec::cifar10_like()
            .with_image_side(IMAGE_SIDE)
            .with_classes(CIFAR10_LIKE_CLASSES)
            .with_sizes(train, test)
            // Slightly harder than the library default so the accuracy curve keeps
            // climbing over the whole epoch budget instead of saturating early
            // (calibrated with the `stale_check` binary).
            .with_noise(1.2),
    )
}

fn cifar100_like(scale: Scale) -> DataSpec {
    let (train, test) = scale.sizes(2_000, 400);
    DataSpec::Image(
        SyntheticImageSpec::cifar100_like()
            .with_image_side(IMAGE_SIDE)
            .with_classes(CIFAR100_LIKE_CLASSES)
            .with_sizes(train, test),
    )
}

/// Figure 3a/3b workload: the downsized AlexNet (3 conv + 2 FC layers) on the
/// CIFAR-10-like task, 4-worker homogeneous cluster (4 × P100 per worker, InfiniBand).
pub fn alexnet_homogeneous(policy: PolicyKind, scale: Scale) -> SimConfig {
    let epochs = scale.epochs(12);
    SimConfig {
        model: ModelSpec::DownsizedAlexNet {
            image_side: IMAGE_SIDE,
            classes: CIFAR10_LIKE_CLASSES,
        },
        data: cifar10_like(scale),
        cluster: ClusterSpec::soscip_like(),
        policy,
        batch_size: 32,
        epochs,
        // The paper trains the downsized AlexNet with lr 0.001 and batch 128. The
        // reproduction's synthetic task and batch 32 need a proportionally different
        // setting; the values below were calibrated with the `stale_check` binary to sit
        // in the same regime as the paper's runs — the most aggressive setting at which
        // the most-stale paradigm (ASP) still converges, so that staleness degrades but
        // does not destroy training.
        sgd: SgdConfig {
            schedule: LrSchedule::constant(0.004),
            momentum: 0.3,
            weight_decay: 1e-4,
        },
        seed: 2019,
        eval_every_pushes: 16,
        eval_max_examples: 256,
        cost_override: Some(alexnet_paper_cost()),
    }
}

fn resnet_homogeneous(policy: PolicyKind, blocks: usize, scale: Scale) -> SimConfig {
    let epochs = scale.epochs(9);
    // Decay at the same 2/3 and 5/6 fractions the paper uses (200 and 250 of 300).
    let milestones = [(epochs * 2) / 3, (epochs * 5) / 6];
    SimConfig {
        model: ModelSpec::ResNetCifar {
            image_side: IMAGE_SIDE,
            blocks,
            classes: CIFAR100_LIKE_CLASSES,
        },
        data: cifar100_like(scale),
        cluster: ClusterSpec::soscip_like(),
        policy,
        batch_size: 32,
        epochs,
        // The paper uses lr 0.05 with momentum on CIFAR-100; scaled to the synthetic
        // 20-class task and calibrated (see `resnet_check`) so that the four-worker
        // asynchronous runs remain stable — with four concurrent pushers, a 0.9 server
        // momentum amplifies stale gradients enough to diverge even BSP.
        sgd: SgdConfig {
            schedule: LrSchedule::step(0.02, 0.1, &milestones),
            momentum: 0.5,
            weight_decay: 1e-4,
        },
        seed: 2019,
        eval_every_pushes: 16,
        eval_max_examples: 256,
        cost_override: Some(if blocks >= 9 {
            resnet110_paper_cost()
        } else {
            resnet50_paper_cost()
        }),
    }
}

/// Figure 3c/3d workload: the ResNet-50 analogue (4 residual blocks) on the
/// CIFAR-100-like task, 4-worker homogeneous cluster.
pub fn resnet50_homogeneous(policy: PolicyKind, scale: Scale) -> SimConfig {
    resnet_homogeneous(policy, 4, scale)
}

/// Figure 3e/3f workload: the ResNet-110 analogue (9 residual blocks) on the
/// CIFAR-100-like task, 4-worker homogeneous cluster.
pub fn resnet110_homogeneous(policy: PolicyKind, scale: Scale) -> SimConfig {
    resnet_homogeneous(policy, 9, scale)
}

/// Figure 4 / Table I workload: the ResNet-110 analogue on the CIFAR-100-like task over
/// the heterogeneous two-worker cluster (GTX 1060 + GTX 1080 Ti).
pub fn resnet110_heterogeneous(policy: PolicyKind, scale: Scale) -> SimConfig {
    let mut config = resnet_homogeneous(policy, 9, scale);
    config.cluster = ClusterSpec::heterogeneous_pair();
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssp_nn::Model;

    #[test]
    fn alexnet_preset_is_fc_heavy_and_resnet_is_not() {
        let alexnet = alexnet_homogeneous(PolicyKind::Bsp, Scale::Quick);
        let resnet = resnet110_homogeneous(PolicyKind::Bsp, Scale::Quick);
        assert!(alexnet.model.has_fc_layers());
        assert!(!resnet.model.has_fc_layers());
        // The FC-bearing model must have MORE parameters but FEWER FLOPs than the deep
        // conv model — that is the entire premise of the paper's Section V-C analysis.
        // The presets encode this through the paper-architecture cost overrides that
        // drive the cluster time model.
        let a_cost = alexnet
            .cost_override
            .expect("alexnet preset sets a cost override");
        let r_cost = resnet
            .cost_override
            .expect("resnet preset sets a cost override");
        assert!(
            a_cost.param_count > r_cost.param_count,
            "alexnet params {} should exceed resnet params {}",
            a_cost.param_count,
            r_cost.param_count
        );
        assert!(
            a_cost.flops_per_example < r_cost.flops_per_example,
            "alexnet flops {} should be below resnet flops {}",
            a_cost.flops_per_example,
            r_cost.flops_per_example
        );
        // And the resulting compute/communication ratios must sit on opposite sides.
        assert!(
            a_cost.compute_comm_ratio(32) < r_cost.compute_comm_ratio(32),
            "FC-heavy model must be the communication-bound one"
        );
    }

    #[test]
    fn resnet110_is_deeper_than_resnet50() {
        let r50 = resnet50_homogeneous(PolicyKind::Bsp, Scale::Quick)
            .model
            .build(0);
        let r110 = resnet110_homogeneous(PolicyKind::Bsp, Scale::Quick)
            .model
            .build(0);
        assert!(r110.flops_per_example() > 2 * r50.flops_per_example());
    }

    #[test]
    fn heterogeneous_preset_uses_two_unequal_workers() {
        let config = resnet110_heterogeneous(dssp_reference(), Scale::Quick);
        assert_eq!(config.cluster.num_workers(), 2);
        assert!(!config.cluster.is_homogeneous());
    }

    #[test]
    fn ssp_sweep_covers_3_to_15() {
        let sweep = ssp_sweep();
        assert_eq!(sweep.len(), 13);
        assert_eq!(sweep[0], PolicyKind::Ssp { s: 3 });
        assert_eq!(sweep[12], PolicyKind::Ssp { s: 15 });
    }

    #[test]
    fn quick_scale_is_smaller_than_full() {
        let quick = alexnet_homogeneous(PolicyKind::Bsp, Scale::Quick);
        let full = alexnet_homogeneous(PolicyKind::Bsp, Scale::Full);
        assert!(quick.epochs < full.epochs);
        match (&quick.data, &full.data) {
            (DataSpec::Image(q), DataSpec::Image(f)) => assert!(q.train_size < f.train_size),
            _ => panic!("presets should use image data"),
        }
    }

    #[test]
    fn headline_policies_cover_all_four_paradigms() {
        let labels: Vec<String> = headline_policies().iter().map(|p| p.label()).collect();
        assert!(labels.iter().any(|l| l == "BSP"));
        assert!(labels.iter().any(|l| l == "ASP"));
        assert!(labels.iter().any(|l| l.starts_with("SSP")));
        assert!(labels.iter().any(|l| l.starts_with("DSSP")));
    }
}
