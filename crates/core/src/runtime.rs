//! A real multi-threaded parameter-server runtime.
//!
//! The discrete-event simulator (`dssp-sim`) is the primary vehicle for reproducing the
//! paper's figures because it is deterministic and fast. This module provides the
//! complementary piece a downstream user would actually deploy on one machine: worker
//! **threads** that compute gradients concurrently and exchange them with a server
//! thread over channels, driving the *same* [`dssp_ps::ParameterServer`] decision logic
//! under real wall-clock time.
//!
//! The worker step-loop and server decision-loop live in [`crate::driver`] and are
//! shared with the networked runtime (`dssp-net`): one driver, three substrates —
//! simulator events, threads + channels, and processes + sockets.
//!
//! Heterogeneity can be emulated by giving workers artificial per-iteration compute
//! delays (`extra_compute_delay_ms`), which plays the role of the mixed GPU models in
//! the paper's Figure 4 experiment.
//!
//! # Shutdown behaviour
//!
//! The server loop owns the run: when it finishes, aborts (the
//! [`JobConfig::fail_after_pushes`] chaos hook), or panics, it broadcasts
//! [`WorkerCommand::Shutdown`] to every worker and joins all threads before returning,
//! so no worker thread is ever leaked — [`run_threaded`] either returns a complete
//! trace or panics with every thread reaped.

use crate::driver::{DeterministicGate, JobConfig, OkReply, ServerLoop, WorkerEvent, WorkerStep};
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dssp_sim::RunTrace;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Configuration of a threaded training run (an alias of the shared driver
/// configuration; the threaded runtime adds no substrate-specific knobs).
pub use crate::driver::JobConfig as ThreadedConfig;

/// What the server sends a worker in response to its push.
#[derive(Debug, Clone)]
pub enum WorkerCommand {
    /// The worker may start its next iteration on these fresh global weights.
    Proceed(Vec<f32>),
    /// The run is over (normally or because the server failed); the worker must exit
    /// its loop immediately.
    Shutdown,
}

/// Why a threaded run ended without a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The server aborted after the configured number of pushes
    /// ([`JobConfig::fail_after_pushes`]).
    Aborted {
        /// Pushes applied when the abort tripped.
        pushes: u64,
    },
    /// One or more worker threads died (panicked or exited early) before reporting
    /// `Done`.
    WorkersFailed {
        /// Ranks of the dead workers.
        workers: Vec<usize>,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Aborted { pushes } => {
                write!(f, "server aborted after {pushes} pushes (chaos hook)")
            }
            RuntimeError::WorkersFailed { workers } => {
                write!(f, "worker threads {workers:?} died before finishing")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Runs a training job on real threads and returns the same [`RunTrace`] the simulator
/// produces (times are wall-clock seconds since the start of training, or logical event
/// counts under [`JobConfig::deterministic`]).
///
/// # Panics
///
/// Panics if the configuration is inconsistent (zero workers, class mismatch, or a
/// delay vector whose length differs from the worker count), or if the run fails (see
/// [`try_run_threaded`] for the non-panicking variant). In every case all worker
/// threads are shut down and joined first.
pub fn run_threaded(config: ThreadedConfig) -> RunTrace {
    try_run_threaded(config).unwrap_or_else(|e| panic!("threaded run failed: {e}"))
}

/// Like [`run_threaded`], but reports server-side failures as an error instead of
/// panicking. Worker threads are always joined before this returns.
pub fn try_run_threaded(config: ThreadedConfig) -> Result<RunTrace, RuntimeError> {
    config.validate();
    // One dataset generation serves the evaluation batch and every worker's shard
    // (separate processes in the networked runtime each regenerate it instead).
    let dataset = config.data.generate(config.seed);
    let mut sl = ServerLoop::with_dataset(&config, &dataset);
    let initial_params = sl.pull();
    let targets = sl.targets().to_vec();

    let (push_tx, push_rx): (Sender<WorkerEvent>, Receiver<WorkerEvent>) = unbounded();
    let mut ok_txs: Vec<Sender<WorkerCommand>> = Vec::with_capacity(config.num_workers);
    let mut handles: Vec<JoinHandle<()>> = Vec::with_capacity(config.num_workers);

    for (rank, shard) in dataset
        .shard_train(config.num_workers)
        .into_iter()
        .enumerate()
    {
        let (ok_tx, ok_rx): (Sender<WorkerCommand>, Receiver<WorkerCommand>) = unbounded();
        ok_txs.push(ok_tx);
        let step = WorkerStep::with_shard(&config, rank, shard);
        let tx = push_tx.clone();
        let init = initial_params.clone();
        handles.push(thread::spawn(move || {
            worker_loop(step, init, tx, ok_rx);
        }));
    }
    drop(push_tx);

    // Server loop on the current thread. Any outcome — normal completion, chaos abort,
    // worker death, or a panic inside the decision logic — falls through to the
    // broadcast + join below, so threads are never leaked.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        server_loop(&config, &mut sl, &push_rx, &ok_txs, &handles, targets)
    }));

    for tx in &ok_txs {
        // Idempotent: workers that already exited just leave the message undelivered.
        let _ = tx.send(WorkerCommand::Shutdown);
    }
    let mut dead = Vec::new();
    for (rank, handle) in handles.into_iter().enumerate() {
        if handle.join().is_err() {
            dead.push(rank);
        }
    }

    match outcome {
        Err(panic) => resume_unwind(panic),
        Ok(Err(e)) => Err(e),
        Ok(Ok(elapsed)) => {
            if dead.is_empty() {
                Ok(sl.finish(elapsed))
            } else {
                Err(RuntimeError::WorkersFailed { workers: dead })
            }
        }
    }
}

/// Runs the server decision-loop to completion, returning the elapsed wall-clock
/// seconds.
fn server_loop(
    config: &JobConfig,
    sl: &mut ServerLoop,
    push_rx: &Receiver<WorkerEvent>,
    ok_txs: &[Sender<WorkerCommand>],
    handles: &[JoinHandle<()>],
    targets: Vec<u64>,
) -> Result<f64, RuntimeError> {
    let start = Instant::now();
    let stall = Duration::from_millis(config.stall_timeout_ms.max(1));
    let mut gate = config
        .deterministic
        .then(|| DeterministicGate::new(targets, false));

    'run: while !sl.all_done() {
        // In deterministic mode, drain every event the gate is ready to release before
        // waiting on the channel again.
        loop {
            let ready = match gate.as_mut() {
                Some(g) => g.next(),
                None => None,
            };
            match ready {
                Some(event) => {
                    dispatch(sl, ok_txs, &mut gate, event, &start)?;
                    if sl.all_done() {
                        break 'run;
                    }
                }
                None => break,
            }
        }
        let event = match push_rx.recv_timeout(stall) {
            Ok(event) => event,
            Err(RecvTimeoutError::Timeout) => {
                // A finished thread is only *dead* if its worker never reported Done —
                // cleanly completed workers exit while slower peers keep training, and
                // in deterministic mode a Done can sit gate-held for a while.
                let dead: Vec<usize> = handles
                    .iter()
                    .enumerate()
                    .filter(|(rank, h)| {
                        h.is_finished()
                            && !sl.worker_done(*rank)
                            && !gate.as_ref().is_some_and(|g| g.worker_accounted_for(*rank))
                    })
                    .map(|(rank, _)| rank)
                    .collect();
                if dead.is_empty() {
                    continue; // workers are just slow; keep waiting
                }
                return Err(RuntimeError::WorkersFailed { workers: dead });
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Every worker hung up without all of them reporting Done.
                return Err(RuntimeError::WorkersFailed {
                    workers: (0..config.num_workers).collect(),
                });
            }
        };
        if gate.is_some() {
            gate.as_mut().expect("checked").offer(event);
        } else {
            dispatch(sl, ok_txs, &mut gate, event, &start)?;
        }
    }
    Ok(start.elapsed().as_secs_f64())
}

fn dispatch(
    sl: &mut ServerLoop,
    ok_txs: &[Sender<WorkerCommand>],
    gate: &mut Option<DeterministicGate>,
    event: WorkerEvent,
    start: &Instant,
) -> Result<(), RuntimeError> {
    let now = start.elapsed().as_secs_f64();
    let replies: Vec<OkReply> = sl.handle_gated(gate, event, now);
    for reply in &replies {
        // A send can only fail if the worker already exited after its final push; that
        // is expected and harmless.
        let _ = ok_txs[reply.worker].send(WorkerCommand::Proceed(sl.pull()));
    }
    if sl.aborted() {
        return Err(RuntimeError::Aborted {
            pushes: sl.version(),
        });
    }
    Ok(())
}

fn worker_loop(
    mut step: WorkerStep,
    initial_params: Vec<f32>,
    tx: Sender<WorkerEvent>,
    ok_rx: Receiver<WorkerCommand>,
) {
    let worker = step.rank();
    let target = step.target();
    let mut weights = initial_params;
    let mut waiting_time_s = 0.0;
    for iter in 0..target {
        let grads = step.compute_gradient(&weights);
        if tx
            .send(WorkerEvent::Push {
                worker,
                iteration: iter + 1,
                grads,
            })
            .is_err()
        {
            return; // server gone; exit quietly
        }
        if iter + 1 < target {
            let wait_start = Instant::now();
            match ok_rx.recv() {
                Ok(WorkerCommand::Proceed(w)) => {
                    waiting_time_s += wait_start.elapsed().as_secs_f64();
                    weights = w;
                }
                Ok(WorkerCommand::Shutdown) | Err(_) => return,
            }
        }
    }
    let _ = tx.send(WorkerEvent::Done {
        worker,
        iterations: target,
        epochs: step.epoch(),
        waiting_time_s,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssp_ps::PolicyKind;

    #[test]
    fn threaded_bsp_run_completes_and_learns() {
        let trace = run_threaded(ThreadedConfig::small(PolicyKind::Bsp));
        assert_eq!(trace.workers, 2);
        assert!(trace.total_pushes > 0);
        assert!(
            trace.final_accuracy() > 0.3,
            "accuracy {}",
            trace.final_accuracy()
        );
        // Every worker completed all of its iterations.
        let per_worker: u64 = trace.worker_summaries.iter().map(|w| w.iterations).sum();
        assert_eq!(per_worker, trace.total_pushes);
    }

    #[test]
    fn threaded_strict_dssp_respects_staleness_bound() {
        // The strict-range variant is the one that promises a hard staleness cap; the
        // literal Algorithm-1 policy may run further ahead on repeated controller grants.
        let mut config = ThreadedConfig::small(PolicyKind::DsspStrict { s_l: 2, r_max: 4 });
        // Make worker 1 an artificial straggler so staleness actually arises.
        config.extra_compute_delay_ms = vec![0, 3];
        let trace = run_threaded(config);
        assert!(trace.server_stats.staleness_max <= 2 + 4 + 1);
        assert!(trace.total_pushes > 0);
    }

    #[test]
    fn threaded_literal_dssp_completes_all_work_under_a_straggler() {
        let mut config = ThreadedConfig::small(PolicyKind::Dssp { s_l: 2, r_max: 4 });
        config.extra_compute_delay_ms = vec![0, 3];
        let trace = run_threaded(config);
        assert!(trace.total_pushes > 0);
        let per_worker: u64 = trace.worker_summaries.iter().map(|w| w.iterations).sum();
        assert_eq!(per_worker, trace.total_pushes);
        assert_eq!(
            trace.server_stats.blocked_pushes,
            trace.server_stats.releases
        );
    }

    #[test]
    fn threaded_asp_never_blocks() {
        let mut config = ThreadedConfig::small(PolicyKind::Asp);
        config.extra_compute_delay_ms = vec![0, 2];
        let trace = run_threaded(config);
        assert_eq!(trace.server_stats.blocked_pushes, 0);
    }

    #[test]
    #[should_panic(expected = "one entry per worker")]
    fn wrong_delay_vector_length_panics() {
        let mut config = ThreadedConfig::small(PolicyKind::Asp);
        config.extra_compute_delay_ms = vec![1];
        config.num_workers = 3;
        run_threaded(config);
    }

    #[test]
    fn chaos_abort_shuts_workers_down_instead_of_leaking_them() {
        let mut config = ThreadedConfig::small(PolicyKind::Asp);
        config.fail_after_pushes = Some(3);
        let started = Instant::now();
        let err = try_run_threaded(config).expect_err("chaos hook must abort the run");
        assert!(
            matches!(err, RuntimeError::Aborted { pushes } if pushes >= 3),
            "unexpected error: {err}"
        );
        // try_run_threaded joins every worker before returning; if Shutdown were not
        // propagated the blocked workers would keep the join (and this test) hanging
        // until their full epoch budget elapsed.
        assert!(started.elapsed() < Duration::from_secs(20));
    }

    #[test]
    fn deterministic_mode_is_bitwise_reproducible_across_runs() {
        let mut config = ThreadedConfig::small(PolicyKind::Dssp { s_l: 1, r_max: 4 });
        config.deterministic = true;
        config.epochs = 1;
        let a = run_threaded(config.clone());
        let b = run_threaded(config);
        assert_eq!(
            a.with_times_zeroed(),
            b.with_times_zeroed(),
            "two deterministic runs must match bitwise (wall-clock fields aside)"
        );
    }
}
