//! A real multi-threaded parameter-server runtime.
//!
//! The discrete-event simulator (`dssp-sim`) is the primary vehicle for reproducing the
//! paper's figures because it is deterministic and fast. This module provides the
//! complementary piece a downstream user would actually deploy on one machine: worker
//! **threads** that compute gradients concurrently and exchange them with a server
//! thread over channels, driving the *same* [`dssp_ps::ParameterServer`] decision logic
//! under real wall-clock time.
//!
//! Heterogeneity can be emulated by giving workers artificial per-iteration compute
//! delays (`extra_compute_delay_ms`), which plays the role of the mixed GPU models in
//! the paper's Figure 4 experiment.

use crossbeam_channel::{unbounded, Receiver, Sender};
use dssp_data::BatchIter;
use dssp_nn::models::ModelSpec;
use dssp_nn::{accuracy, Model, Sequential, Sgd, SgdConfig, SoftmaxCrossEntropy};
use dssp_ps::{ParameterServer, PolicyKind, ServerConfig, ServerStats};
use dssp_sim::{DataSpec, RunTrace, TracePoint, WorkerSummary};
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of a threaded training run.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Model architecture replicated by every worker.
    pub model: ModelSpec,
    /// Dataset specification.
    pub data: DataSpec,
    /// Number of worker threads.
    pub num_workers: usize,
    /// Synchronization paradigm.
    pub policy: PolicyKind,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Passes over each worker's shard.
    pub epochs: usize,
    /// Server-side SGD configuration.
    pub sgd: SgdConfig,
    /// Master seed.
    pub seed: u64,
    /// Evaluate the global weights every this many pushes.
    pub eval_every_pushes: u64,
    /// Cap on test examples per evaluation.
    pub eval_max_examples: usize,
    /// Artificial extra compute delay per iteration for each worker, in milliseconds.
    /// An empty vector means no extra delay; otherwise it must have one entry per
    /// worker. Unequal delays emulate a heterogeneous cluster.
    pub extra_compute_delay_ms: Vec<u64>,
}

impl ThreadedConfig {
    /// A small default configuration: MLP on a synthetic vector task, two workers.
    pub fn small(policy: PolicyKind) -> Self {
        Self {
            model: ModelSpec::Mlp {
                input_dim: 16,
                hidden: vec![24],
                classes: 4,
            },
            data: DataSpec::Vector(dssp_data::SyntheticVectorSpec {
                classes: 4,
                dim: 16,
                train_size: 512,
                test_size: 128,
                noise_std: 0.7,
            }),
            num_workers: 2,
            policy,
            batch_size: 16,
            epochs: 2,
            sgd: SgdConfig::default(),
            seed: 11,
            eval_every_pushes: 16,
            eval_max_examples: 128,
            extra_compute_delay_ms: Vec::new(),
        }
    }
}

#[derive(Debug)]
enum WorkerMsg {
    Push {
        worker: usize,
        grads: Vec<f32>,
    },
    Done {
        worker: usize,
        iterations: u64,
        epochs: usize,
        waiting_time_s: f64,
    },
}

/// Runs a training job on real threads and returns the same [`RunTrace`] the simulator
/// produces (times are wall-clock seconds since the start of training).
///
/// # Panics
///
/// Panics if the configuration is inconsistent (zero workers, class mismatch, or a
/// delay vector whose length differs from the worker count).
pub fn run_threaded(config: ThreadedConfig) -> RunTrace {
    assert!(config.num_workers > 0, "need at least one worker");
    assert_eq!(
        config.model.classes(),
        config.data.classes(),
        "model and dataset class counts must agree"
    );
    assert!(
        config.extra_compute_delay_ms.is_empty()
            || config.extra_compute_delay_ms.len() == config.num_workers,
        "extra_compute_delay_ms must be empty or have one entry per worker"
    );

    let dataset = config.data.generate(config.seed);
    let shards = dataset.shard_train(config.num_workers);
    let reference = config.model.build(config.seed);
    let initial_params = reference.params_flat();

    let sgd = Sgd::new(config.sgd.clone(), initial_params.len());
    let mut server = ParameterServer::new(
        initial_params.clone(),
        sgd,
        ServerConfig::new(config.num_workers, config.policy),
    );

    let (push_tx, push_rx): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = unbounded();
    let mut ok_txs: Vec<Sender<Vec<f32>>> = Vec::with_capacity(config.num_workers);
    let mut handles = Vec::with_capacity(config.num_workers);

    for (w, shard) in shards.into_iter().enumerate() {
        let (ok_tx, ok_rx): (Sender<Vec<f32>>, Receiver<Vec<f32>>) = unbounded();
        ok_txs.push(ok_tx);
        let target = (config.epochs as u64) * (shard.len().div_ceil(config.batch_size) as u64);
        let batches = BatchIter::new(
            shard,
            config.batch_size,
            config.seed.wrapping_add(w as u64 + 1),
        );
        let model = config.model.build(config.seed);
        let delay = config
            .extra_compute_delay_ms
            .get(w)
            .copied()
            .map(Duration::from_millis);
        let tx = push_tx.clone();
        let init = initial_params.clone();
        handles.push(thread::spawn(move || {
            worker_loop(w, model, batches, target, delay, init, tx, ok_rx);
        }));
    }
    drop(push_tx);

    // Server loop (current thread): apply pushes, gate workers, evaluate periodically.
    let mut eval_model = config.model.build(config.seed);
    let eval_batch = dataset.test_batch(config.eval_max_examples);
    let start = Instant::now();
    let mut points: Vec<TracePoint> = Vec::new();
    let mut last_eval = 0u64;
    let mut summaries: Vec<Option<WorkerSummary>> = vec![None; config.num_workers];
    let mut done = 0usize;

    while done < config.num_workers {
        let msg = push_rx.recv().expect("workers hung up unexpectedly");
        let now = start.elapsed().as_secs_f64();
        match msg {
            WorkerMsg::Push { worker, grads } => {
                let result = server.handle_push(worker, &grads, now);
                if result.ok_now {
                    // A send can only fail if the worker already exited after its final
                    // push; that is expected and harmless.
                    let _ = ok_txs[worker].send(server.pull());
                }
                for released in result.released {
                    let _ = ok_txs[released].send(server.pull());
                }
                if server.version() - last_eval >= config.eval_every_pushes {
                    last_eval = server.version();
                    points.push(evaluate(&mut eval_model, &server, &eval_batch, now));
                }
            }
            WorkerMsg::Done {
                worker,
                iterations,
                epochs,
                waiting_time_s,
            } => {
                summaries[worker] = Some(WorkerSummary {
                    worker,
                    iterations,
                    epochs,
                    waiting_time_s,
                });
                done += 1;
                for released in server.retire_worker(worker, now) {
                    let _ = ok_txs[released].send(server.pull());
                }
            }
        }
    }
    for handle in handles {
        handle.join().expect("worker thread panicked");
    }

    let final_time = start.elapsed().as_secs_f64();
    points.push(evaluate(&mut eval_model, &server, &eval_batch, final_time));

    let stats: ServerStats = server.stats().clone();
    RunTrace {
        policy: config.policy.label(),
        model: config.model.display_name(),
        workers: config.num_workers,
        points,
        total_time_s: final_time,
        total_pushes: server.version(),
        worker_summaries: summaries
            .into_iter()
            .map(|s| s.expect("summary recorded"))
            .collect(),
        server_stats: stats,
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    worker: usize,
    mut model: Sequential,
    mut batches: BatchIter,
    target: u64,
    delay: Option<Duration>,
    initial_params: Vec<f32>,
    tx: Sender<WorkerMsg>,
    ok_rx: Receiver<Vec<f32>>,
) {
    let loss_fn = SoftmaxCrossEntropy::new();
    let mut weights = initial_params;
    let mut waiting_time_s = 0.0;
    let mut ws = dssp_nn::Workspace::new();
    let mut grad_logits = dssp_tensor::Tensor::default();
    for iter in 0..target {
        if let Some(d) = delay {
            thread::sleep(d);
        }
        model.set_params_flat(&weights);
        let (x, labels) = batches.next_batch();
        let logits = model.forward_ws(&x, true, &mut ws);
        let _ = loss_fn.loss_and_grad_into(logits, &labels, &mut grad_logits);
        model.zero_grads();
        model.backward_ws(&grad_logits, &mut ws);
        // The gradient crosses a thread boundary, so this one allocation per push
        // stays (the server consumes the Vec).
        let grads = model.grads_flat();
        tx.send(WorkerMsg::Push { worker, grads })
            .expect("server hung up");
        if iter + 1 < target {
            let wait_start = Instant::now();
            weights = ok_rx.recv().expect("server hung up before sending OK");
            waiting_time_s += wait_start.elapsed().as_secs_f64();
        }
    }
    tx.send(WorkerMsg::Done {
        worker,
        iterations: target,
        epochs: batches.epoch(),
        waiting_time_s,
    })
    .expect("server hung up");
}

fn evaluate(
    eval_model: &mut Sequential,
    server: &ParameterServer,
    eval_batch: &(dssp_tensor::Tensor, Vec<usize>),
    now: f64,
) -> TracePoint {
    eval_model.set_params_flat(server.weights());
    let logits = eval_model.forward(&eval_batch.0, false);
    let acc = accuracy(&logits, &eval_batch.1);
    TracePoint {
        time_s: now,
        pushes: server.version(),
        epoch: 0,
        test_accuracy: f64::from(acc),
        train_loss: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threaded_bsp_run_completes_and_learns() {
        let trace = run_threaded(ThreadedConfig::small(PolicyKind::Bsp));
        assert_eq!(trace.workers, 2);
        assert!(trace.total_pushes > 0);
        assert!(
            trace.final_accuracy() > 0.3,
            "accuracy {}",
            trace.final_accuracy()
        );
        // Every worker completed all of its iterations.
        let per_worker: u64 = trace.worker_summaries.iter().map(|w| w.iterations).sum();
        assert_eq!(per_worker, trace.total_pushes);
    }

    #[test]
    fn threaded_strict_dssp_respects_staleness_bound() {
        // The strict-range variant is the one that promises a hard staleness cap; the
        // literal Algorithm-1 policy may run further ahead on repeated controller grants.
        let mut config = ThreadedConfig::small(PolicyKind::DsspStrict { s_l: 2, r_max: 4 });
        // Make worker 1 an artificial straggler so staleness actually arises.
        config.extra_compute_delay_ms = vec![0, 3];
        let trace = run_threaded(config);
        assert!(trace.server_stats.staleness_max <= 2 + 4 + 1);
        assert!(trace.total_pushes > 0);
    }

    #[test]
    fn threaded_literal_dssp_completes_all_work_under_a_straggler() {
        let mut config = ThreadedConfig::small(PolicyKind::Dssp { s_l: 2, r_max: 4 });
        config.extra_compute_delay_ms = vec![0, 3];
        let trace = run_threaded(config);
        assert!(trace.total_pushes > 0);
        let per_worker: u64 = trace.worker_summaries.iter().map(|w| w.iterations).sum();
        assert_eq!(per_worker, trace.total_pushes);
        assert_eq!(
            trace.server_stats.blocked_pushes,
            trace.server_stats.releases
        );
    }

    #[test]
    fn threaded_asp_never_blocks() {
        let mut config = ThreadedConfig::small(PolicyKind::Asp);
        config.extra_compute_delay_ms = vec![0, 2];
        let trace = run_threaded(config);
        assert_eq!(trace.server_stats.blocked_pushes, 0);
    }

    #[test]
    #[should_panic(expected = "one entry per worker")]
    fn wrong_delay_vector_length_panics() {
        let mut config = ThreadedConfig::small(PolicyKind::Asp);
        config.extra_compute_delay_ms = vec![1];
        config.num_workers = 3;
        run_threaded(config);
    }
}
