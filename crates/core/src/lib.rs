//! High-level API for the DSSP reproduction.
//!
//! `dssp-core` ties the substrates together into the workflow a user of the system
//! actually runs:
//!
//! * [`Experiment`] / [`ExperimentBuilder`] — configure a distributed training run
//!   (model, dataset, cluster, paradigm) and execute it on the discrete-event simulator,
//!   producing a [`RunTrace`];
//! * [`presets`] — ready-made configurations for every experiment in the paper's
//!   evaluation section (Figures 3a–3f, Figure 4, Table I), at a quick and a full scale;
//! * [`metrics`] — time-to-accuracy tables (Table I), curve averaging ("Average SSP
//!   s=3 to 15"), throughput summaries;
//! * [`report`] — CSV and Markdown rendering of traces and tables;
//! * [`events`] — the structured observability event stream: a lock-free, bounded,
//!   append-only log of synchronization decisions, flushed as NDJSON per role;
//! * [`analyze`] — fleet health analytics over those streams: per-round
//!   compute/comms/gate-wait breakdowns, cross-role push-latency percentiles,
//!   staleness CDF and straggler detection, joined on the v6 causal trace ids;
//! * [`chrome_trace`] — Trace Event Format (chrome-trace) export of event streams
//!   and run traces for timeline viewers;
//! * [`json`] — the minimal hand-rolled JSON reader those artifacts are read back
//!   with (the offline serde shim does not serialize);
//! * [`driver`] — the transport-agnostic worker step-loop and server decision-loop
//!   shared by the threaded runtime and the networked runtime (`dssp-net`), including
//!   the deterministic scheduling gate used for cross-substrate equivalence testing;
//! * [`runtime`] — a real multi-threaded parameter-server runtime built on crossbeam
//!   channels that exercises the exact same [`dssp_ps::ParameterServer`] logic with real
//!   concurrency and wall-clock time;
//! * [`pool`] — a scoped thread pool used to run independent experiments (figure
//!   sweeps) concurrently with deterministic, input-ordered results.
//!
//! # Example
//!
//! ```
//! use dssp_core::ExperimentBuilder;
//! use dssp_ps::PolicyKind;
//!
//! let trace = ExperimentBuilder::small_mlp()
//!     .policy(PolicyKind::Dssp { s_l: 3, r_max: 12 })
//!     .epochs(1)
//!     .run();
//! assert!(trace.total_pushes > 0);
//! ```

#![deny(missing_docs)]

pub mod analyze;
pub mod chrome_trace;
pub mod driver;
pub mod events;
mod experiment;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod presets;
pub mod report;
pub mod runtime;

pub use driver::{JobConfig, ServerLoop, WorkerStep};
pub use dssp_sim::{RunTrace, TracePoint, WorkerSummary};
pub use experiment::{Experiment, ExperimentBuilder};
pub use presets::Scale;
