//! Plain-text rendering of traces and tables (CSV for plotting, Markdown for reports).

use crate::metrics::{ThroughputSummary, TimeToAccuracyRow};
use dssp_sim::RunTrace;
use std::fmt::Write as _;

/// Renders a set of traces as a long-format CSV:
/// `policy,model,time_s,pushes,epoch,test_accuracy,train_loss`.
///
/// One row per evaluation point per trace — the format the paper's accuracy-versus-time
/// figures plot directly.
pub fn traces_to_csv(traces: &[RunTrace]) -> String {
    let mut out = String::from("policy,model,time_s,pushes,epoch,test_accuracy,train_loss\n");
    for trace in traces {
        for p in &trace.points {
            let _ = writeln!(
                out,
                "{},{},{:.6},{},{},{:.4},{:.4}",
                trace.policy,
                trace.model,
                p.time_s,
                p.pushes,
                p.epoch,
                p.test_accuracy,
                p.train_loss
            );
        }
    }
    out
}

/// Renders the time-to-accuracy table (Table I) as Markdown. Unreached targets are shown
/// as a dash, exactly as in the paper.
pub fn time_to_accuracy_markdown(rows: &[TimeToAccuracyRow], targets: &[f64]) -> String {
    let mut out = String::from("| Distributed Paradigm |");
    for t in targets {
        let _ = write!(out, " Time to reach {t:.2} accuracy |");
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in targets {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        let _ = write!(out, "| {} |", row.policy);
        for time in &row.times {
            match time {
                Some(t) => {
                    let _ = write!(out, " {t:.1} |");
                }
                None => {
                    let _ = write!(out, " − |");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Renders per-policy throughput summaries as a Markdown table (the Section V-C
/// iteration-throughput analysis).
pub fn throughput_markdown(summaries: &[ThroughputSummary]) -> String {
    let mut out = String::from(
        "| Paradigm | Pushes/s | Total time (s) | Waiting time (s) | Mean staleness | Best accuracy |\n|---|---|---|---|---|---|\n",
    );
    for s in summaries {
        let _ = writeln!(
            out,
            "| {} | {:.1} | {:.1} | {:.1} | {:.2} | {:.3} |",
            s.policy,
            s.pushes_per_second,
            s.total_time_s,
            s.waiting_time_s,
            s.mean_staleness,
            s.best_accuracy
        );
    }
    out
}

/// Renders a trace as pretty-printed JSON (hand-rolled: the offline serde shim only
/// marks types, it does not serialize). This is the machine-readable artifact the
/// `repro -- serve` / `repro -- launch` subcommands write and CI uploads.
pub fn trace_json(trace: &RunTrace) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"policy\": {},", json_str(&trace.policy));
    let _ = writeln!(out, "  \"model\": {},", json_str(&trace.model));
    let _ = writeln!(out, "  \"workers\": {},", trace.workers);
    let _ = writeln!(out, "  \"total_time_s\": {:.6},", trace.total_time_s);
    let _ = writeln!(out, "  \"total_pushes\": {},", trace.total_pushes);
    out.push_str("  \"points\": [\n");
    for (i, p) in trace.points.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"time_s\": {:.6}, \"pushes\": {}, \"epoch\": {}, \"test_accuracy\": {:.6}, \"train_loss\": {:.6}}}",
            p.time_s, p.pushes, p.epoch, p.test_accuracy, p.train_loss
        );
        out.push_str(if i + 1 < trace.points.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"worker_summaries\": [\n");
    for (i, w) in trace.worker_summaries.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"worker\": {}, \"iterations\": {}, \"epochs\": {}, \"waiting_time_s\": {:.6}}}",
            w.worker, w.iterations, w.epochs, w.waiting_time_s
        );
        out.push_str(if i + 1 < trace.worker_summaries.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let s = &trace.server_stats;
    out.push_str("  ],\n  \"server_stats\": {\n");
    let _ = writeln!(out, "    \"pushes\": {},", s.pushes);
    let _ = writeln!(out, "    \"blocked_pushes\": {},", s.blocked_pushes);
    let _ = writeln!(out, "    \"releases\": {},", s.releases);
    let _ = writeln!(out, "    \"staleness_sum\": {},", s.staleness_sum);
    let _ = writeln!(out, "    \"staleness_max\": {},", s.staleness_max);
    let _ = writeln!(out, "    \"credits_granted\": {}", s.credits_granted);
    out.push_str("  },\n  \"group_servers\": [\n");
    for (i, g) in trace.group_servers.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"server\": {}, \"params\": {}, \"shards\": {}, \"pushes\": {}, \"pulls_full\": {}, \"pulls_delta\": {}, \"bytes_sent\": {}, \"bytes_received\": {}}}",
            g.server,
            g.params,
            g.shards,
            g.pushes,
            g.pulls_full,
            g.pulls_delta,
            g.bytes_sent,
            g.bytes_received
        );
        out.push_str(if i + 1 < trace.group_servers.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a compact per-trace summary line, useful for example binaries.
pub fn trace_summary_line(trace: &RunTrace) -> String {
    format!(
        "{:<16} time={:>8.1}s pushes={:>6} throughput={:>7.1}/s best_acc={:.3} final_acc={:.3} wait={:>7.1}s",
        trace.policy,
        trace.total_time_s,
        trace.total_pushes,
        trace.iteration_throughput(),
        trace.best_accuracy(),
        trace.final_accuracy(),
        trace.total_waiting_time()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssp_ps::ServerStats;
    use dssp_sim::TracePoint;

    fn trace() -> RunTrace {
        RunTrace {
            policy: "DSSP s=3, r=12".into(),
            model: "downsized-alexnet".into(),
            workers: 4,
            points: vec![TracePoint {
                time_s: 1.5,
                pushes: 10,
                epoch: 0,
                test_accuracy: 0.42,
                train_loss: 1.8,
            }],
            total_time_s: 1.5,
            total_pushes: 10,
            worker_summaries: vec![],
            server_stats: ServerStats::default(),
            group_servers: vec![dssp_sim::GroupServerStats {
                server: 0,
                params: 4242,
                shards: 8,
                pushes: 10,
                pulls_full: 4,
                pulls_delta: 6,
                bytes_sent: 1000,
                bytes_received: 2000,
            }],
        }
    }

    #[test]
    fn csv_has_header_and_one_row_per_point() {
        let csv = traces_to_csv(&[trace()]);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("policy,model,time_s"));
        assert!(lines[1].starts_with("DSSP s=3, r=12,downsized-alexnet,1.5"));
    }

    #[test]
    fn table_markdown_prints_dash_for_unreached_targets() {
        let rows = vec![TimeToAccuracyRow {
            policy: "BSP".into(),
            times: vec![Some(6159.2), None],
        }];
        let md = time_to_accuracy_markdown(&rows, &[0.67, 0.68]);
        assert!(md.contains("| BSP | 6159.2 | − |"));
        assert!(md.contains("Time to reach 0.67 accuracy"));
    }

    #[test]
    fn throughput_markdown_has_one_row_per_summary() {
        let summaries = vec![crate::metrics::ThroughputSummary::of(&trace())];
        let md = throughput_markdown(&summaries);
        assert_eq!(md.trim().lines().count(), 3);
        assert!(md.contains("DSSP"));
    }

    #[test]
    fn summary_line_mentions_policy_and_accuracy() {
        let line = trace_summary_line(&trace());
        assert!(line.contains("DSSP"));
        assert!(line.contains("0.420"));
    }

    #[test]
    fn trace_json_is_balanced_and_contains_the_key_fields() {
        let json = trace_json(&trace());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"policy\": \"DSSP s=3, r=12\""));
        assert!(json.contains("\"total_pushes\": 10"));
        assert!(json.contains("\"credits_granted\": 0"));
        assert!(json.contains("\"test_accuracy\": 0.420000"));
        // Group runs aggregate per-server counters into the same report.
        assert!(json.contains(
            "{\"server\": 0, \"params\": 4242, \"shards\": 8, \"pushes\": 10, \
             \"pulls_full\": 4, \"pulls_delta\": 6, \"bytes_sent\": 1000, \
             \"bytes_received\": 2000}"
        ));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
