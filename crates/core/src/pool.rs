//! A small scoped thread pool for running independent experiments concurrently.
//!
//! The paper's figure sweeps (Figures 3a–3f, Figure 4, Table I) run many *independent*
//! simulations — one per synchronization policy or staleness threshold. Each simulation
//! is deterministic given its configuration, so they can execute on worker threads in
//! any order while the collected results are returned in **input order**, making a
//! parallel sweep bit-identical to the serial one.
//!
//! [`parallel_map`] is deliberately dependency-free (scoped `std::thread` + an atomic
//! work queue): the offline build environment has no rayon, and the jobs here are
//! coarse (whole simulations), so work stealing would buy nothing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Number of worker threads to use for experiment sweeps.
///
/// Honors the `DSSP_THREADS` environment variable when set to a positive integer,
/// otherwise uses the machine's available parallelism. Always at least 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("DSSP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0), f(1), ..., f(jobs - 1)` on up to `threads` worker threads and returns
/// the results **in index order** (deterministic regardless of scheduling).
///
/// With `threads == 1` (or a single job) the jobs run inline on the calling thread, so
/// a sweep forced serial via `DSSP_THREADS=1` takes exactly the pre-existing code path.
///
/// # Panics
///
/// Panics if any job panics (the panic is propagated).
pub fn parallel_map<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(jobs.max(1));
    if threads <= 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut results: Vec<Option<T>> = Vec::with_capacity(jobs);
    results.resize_with(jobs, || None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                // A send can only fail if the receiver was dropped, which only
                // happens if another job panicked; exiting quietly lets the scope
                // propagate that panic.
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, value) in rx {
            results[i] = Some(value);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Jobs finish in scrambled order (larger index sleeps less); output order must
        // still match input order.
        let out = parallel_map(8, 4, |i| {
            std::thread::sleep(std::time::Duration::from_millis((8 - i as u64) * 2));
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial: Vec<usize> = (0..16).map(|i| i * i).collect();
        assert_eq!(parallel_map(16, 1, |i| i * i), serial);
        assert_eq!(parallel_map(16, 3, |i| i * i), serial);
        assert_eq!(parallel_map(16, 64, |i| i * i), serial);
    }

    #[test]
    fn zero_jobs_yield_empty_vec() {
        let out: Vec<u32> = parallel_map(0, 4, |_| unreachable!("no jobs to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
