//! One-call group runs over real localhost TCP, with every role in-process.
//!
//! [`run_group_threads`] is the test/bench harness entry point: it binds one
//! [`TcpServerTransport`] per shard server plus one for the coordinator, runs the
//! shard servers and workers on threads, and coordinates on the calling thread —
//! real sockets, real wire protocol, one process. The multi-*process* deployment
//! lives in [`crate::launch`].

use crate::client::{run_group_worker, ServerLink};
use crate::coordinator::coordinate;
use crate::shard_server::serve_shard;
use dssp_core::driver::JobConfig;
use dssp_net::worker::WorkerReport;
use dssp_net::{NetError, TcpServerTransport, TcpWorkerTransport};
use dssp_sim::RunTrace;
use std::time::Duration;

/// What a full in-process group run produced.
#[derive(Debug)]
pub struct GroupRunOutcome {
    /// The coordinator's run trace (with per-server group statistics).
    pub trace: RunTrace,
    /// Every worker's report, in rank order.
    pub workers: Vec<WorkerReport>,
}

/// Connects one labelled link per shard server, arming the read timeout that turns a
/// dead server into a clear [`NetError::PeerTimeout`] instead of a stalled read.
pub fn connect_links(
    addrs: &[String],
    timeout: Option<Duration>,
) -> Result<Vec<ServerLink>, NetError> {
    let mut links = Vec::with_capacity(addrs.len());
    for (i, addr) in addrs.iter().enumerate() {
        let mut t = TcpWorkerTransport::connect(addr)?;
        let label = format!("shard server {i} at {addr}");
        t.set_peer_label(label.clone());
        t.set_read_timeout(timeout)?;
        // Links over real TCP are reconnectable: if the server process is restarted
        // in place, the fan re-dials, replays the hello, and resumes.
        links.push(ServerLink::new(Box::new(t), label).with_reconnect(addr.clone(), timeout));
    }
    Ok(links)
}

/// Runs a whole group job — N shard servers, M workers, one coordinator — over
/// localhost TCP inside this process and returns the trace plus every worker report.
///
/// A run the coordinator aborts (the `fail_after_pushes` chaos hook) returns that
/// error *after* joining every thread: the shutdown broadcast reaches workers both
/// directly and relayed through the shard servers, so nothing is leaked.
///
/// # Panics
///
/// Panics if the configuration is inconsistent.
pub fn run_group_threads(job: &JobConfig) -> Result<GroupRunOutcome, NetError> {
    job.validate();
    // Shard servers: one transport each, serving every worker plus the coordinator.
    let mut server_addrs = Vec::with_capacity(job.servers);
    let mut server_handles = Vec::with_capacity(job.servers);
    for index in 0..job.servers {
        let mut transport = TcpServerTransport::bind("127.0.0.1:0", job.num_workers + 1)?;
        server_addrs.push(transport.local_addr().to_string());
        let job = job.clone();
        server_handles.push(std::thread::spawn(move || {
            serve_shard(&job, index, &mut transport)
        }));
    }

    let mut coord_transport = TcpServerTransport::bind("127.0.0.1:0", job.num_workers)?;
    let coord_addr = coord_transport.local_addr().to_string();

    let timeout = Some(Duration::from_millis(job.stall_timeout_ms.max(1)));
    let mut worker_handles = Vec::with_capacity(job.num_workers);
    for rank in 0..job.num_workers {
        let job = job.clone();
        let coord_addr = coord_addr.clone();
        let server_addrs = server_addrs.clone();
        worker_handles.push(std::thread::spawn(
            move || -> Result<WorkerReport, NetError> {
                let mut coord = TcpWorkerTransport::connect(&coord_addr)?;
                let links = connect_links(&server_addrs, timeout)?;
                run_group_worker(&job, rank, &mut coord, links)
            },
        ));
    }

    let links = connect_links(&server_addrs, timeout)?;
    let result = coordinate(job, &mut coord_transport, links);
    // A faulted coordinator dies *without* the protocol goodbye. Closing its
    // transport here is what lets workers blocked on a coordinator read observe
    // the loss and unwind, so the joins below cannot hang.
    drop(coord_transport);

    let mut workers = Vec::with_capacity(job.num_workers);
    let mut worker_failure: Option<NetError> = None;
    for (rank, handle) in worker_handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(report)) => workers.push(report),
            Ok(Err(e)) => {
                worker_failure.get_or_insert(NetError::WorkerProcess(format!(
                    "worker {rank} failed: {e}"
                )));
            }
            Err(_) => {
                worker_failure
                    .get_or_insert(NetError::WorkerProcess(format!("worker {rank} panicked")));
            }
        }
    }
    for (index, handle) in server_handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => {
                worker_failure.get_or_insert(NetError::WorkerProcess(format!(
                    "shard server {index} failed: {e}"
                )));
            }
            Err(_) => {
                worker_failure.get_or_insert(NetError::WorkerProcess(format!(
                    "shard server {index} panicked"
                )));
            }
        }
    }

    let trace = result?;
    if let Some(e) = worker_failure {
        return Err(e);
    }
    Ok(GroupRunOutcome { trace, workers })
}
