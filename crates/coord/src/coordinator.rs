//! The coordinator service: the clock/controller half of a multi-server group.
//!
//! The coordinator owns exactly the state the paper's Algorithms 1 and 2 need —
//! worker clocks, the interval table, the synchronization policy — via a clock-only
//! [`ServerLoop`] (`dssp_ps::SyncGate` underneath), and never touches bulk data:
//! workers push and pull weight shards directly against the shard servers and
//! exchange only tiny `ClockPush`/`ClockGrant` messages here. The coordinator also
//! keeps one client link per shard server for evaluation pulls (assembling the global
//! weights into a reused buffer, delta-incrementally), end-of-run statistics
//! collection, and shutdown propagation.
//!
//! # Deterministic mode
//!
//! Under [`JobConfig::deterministic`] the coordinator serializes the group so an
//! N-server run is bitwise equal to a single server: incoming `ClockPush`/`Done`
//! events are buffered in the shared `DeterministicGate` and released in canonical
//! `(iteration, rank)` order; a released push is granted back to its worker
//! ([`Message::PushGrant`]) and the clock only advances once the worker confirms
//! every shard server acked its slices ([`Message::PushApplied`]); granted workers'
//! pulls are awaited ([`Message::PullDone`]) before the next mutating event is
//! dispatched. No gradient application, pull, or evaluation can therefore interleave
//! with another mutation — the exact serialization a single server's command loop
//! gets for free.

use crate::client::{FanOutcome, ServerLink, ShardFan};
use crate::layout::MigrationPlan;
use dssp_core::driver::{
    DeterministicGate, FaultRole, JobConfig, MigrationCommand, ServerLoop, WorkerEvent,
};
use dssp_core::events::{trace_id, EventKind, Role, NO_TRACE};
use dssp_net::wire::{MIGRATE_CONTROL, PROTOCOL_VERSION, SHUTDOWN_OK, SHUTDOWN_SERVER_ERROR};
use dssp_net::{
    require_helloed, validate_hello, CheckpointSink, FaultClock, Message, NetError, Obs,
    ServerTransport,
};
use dssp_ps::{CheckpointError, LayoutSnapshot};
use dssp_sim::{GroupServerStats, RunTrace};
use std::sync::atomic::Ordering::Relaxed;
use std::time::Instant;

/// Runs a full training job as the coordinator of a group and returns the run trace,
/// with [`RunTrace::group_servers`] aggregating every shard server's counters.
///
/// `transport` serves the workers (one slot per rank); `links` are fresh connections
/// to the shard servers, in server order (the coordinator handshakes them itself,
/// announcing rank `num_workers`). On every exit path — success, protocol failure, or
/// the `fail_after_pushes` chaos abort — `Shutdown` is broadcast to all workers *and*
/// propagated to every shard server, so no group process is ever leaked.
///
/// # Panics
///
/// Panics if the configuration is inconsistent ([`JobConfig::validate`]).
pub fn coordinate(
    job: &JobConfig,
    transport: &mut dyn ServerTransport,
    links: Vec<ServerLink>,
) -> Result<RunTrace, NetError> {
    job.validate();
    // One slot per worker, plus at most one spare: the operator's admin channel
    // (rank `num_workers`), used by `drain`/`rebalance` CLI clients mid-run.
    let extra = transport.num_workers().wrapping_sub(job.num_workers);
    if extra > 1 {
        return Err(NetError::Protocol(format!(
            "coordinator transport serves {} workers but the job has {}",
            transport.num_workers(),
            job.num_workers
        )));
    }
    let admin = (extra == 1).then_some(job.num_workers);
    // Start fresh, or resume the synchronization state (clocks, credits, interval
    // tick) from the coordinator's durable checkpoint. A load failure still shuts the
    // fleet down cleanly: workers get the broadcast, and the dropped shard-server
    // links tell the shard servers their coordinator is gone.
    let restoring = job.checkpoint.as_ref().is_some_and(|c| c.restore);
    // The layout the coordinator's checkpoint recorded, if the group had migrated
    // before the crash; adopted into the fan before any traffic flows.
    let mut restored_layout: Option<LayoutSnapshot> = None;
    let sl = if restoring {
        let spec = job.checkpoint.as_ref().expect("restoring implies a spec");
        let path = spec.dir.join(dssp_ps::coord_checkpoint_name());
        match dssp_ps::Checkpoint::load_for_job(&path, job.stable_digest()) {
            Ok(ckpt) if ckpt.has_retired_workers() => {
                transport.broadcast(&Message::Shutdown {
                    reason: SHUTDOWN_SERVER_ERROR,
                });
                return Err(NetError::Protocol(format!(
                    "cannot restore from {}: the checkpoint records retired workers \
                     (a finished run or a post-eviction snapshot is not resumable)",
                    path.display()
                )));
            }
            Ok(ckpt) => {
                restored_layout = ckpt.layout.clone();
                ServerLoop::restore(job, &ckpt, true)
            }
            Err(e) => {
                transport.broadcast(&Message::Shutdown {
                    reason: SHUTDOWN_SERVER_ERROR,
                });
                return Err(e.into());
            }
        }
    } else {
        ServerLoop::clock_only(job)
    };
    // The coordinator's observability bundle: events to `coord.ndjson`, metrics at
    // the base `--metrics-addr` (shard servers derive their own ports from it).
    let obs = match Obs::new(
        Role::Coordinator,
        0,
        job.event_log.as_deref(),
        job.metrics_addr.as_deref(),
    ) {
        Ok(obs) => obs,
        Err(e) => {
            transport.broadcast(&Message::Shutdown {
                reason: SHUTDOWN_SERVER_ERROR,
            });
            return Err(e);
        }
    };
    let mut fan = ShardFan::new(job, sl.param_len(), links);
    fan.set_event_log(obs.event_log().cloned());
    let result = fan.hello(job, job.num_workers as u32).and_then(|()| {
        if let Some(l) = restored_layout.filter(|l| l.epoch != 0) {
            fan.adopt(l.epoch, &l.assignment)?;
        }
        if restoring {
            check_restore_skew(&sl, &mut fan)?;
        }
        Coordinator::new(job, sl, restoring, admin, &obs).run(transport, &mut fan)
    });
    // Best-effort on the error path (the Ok path already flushed with `?`): a crashed
    // run should still leave its coordinator timeline behind when possible.
    if result.is_err() {
        let _ = obs.flush();
    }
    match result {
        Ok(trace) => {
            transport.broadcast(&Message::Shutdown {
                reason: SHUTDOWN_OK,
            });
            fan.send_all(&Message::Shutdown {
                reason: SHUTDOWN_OK,
            });
            Ok(trace)
        }
        Err(e) => {
            // An injected fault simulates a crash: die without the protocol goodbye
            // so peers observe the same abrupt connection loss a real kill produces.
            if !matches!(e, NetError::FaultInjected { .. }) {
                transport.broadcast(&Message::Shutdown {
                    reason: SHUTDOWN_SERVER_ERROR,
                });
                fan.send_all(&Message::Shutdown {
                    reason: SHUTDOWN_SERVER_ERROR,
                });
            }
            Err(e)
        }
    }
}

/// The coordinator's per-run state: the clock-only decision loop plus the
/// deterministic-mode serialization bookkeeping.
struct Coordinator<'job> {
    job: &'job JobConfig,
    sl: ServerLoop,
    gate: Option<DeterministicGate>,
    targets: Vec<u64>,
    helloed: Vec<bool>,
    /// Last announced ClockPush iteration per worker (a granted worker whose push was
    /// final will never pull again, so no PullDone is expected from it).
    last_iter: Vec<u64>,
    /// Last causal trace id per worker (a worker has one operation in flight at a
    /// time), stamped into the gate events its clock pushes produce.
    last_trace: Vec<u64>,
    /// Sequence for coordinator-originated traces (migration legs, evaluation
    /// pulls); their rank slot is `num_workers` — one past the worker ranks.
    coord_seq: u32,
    /// The granted push we are waiting on (deterministic mode).
    pending_apply: Option<WorkerEvent>,
    /// A gate-released event we could not dispatch yet (pulls still in flight).
    held: Option<WorkerEvent>,
    /// Which workers have a granted pull in flight (everyone's initial pull at the
    /// start). Per-worker so evicting a dead worker cancels exactly its pull.
    pull_pending: Vec<bool>,
    /// This process's structured chaos hooks.
    fault: FaultClock,
    /// Durable checkpoint cadence (clock state only — the weights live on the shard
    /// servers, which checkpoint themselves).
    sink: CheckpointSink,
    digest: u64,
    /// Reused assembly buffers for evaluation pulls.
    eval_weights: Vec<f32>,
    eval_versions: Vec<u64>,
    /// Structured events + Prometheus counters for this process.
    obs: &'job Obs,
    start: Instant,
    /// The admin channel's transport rank (`num_workers`) when the transport bound
    /// the spare slot, `None` on transports sized exactly to the worker count.
    admin: Option<usize>,
    /// Whether the admin slot has handshaked (version-checked `Hello`).
    admin_helloed: bool,
    /// A migration armed (by the admin channel, the declarative spec, or the skew
    /// threshold) and waiting for group quiescence to execute.
    armed: Option<ArmedMigration>,
    /// Non-deterministic mode: clock grants produced while a migration is armed are
    /// withheld here and flushed after the commit's `LayoutUpdate` broadcast — the
    /// per-connection TCP ordering then guarantees every worker adopts the new
    /// layout before its next fan-out.
    withheld: Vec<(usize, Message)>,
    /// Which workers are blocked at the gate awaiting a clock grant (the
    /// non-deterministic quiescence signal: such a worker has no fan-out in flight).
    awaiting_grant: Vec<bool>,
    /// Which workers have reported `Done` or been evicted (also quiescent).
    finished: Vec<bool>,
}

/// A migration waiting at the coordinator for the group to reach a quiescent round
/// boundary.
struct ArmedMigration {
    /// The drain or rebalance to run.
    command: MigrationCommand,
    /// The admin rank to answer with [`Message::AdminAck`], `None` when the spec or
    /// the skew threshold armed the migration.
    requester: Option<usize>,
}

impl<'job> Coordinator<'job> {
    fn new(
        job: &'job JobConfig,
        sl: ServerLoop,
        restoring: bool,
        admin: Option<usize>,
        obs: &'job Obs,
    ) -> Self {
        let targets = sl.targets().to_vec();
        let det = job.deterministic;
        // On a restore the gate's dispatch bookkeeping resumes from the checkpointed
        // push counts; every worker — finished or not — re-pulls before anything else.
        let gate = det.then(|| {
            if restoring {
                DeterministicGate::resume(targets.clone(), &sl.push_counts(), false)
            } else {
                DeterministicGate::new(targets.clone(), false)
            }
        });
        let last_iter = if restoring {
            sl.push_counts()
        } else {
            vec![0u64; job.num_workers]
        };
        Self {
            job,
            gate,
            targets,
            helloed: vec![false; job.num_workers],
            last_iter,
            last_trace: vec![NO_TRACE; job.num_workers],
            coord_seq: 0,
            pending_apply: None,
            held: None,
            pull_pending: vec![det; job.num_workers],
            fault: FaultClock::new(job, FaultRole::Coordinator),
            sink: CheckpointSink::new(job.checkpoint.as_ref(), &dssp_ps::coord_checkpoint_name()),
            digest: job.stable_digest(),
            eval_weights: Vec::new(),
            eval_versions: Vec::new(),
            obs,
            start: Instant::now(),
            admin,
            admin_helloed: false,
            armed: None,
            withheld: Vec::new(),
            awaiting_grant: vec![false; job.num_workers],
            finished: vec![false; job.num_workers],
            sl,
        }
    }

    fn pulls_in_flight(&self) -> bool {
        self.pull_pending.iter().any(|&p| p)
    }

    /// Mints the next coordinator-originated trace id (rank slot `num_workers`).
    fn next_coord_trace(&mut self) -> u64 {
        self.coord_seq = self.coord_seq.wrapping_add(1);
        trace_id(self.job.num_workers as u32, self.coord_seq)
    }

    /// Reaps one dead (or explicitly evicted) worker: cancels whatever it had in
    /// flight (a granted-but-unconfirmed push, a pending pull, queued gate events),
    /// reclaims its policy credits, retires its clock, and delivers the grants its
    /// departure releases to the survivors.
    fn evict(&mut self, transport: &mut dyn ServerTransport, rank: usize) -> Result<(), NetError> {
        if self
            .pending_apply
            .as_ref()
            .is_some_and(|ev| ev.worker() == rank)
        {
            self.pending_apply = None;
        }
        if self.held.as_ref().is_some_and(|ev| ev.worker() == rank) {
            self.held = None;
        }
        self.pull_pending[rank] = false;
        let now = self.start.elapsed().as_secs_f64();
        let released = self.sl.evict_worker(rank, now);
        self.obs.on_eviction(rank);
        if let Some(g) = self.gate.as_mut() {
            g.forget_worker(rank);
            for reply in &released {
                g.on_released(reply.worker);
            }
        }
        for reply in &released {
            self.obs.event_traced(
                EventKind::GateRelease,
                reply.worker as u64,
                self.last_trace[reply.worker],
            );
        }
        self.obs.sync_loop(&self.sl);
        for reply in &released {
            self.send_grant(transport, reply.worker, reply.granted_extra)?;
        }
        self.finished[rank] = true;
        self.awaiting_grant[rank] = false;
        Ok(())
    }

    /// Delivers one clock grant — or withholds it while a migration is armed in
    /// non-deterministic mode, so the grantee stays blocked at the gate until the
    /// commit's layout broadcast has gone out ahead of it. Deterministic mode never
    /// withholds: the dispatch loop simply stops releasing events while armed, and
    /// quiescence follows from the drained pulls.
    fn send_grant(
        &mut self,
        transport: &mut dyn ServerTransport,
        worker: usize,
        granted_extra: u64,
    ) -> Result<(), NetError> {
        let msg = Message::ClockGrant {
            granted_extra,
            version: self.sl.version(),
        };
        if self.armed.is_some() && !self.job.deterministic {
            self.withheld.push((worker, msg));
        } else {
            transport.send(worker, &msg)?;
            self.awaiting_grant[worker] = false;
        }
        if self.job.deterministic && self.last_iter[worker] < self.targets[worker] {
            self.pull_pending[worker] = true;
        }
        Ok(())
    }

    /// Sends every withheld grant (after a commit's layout broadcast, or after a
    /// refused/rolled-back migration disarms).
    fn flush_withheld(&mut self, transport: &mut dyn ServerTransport) -> Result<(), NetError> {
        for (worker, msg) in std::mem::take(&mut self.withheld) {
            transport.send(worker, &msg)?;
            self.awaiting_grant[worker] = false;
        }
        Ok(())
    }

    /// Non-deterministic quiescence: every worker is finished or blocked at the gate
    /// awaiting a grant. A worker sends `ClockPush` only after its push fan-out fully
    /// acked, and it pulls only after receiving a grant — so when all are blocked, no
    /// slice or pull is in flight anywhere in the group.
    fn quiescent(&self) -> bool {
        (0..self.job.num_workers).all(|w| self.finished[w] || self.awaiting_grant[w])
    }

    fn run(
        mut self,
        transport: &mut dyn ServerTransport,
        fan: &mut ShardFan,
    ) -> Result<RunTrace, NetError> {
        let det = self.job.deterministic;
        let expected_digest = self.job.stable_digest();
        self.obs
            .set_layout(fan.layout().epoch(), fan.layout().shards() as u64);

        while !self.sl.all_done() {
            // Arm a declarative or threshold-triggered migration, if one came due
            // (admin requests arm inside the message loop instead); execution always
            // waits for group quiescence below.
            self.maybe_arm(fan);
            // Deterministic mode: dispatch everything the gate can release under the
            // serialization rules before blocking on the transport again.
            while det && self.pending_apply.is_none() && !self.sl.all_done() {
                if self.armed.is_some() {
                    // Freeze point: release nothing more while armed. Once every
                    // granted pull has drained the group is quiescent (no granted
                    // push is pending either — `pending_apply` is `None` here).
                    if self.pulls_in_flight() {
                        break;
                    }
                    self.execute_armed(transport, fan)?;
                    continue;
                }
                if self.held.is_none() {
                    self.held = self.gate.as_mut().and_then(|g| g.next());
                }
                let Some(event) = self.held.take() else { break };
                // Mutating events wait until every granted pull completed.
                if self.pulls_in_flight() {
                    self.held = Some(event);
                    break;
                }
                match event {
                    WorkerEvent::Push { worker, .. } => {
                        // Grant the apply slot; the clock advances on PushApplied.
                        transport.send(worker, &Message::PushGrant)?;
                        self.pending_apply = Some(event);
                    }
                    done @ WorkerEvent::Done { .. } => {
                        self.apply_event(transport, fan, done)?;
                    }
                    WorkerEvent::Pull { .. } => {
                        unreachable!("group coordinators never offer Pull events")
                    }
                }
            }
            // Non-deterministic mode reaches quiescence when every worker is blocked
            // at the gate (their grants withheld while armed).
            if !det && self.armed.is_some() && self.quiescent() {
                self.execute_armed(transport, fan)?;
            }
            if self.sl.all_done() {
                break;
            }

            self.obs.mirror_transport(&transport.transport_stats());
            self.obs.metrics().reconnects.store(fan.reconnects, Relaxed);
            let (rank, msg) = match transport.recv() {
                Ok(pair) => pair,
                // The operator's CLI hung up after its ack (or mid-request): the
                // admin slot is not a worker, nothing to evict.
                Err(NetError::ClientLost { rank }) if Some(rank) == self.admin => continue,
                // A worker died mid-run: reap it instead of stalling the gate.
                Err(NetError::ClientLost { rank }) => {
                    self.evict(transport, rank)?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            if Some(rank) == self.admin {
                self.handle_admin(transport, fan, msg)?;
                continue;
            }
            match msg {
                Message::Hello {
                    version,
                    rank: hello_rank,
                    num_workers,
                    config_digest,
                } => {
                    validate_hello(
                        rank,
                        version,
                        hello_rank,
                        num_workers,
                        config_digest,
                        self.job.num_workers,
                        expected_digest,
                        &mut self.helloed,
                    )?;
                    self.obs.on_join(rank);
                }
                Message::JoinRequest => {
                    require_helloed(&self.helloed, rank)?;
                    // Membership: admit the worker at the number of pushes already
                    // confirmed from its rank — zero on a fresh run, the restored
                    // clock after a checkpoint restore — and hand it the committed
                    // layout, so a (re)joiner of a migrated group routes correctly
                    // from its very first fan-out.
                    let epoch = fan.layout().epoch();
                    transport.send(
                        rank,
                        &Message::JoinAck {
                            clock: self.sl.push_count(rank),
                            epoch,
                            assignment: if epoch == 0 {
                                Vec::new()
                            } else {
                                fan.layout().assignment().to_vec()
                            },
                        },
                    )?;
                }
                Message::Evict { rank: victim } => {
                    require_helloed(&self.helloed, rank)?;
                    let victim = victim as usize;
                    if victim >= self.job.num_workers {
                        return Err(NetError::Protocol(format!(
                            "eviction of rank {victim}, job has {} workers",
                            self.job.num_workers
                        )));
                    }
                    self.evict(transport, victim)?;
                }
                Message::ClockPush { iteration, trace } => {
                    require_helloed(&self.helloed, rank)?;
                    // The worker's fan-out for this iteration fully acked before it
                    // announced the push; until its grant goes out it is blocked.
                    self.awaiting_grant[rank] = true;
                    self.last_iter[rank] = iteration;
                    self.last_trace[rank] = trace;
                    let event = WorkerEvent::Push {
                        worker: rank,
                        iteration,
                        grads: Vec::new(), // the gradients went to the shard servers
                    };
                    match self.gate.as_mut() {
                        Some(g) => g.offer(event),
                        None => self.apply_event(transport, fan, event)?,
                    }
                }
                Message::PushApplied { iteration } => {
                    require_helloed(&self.helloed, rank)?;
                    let event = match self.pending_apply.take() {
                        Some(ev) => {
                            let matches = matches!(
                                &ev,
                                WorkerEvent::Push { worker, iteration: granted, .. }
                                    if *worker == rank && *granted == iteration
                            );
                            if !matches {
                                return Err(NetError::Protocol(format!(
                                    "PushApplied({iteration}) from worker {rank} does not \
                                     match the granted push {ev:?}"
                                )));
                            }
                            ev
                        }
                        None => {
                            return Err(NetError::Protocol(format!(
                                "PushApplied({iteration}) from worker {rank} without a \
                                 granted push"
                            )))
                        }
                    };
                    self.apply_event(transport, fan, event)?;
                }
                Message::PullDone => {
                    require_helloed(&self.helloed, rank)?;
                    if !det {
                        return Err(NetError::Protocol(format!(
                            "PullDone from worker {rank} outside deterministic mode"
                        )));
                    }
                    if !self.pull_pending[rank] {
                        return Err(NetError::Protocol(format!(
                            "unexpected PullDone from worker {rank}"
                        )));
                    }
                    self.pull_pending[rank] = false;
                }
                Message::Done {
                    iterations,
                    epochs,
                    waiting_time_s,
                } => {
                    require_helloed(&self.helloed, rank)?;
                    self.finished[rank] = true;
                    let event = WorkerEvent::Done {
                        worker: rank,
                        iterations,
                        epochs: epochs as usize,
                        waiting_time_s,
                    };
                    match self.gate.as_mut() {
                        Some(g) => g.offer(event),
                        None => self.apply_event(transport, fan, event)?,
                    }
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "unexpected {other:?} from worker {rank} at the coordinator"
                    )))
                }
            }
        }

        // All workers reported Done, and every push they made was acked by every
        // shard server before that — the group state is final. Assemble the weights
        // for the closing evaluation, then gather per-server statistics before
        // shutting down.
        let total = self.start.elapsed().as_secs_f64();
        let eval_trace = self.next_coord_trace();
        pull_for_eval(
            self.job,
            fan,
            eval_trace,
            &mut self.eval_weights,
            &mut self.eval_versions,
        )?;
        self.fault.pull()?;
        // The run's terminal clock state is always durable, regardless of cadence.
        let digest = self.digest;
        let sl = &self.sl;
        self.sink.finalize(|| sl.snapshot(digest))?;
        if self.job.checkpoint.is_some() {
            self.obs.on_checkpoint(self.sl.version());
        }
        // Terminal counter sync before `finish_external` consumes the decision loop.
        self.obs.sync_loop(&self.sl);
        let mut trace = self.sl.finish_external(&self.eval_weights, total);
        // Final statistics snapshot, per-link tolerant: a shard server that died (or
        // a link torn by a mid-run worker eviction) yields a zeroed row instead of
        // discarding every survivor's counters from the trace.
        trace.group_servers = collect_group_stats(fan);
        self.obs.metrics().reconnects.store(fan.reconnects, Relaxed);
        self.obs.mirror_transport(&transport.transport_stats());
        self.obs.flush()?;
        Ok(trace)
    }

    /// Applies one worker event to the decision loop, delivers the resulting grants,
    /// and runs any evaluation that came due (pulling the group's weights first).
    fn apply_event(
        &mut self,
        transport: &mut dyn ServerTransport,
        fan: &mut ShardFan,
        event: WorkerEvent,
    ) -> Result<(), NetError> {
        let pusher = match &event {
            WorkerEvent::Push { worker, .. } => Some(*worker),
            _ => None,
        };
        let now = self.start.elapsed().as_secs_f64();
        // Every processed push adds exactly the pusher's lead to the cumulative
        // staleness sum, so the delta across `handle_gated` recovers the per-push
        // sample the histogram needs without touching the decision API.
        let staleness_before = self.sl.stats().staleness_sum;
        let replies = self.sl.handle_gated(&mut self.gate, event, now);
        if let Some(pusher) = pusher {
            let sample = self.sl.stats().staleness_sum - staleness_before;
            self.obs
                .on_push(pusher, Some(sample), &replies, &self.sl, &self.last_trace);
        }
        // A granted worker that has not run its final iteration will pull next; in
        // deterministic mode the coordinator must wait for that pull before the next
        // mutation (tracked inside `send_grant`).
        for reply in &replies {
            self.send_grant(transport, reply.worker, reply.granted_extra)?;
        }
        if let Some(eval_now) = self.sl.take_pending_eval() {
            let eval_trace = self.next_coord_trace();
            pull_for_eval(
                self.job,
                fan,
                eval_trace,
                &mut self.eval_weights,
                &mut self.eval_versions,
            )?;
            self.sl.record_eval_external(&self.eval_weights, eval_now);
            self.fault.pull()?;
        }
        if self.sl.aborted() {
            return Err(NetError::Aborted {
                pushes: self.sl.version(),
            });
        }
        // Elasticity hooks: the coordinator's push phase is a processed clock push,
        // its gate phase a deferred one, and its checkpoint covers the clock state.
        if let Some(pusher) = pusher {
            self.fault.push()?;
            if !replies.iter().any(|r| r.worker == pusher) {
                self.fault.gate_blocked()?;
            }
            let digest = self.digest;
            let sl = &self.sl;
            if self
                .sink
                .maybe_write(sl.version(), || sl.snapshot(digest))?
            {
                self.obs.on_checkpoint(self.sl.version());
                self.fault.checkpoint()?;
            }
        }
        Ok(())
    }

    /// Arms the declarative migration spec or the skew-threshold rebalance when one
    /// comes due. The spec fires at most once per group life — only from the launch
    /// layout (epoch 0), so a coordinator restored after its commit does not migrate
    /// again. The threshold only arms when a rebalance actually has moves, so an
    /// already-balanced (or unbalanceable) group never re-arms a no-op forever.
    fn maybe_arm(&mut self, fan: &ShardFan) {
        if self.armed.is_some() {
            return;
        }
        if let Some(spec) = self.job.migration.as_ref() {
            if fan.layout().epoch() == 0 && self.sl.version() >= spec.at_version {
                self.armed = Some(ArmedMigration {
                    command: spec.command,
                    requester: None,
                });
                return;
            }
        }
        if let Some(threshold) = self.job.migrate_threshold {
            if fan.layout().skew() as u64 > threshold && fan.layout().rebalance_plan().is_ok() {
                self.armed = Some(ArmedMigration {
                    command: MigrationCommand::Rebalance,
                    requester: None,
                });
            }
        }
    }

    /// Handles one message from the admin channel (the operator's drain/rebalance
    /// CLI). The slot's handshake is version-checked only — an operator does not
    /// know the job's config digest — and it carries nothing but `Hello`, `Drain`
    /// and `Rebalance`.
    fn handle_admin(
        &mut self,
        transport: &mut dyn ServerTransport,
        fan: &ShardFan,
        msg: Message,
    ) -> Result<(), NetError> {
        match msg {
            Message::Hello { version, .. } => {
                if version != PROTOCOL_VERSION {
                    return Err(NetError::Protocol(format!(
                        "admin channel speaks protocol {version}, this group runs \
                         {PROTOCOL_VERSION}"
                    )));
                }
                self.admin_helloed = true;
            }
            Message::Drain { server } => {
                self.admin_request(transport, fan, MigrationCommand::Drain(server as usize))?;
            }
            Message::Rebalance => {
                self.admin_request(transport, fan, MigrationCommand::Rebalance)?;
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "unexpected {other:?} on the admin channel"
                )))
            }
        }
        Ok(())
    }

    /// Validates and arms an operator-requested migration, or answers immediately
    /// with a refusing [`Message::AdminAck`] carrying the planner's reason. The
    /// accepting ack is only sent once the migration commits (or the rollback's
    /// refusal, if it does not), so the operator's exit status reflects the outcome.
    fn admin_request(
        &mut self,
        transport: &mut dyn ServerTransport,
        fan: &ShardFan,
        command: MigrationCommand,
    ) -> Result<(), NetError> {
        let admin = self.admin.expect("handle_admin implies the admin slot");
        if !self.admin_helloed {
            return Err(NetError::Protocol(
                "admin command before the channel's hello".to_string(),
            ));
        }
        let reason = if self.armed.is_some() {
            "a migration is already in flight".to_string()
        } else {
            match plan_for(fan, command) {
                Ok(_) => {
                    self.armed = Some(ArmedMigration {
                        command,
                        requester: Some(admin),
                    });
                    return Ok(());
                }
                Err(reason) => reason,
            }
        };
        transport.send(
            admin,
            &Message::AdminAck {
                epoch: fan.layout().epoch(),
                accepted: false,
                reason,
            },
        )
    }

    /// Runs the armed migration at a quiescent round boundary: plan, prepare,
    /// transfer, commit — or roll the fleet back and surface the typed error. Either
    /// way the armed state is consumed and any withheld grants are flushed, so the
    /// group never stays frozen.
    fn execute_armed(
        &mut self,
        transport: &mut dyn ServerTransport,
        fan: &mut ShardFan,
    ) -> Result<(), NetError> {
        let ArmedMigration { command, requester } =
            self.armed.take().expect("execute_armed is gated on armed");
        let plan = match plan_for(fan, command) {
            Ok(plan) => plan,
            Err(reason) => {
                // The layout changed between arming and quiescence (an interleaved
                // admin migration): refuse, thaw, carry on.
                if let Some(admin) = requester {
                    let _ = transport.send(
                        admin,
                        &Message::AdminAck {
                            epoch: fan.layout().epoch(),
                            accepted: false,
                            reason,
                        },
                    );
                }
                return self.flush_withheld(transport);
            }
        };
        let epoch = plan.from_epoch + 1;
        // One coordinator-originated trace id covers the whole migration: every
        // control leg, shard transfer and the commit/rollback terminal carry it, so
        // `repro analyze`/`repro trace` can follow a drain end-to-end like a push.
        let mig_trace = self.next_coord_trace();
        match self.migrate(transport, fan, &plan, epoch, mig_trace) {
            Ok(()) => {
                if let Some(admin) = requester {
                    let _ = transport.send(
                        admin,
                        &Message::AdminAck {
                            epoch,
                            accepted: true,
                            reason: String::new(),
                        },
                    );
                }
                self.flush_withheld(transport)
            }
            Err(e) => {
                // Commit-or-rollback: any failed leg thaws every frozen server
                // before the typed error tears the run down. An injected fault
                // simulates a crash and dies abruptly instead; the workers' bounded
                // freeze probes then degrade the orphaned freeze into a typed error,
                // and the shard servers exit when their coordinator link drops.
                if !matches!(e, NetError::FaultInjected { .. }) {
                    fan.send_all(&Message::MigrateAbort { epoch });
                    self.obs
                        .event_traced(EventKind::MigrationRollback, epoch, mig_trace);
                }
                if let Some(admin) = requester {
                    let _ = transport.send(
                        admin,
                        &Message::AdminAck {
                            epoch,
                            accepted: false,
                            reason: format!("{e}"),
                        },
                    );
                }
                Err(e)
            }
        }
    }

    /// The two-phase migration proper. **Prepare** freezes every server toward
    /// `epoch` (pushes and pulls refused from the ack on); **transfer** relays each
    /// moving shard's weights, version and momentum slice source → destination
    /// through the coordinator (shard servers never dial each other); **commit**
    /// broadcasts the new assignment, awaits every server's rebuild ack, re-routes
    /// the fan and the workers, and forces a durable checkpoint recording the layout.
    fn migrate(
        &mut self,
        transport: &mut dyn ServerTransport,
        fan: &mut ShardFan,
        plan: &MigrationPlan,
        epoch: u64,
        mig_trace: u64,
    ) -> Result<(), NetError> {
        self.obs
            .event_traced(EventKind::MigrationPrepare, epoch, mig_trace);
        for server in 0..fan.num_links() {
            fan.send_to(server, &Message::MigratePrepare { epoch })?;
        }
        for server in 0..fan.num_links() {
            expect_control_ack(fan.recv_from(server)?, epoch, server)?;
        }
        self.fault.migrate_prepare()?;
        for mv in &plan.moves {
            self.fault.migrate_transfer()?;
            fan.send_to(
                mv.from as usize,
                &Message::MigrateRequest {
                    epoch,
                    shard: mv.shard,
                    trace: mig_trace,
                },
            )?;
            let payload = fan.recv_from(mv.from as usize)?;
            match &payload {
                Message::MigrateShard {
                    epoch: e, shard, ..
                } if *e == epoch && *shard == mv.shard => {}
                other => {
                    return Err(NetError::Protocol(format!(
                        "transfer of shard {} from server {}: expected its MigrateShard, \
                         got {other:?}",
                        mv.shard, mv.from
                    )))
                }
            }
            fan.send_to(mv.to as usize, &payload)?;
            match fan.recv_from(mv.to as usize)? {
                Message::MigrateAck { epoch: e, shard } if e == epoch && shard == mv.shard => {}
                other => {
                    return Err(NetError::Protocol(format!(
                        "server {} never staged shard {}: expected its MigrateAck, got \
                         {other:?}",
                        mv.to, mv.shard
                    )))
                }
            }
            self.obs
                .event_traced(EventKind::ShardTransfer, u64::from(mv.shard), mig_trace);
        }
        for server in 0..fan.num_links() {
            // The hook sits between the per-server sends, so the chaos matrix can
            // tear a commit mid-broadcast.
            self.fault.migrate_commit()?;
            fan.send_to(
                server,
                &Message::LayoutUpdate {
                    epoch,
                    assignment: plan.assignment.clone(),
                },
            )?;
        }
        for server in 0..fan.num_links() {
            expect_control_ack(fan.recv_from(server)?, epoch, server)?;
        }
        fan.adopt(epoch, &plan.assignment)?;
        self.obs
            .event_traced(EventKind::MigrationCommit, epoch, mig_trace);
        self.obs.set_layout(epoch, fan.layout().shards() as u64);
        // Force the clock checkpoint with the committed layout, regardless of
        // cadence: a coordinator restored from anything older would route by a
        // retired assignment and refuse the (migrated) shard servers' state.
        let digest = self.digest;
        let sl = &self.sl;
        let assignment = plan.assignment.clone();
        self.sink.force(move || {
            let mut ckpt = sl.snapshot(digest);
            ckpt.layout = Some(LayoutSnapshot { epoch, assignment });
            ckpt
        })?;
        if self.job.checkpoint.is_some() {
            self.obs.on_checkpoint(self.sl.version());
        }
        // Re-route every live worker *before* any withheld grant reaches it: on one
        // TCP connection the layout always arrives ahead of the grant that lets the
        // worker fan out again. Best-effort per worker — a rank that is between
        // `Done` and the shutdown broadcast may already have hung up.
        for worker in 0..self.job.num_workers {
            if self.helloed[worker] && !self.finished[worker] {
                let _ = transport.send(
                    worker,
                    &Message::LayoutUpdate {
                        epoch,
                        assignment: plan.assignment.clone(),
                    },
                );
            }
        }
        Ok(())
    }
}

/// Plans the layout change `command` asks for, from the fan's current layout.
fn plan_for(fan: &ShardFan, command: MigrationCommand) -> Result<MigrationPlan, String> {
    match command {
        MigrationCommand::Drain(server) => fan.layout().drain_plan(server),
        MigrationCommand::Rebalance => fan.layout().rebalance_plan(),
    }
}

/// Validates one control-phase [`Message::MigrateAck`] (prepare or commit leg).
fn expect_control_ack(msg: Message, epoch: u64, server: usize) -> Result<(), NetError> {
    match msg {
        Message::MigrateAck { epoch: e, shard } if e == epoch && shard == MIGRATE_CONTROL => Ok(()),
        other => Err(NetError::Protocol(format!(
            "server {server} answered the epoch-{epoch} migration control message with {other:?}"
        ))),
    }
}

/// Verifies that every restored shard server sits at exactly the push count the
/// coordinator's checkpoint records. The per-role checkpoints are written
/// independently, so a crash can land between a shard's write and the coordinator's
/// (or vice versa); resuming such a torn set would double-apply or drop the pushes in
/// the gap. A typed refusal here is what keeps the restart leg of the chaos matrix
/// deterministic: either every checkpoint agrees and the run resumes bitwise, or the
/// fleet aborts cleanly before a single gradient moves.
fn check_restore_skew(sl: &ServerLoop, fan: &mut ShardFan) -> Result<(), NetError> {
    let expected = sl.version();
    let expected_epoch = fan.layout().epoch();
    let stats = fan.collect_stats()?;
    // Layout-epoch skew first, across the whole fleet: a server restored from the
    // wrong side of a live migration holds shards its checkpoint's layout assigned
    // it, not the ones the coordinator's layout does — push counts alone cannot see
    // that, and a push-count mismatch on an earlier server must not mask it.
    for &(.., epoch) in &stats {
        if epoch != expected_epoch {
            return Err(NetError::Checkpoint(CheckpointError::LayoutSkew {
                found: epoch,
                expected: expected_epoch,
            }));
        }
    }
    for (server, (pushes, ..)) in stats.into_iter().enumerate() {
        if pushes != expected {
            return Err(NetError::Protocol(format!(
                "restore skew: shard server {server} restored to push {pushes} but the \
                 coordinator checkpoint records {expected}; the per-role checkpoints \
                 were torn by the crash, cannot resume"
            )));
        }
    }
    Ok(())
}

/// Assembles the group's current weights into the reused buffers via a fan-out pull
/// (delta-incremental against the coordinator's own cache when the job allows).
fn pull_for_eval(
    job: &JobConfig,
    fan: &mut ShardFan,
    trace: u64,
    weights: &mut Vec<f32>,
    versions: &mut Vec<u64>,
) -> Result<(), NetError> {
    match fan.pull_group(job.delta_pulls, trace, weights, versions)? {
        FanOutcome::Applied => Ok(()),
        FanOutcome::Shutdown { .. } => Err(NetError::Protocol(
            "a shard server shut down underneath the coordinator".to_string(),
        )),
    }
}

/// Gathers every shard server's counters into [`GroupServerStats`] rows. Per-link
/// tolerant ([`ShardFan::collect_stats_tolerant`]): an unreachable server contributes
/// a zero-countered row (its layout columns still fill in), so one dead link cannot
/// strip the whole `group_servers` section from the trace of an otherwise graceful
/// shutdown.
fn collect_group_stats(fan: &mut ShardFan) -> Vec<GroupServerStats> {
    let layout = fan.layout().clone();
    let stats = fan.collect_stats_tolerant();
    stats
        .into_iter()
        .enumerate()
        .map(|(server, counters)| {
            let (pushes, pulls_full, pulls_delta, bytes_sent, bytes_received, _epoch) =
                counters.unwrap_or((0, 0, 0, 0, 0, 0));
            let (start, end) = layout.key_range(server);
            GroupServerStats {
                server,
                params: end - start,
                shards: layout.owned_shards(server),
                pushes,
                pulls_full,
                pulls_delta,
                bytes_sent,
                bytes_received,
            }
        })
        .collect()
}
