//! The coordinator service: the clock/controller half of a multi-server group.
//!
//! The coordinator owns exactly the state the paper's Algorithms 1 and 2 need —
//! worker clocks, the interval table, the synchronization policy — via a clock-only
//! [`ServerLoop`] (`dssp_ps::SyncGate` underneath), and never touches bulk data:
//! workers push and pull weight shards directly against the shard servers and
//! exchange only tiny `ClockPush`/`ClockGrant` messages here. The coordinator also
//! keeps one client link per shard server for evaluation pulls (assembling the global
//! weights into a reused buffer, delta-incrementally), end-of-run statistics
//! collection, and shutdown propagation.
//!
//! # Deterministic mode
//!
//! Under [`JobConfig::deterministic`] the coordinator serializes the group so an
//! N-server run is bitwise equal to a single server: incoming `ClockPush`/`Done`
//! events are buffered in the shared `DeterministicGate` and released in canonical
//! `(iteration, rank)` order; a released push is granted back to its worker
//! ([`Message::PushGrant`]) and the clock only advances once the worker confirms
//! every shard server acked its slices ([`Message::PushApplied`]); granted workers'
//! pulls are awaited ([`Message::PullDone`]) before the next mutating event is
//! dispatched. No gradient application, pull, or evaluation can therefore interleave
//! with another mutation — the exact serialization a single server's command loop
//! gets for free.

use crate::client::{FanOutcome, ServerLink, ShardFan};
use dssp_core::driver::{DeterministicGate, FaultRole, JobConfig, ServerLoop, WorkerEvent};
use dssp_core::events::{EventKind, Role};
use dssp_net::wire::{SHUTDOWN_OK, SHUTDOWN_SERVER_ERROR};
use dssp_net::{
    require_helloed, validate_hello, CheckpointSink, FaultClock, Message, NetError, Obs,
    ServerTransport,
};
use dssp_sim::{GroupServerStats, RunTrace};
use std::sync::atomic::Ordering::Relaxed;
use std::time::Instant;

/// Runs a full training job as the coordinator of a group and returns the run trace,
/// with [`RunTrace::group_servers`] aggregating every shard server's counters.
///
/// `transport` serves the workers (one slot per rank); `links` are fresh connections
/// to the shard servers, in server order (the coordinator handshakes them itself,
/// announcing rank `num_workers`). On every exit path — success, protocol failure, or
/// the `fail_after_pushes` chaos abort — `Shutdown` is broadcast to all workers *and*
/// propagated to every shard server, so no group process is ever leaked.
///
/// # Panics
///
/// Panics if the configuration is inconsistent ([`JobConfig::validate`]).
pub fn coordinate(
    job: &JobConfig,
    transport: &mut dyn ServerTransport,
    links: Vec<ServerLink>,
) -> Result<RunTrace, NetError> {
    job.validate();
    if transport.num_workers() != job.num_workers {
        return Err(NetError::Protocol(format!(
            "coordinator transport serves {} workers but the job has {}",
            transport.num_workers(),
            job.num_workers
        )));
    }
    // Start fresh, or resume the synchronization state (clocks, credits, interval
    // tick) from the coordinator's durable checkpoint. A load failure still shuts the
    // fleet down cleanly: workers get the broadcast, and the dropped shard-server
    // links tell the shard servers their coordinator is gone.
    let restoring = job.checkpoint.as_ref().is_some_and(|c| c.restore);
    let sl = if restoring {
        let spec = job.checkpoint.as_ref().expect("restoring implies a spec");
        let path = spec.dir.join(dssp_ps::coord_checkpoint_name());
        match dssp_ps::Checkpoint::load_for_job(&path, job.stable_digest()) {
            Ok(ckpt) if ckpt.has_retired_workers() => {
                transport.broadcast(&Message::Shutdown {
                    reason: SHUTDOWN_SERVER_ERROR,
                });
                return Err(NetError::Protocol(format!(
                    "cannot restore from {}: the checkpoint records retired workers \
                     (a finished run or a post-eviction snapshot is not resumable)",
                    path.display()
                )));
            }
            Ok(ckpt) => ServerLoop::restore(job, &ckpt, true),
            Err(e) => {
                transport.broadcast(&Message::Shutdown {
                    reason: SHUTDOWN_SERVER_ERROR,
                });
                return Err(e.into());
            }
        }
    } else {
        ServerLoop::clock_only(job)
    };
    // The coordinator's observability bundle: events to `coord.ndjson`, metrics at
    // the base `--metrics-addr` (shard servers derive their own ports from it).
    let obs = match Obs::new(
        Role::Coordinator,
        0,
        job.event_log.as_deref(),
        job.metrics_addr.as_deref(),
    ) {
        Ok(obs) => obs,
        Err(e) => {
            transport.broadcast(&Message::Shutdown {
                reason: SHUTDOWN_SERVER_ERROR,
            });
            return Err(e);
        }
    };
    let mut fan = ShardFan::new(job, sl.param_len(), links);
    fan.set_event_log(obs.event_log().cloned());
    let result = fan.hello(job, job.num_workers as u32).and_then(|()| {
        if restoring {
            check_restore_skew(&sl, &mut fan)?;
        }
        Coordinator::new(job, sl, restoring, &obs).run(transport, &mut fan)
    });
    // Best-effort on the error path (the Ok path already flushed with `?`): a crashed
    // run should still leave its coordinator timeline behind when possible.
    if result.is_err() {
        let _ = obs.flush();
    }
    match result {
        Ok(trace) => {
            transport.broadcast(&Message::Shutdown {
                reason: SHUTDOWN_OK,
            });
            fan.send_all(&Message::Shutdown {
                reason: SHUTDOWN_OK,
            });
            Ok(trace)
        }
        Err(e) => {
            // An injected fault simulates a crash: die without the protocol goodbye
            // so peers observe the same abrupt connection loss a real kill produces.
            if !matches!(e, NetError::FaultInjected { .. }) {
                transport.broadcast(&Message::Shutdown {
                    reason: SHUTDOWN_SERVER_ERROR,
                });
                fan.send_all(&Message::Shutdown {
                    reason: SHUTDOWN_SERVER_ERROR,
                });
            }
            Err(e)
        }
    }
}

/// The coordinator's per-run state: the clock-only decision loop plus the
/// deterministic-mode serialization bookkeeping.
struct Coordinator<'job> {
    job: &'job JobConfig,
    sl: ServerLoop,
    gate: Option<DeterministicGate>,
    targets: Vec<u64>,
    helloed: Vec<bool>,
    /// Last announced ClockPush iteration per worker (a granted worker whose push was
    /// final will never pull again, so no PullDone is expected from it).
    last_iter: Vec<u64>,
    /// The granted push we are waiting on (deterministic mode).
    pending_apply: Option<WorkerEvent>,
    /// A gate-released event we could not dispatch yet (pulls still in flight).
    held: Option<WorkerEvent>,
    /// Which workers have a granted pull in flight (everyone's initial pull at the
    /// start). Per-worker so evicting a dead worker cancels exactly its pull.
    pull_pending: Vec<bool>,
    /// This process's structured chaos hooks.
    fault: FaultClock,
    /// Durable checkpoint cadence (clock state only — the weights live on the shard
    /// servers, which checkpoint themselves).
    sink: CheckpointSink,
    digest: u64,
    /// Reused assembly buffers for evaluation pulls.
    eval_weights: Vec<f32>,
    eval_versions: Vec<u64>,
    /// Structured events + Prometheus counters for this process.
    obs: &'job Obs,
    start: Instant,
}

impl<'job> Coordinator<'job> {
    fn new(job: &'job JobConfig, sl: ServerLoop, restoring: bool, obs: &'job Obs) -> Self {
        let targets = sl.targets().to_vec();
        let det = job.deterministic;
        // On a restore the gate's dispatch bookkeeping resumes from the checkpointed
        // push counts; every worker — finished or not — re-pulls before anything else.
        let gate = det.then(|| {
            if restoring {
                DeterministicGate::resume(targets.clone(), &sl.push_counts(), false)
            } else {
                DeterministicGate::new(targets.clone(), false)
            }
        });
        let last_iter = if restoring {
            sl.push_counts()
        } else {
            vec![0u64; job.num_workers]
        };
        Self {
            job,
            gate,
            targets,
            helloed: vec![false; job.num_workers],
            last_iter,
            pending_apply: None,
            held: None,
            pull_pending: vec![det; job.num_workers],
            fault: FaultClock::new(job, FaultRole::Coordinator),
            sink: CheckpointSink::new(job.checkpoint.as_ref(), &dssp_ps::coord_checkpoint_name()),
            digest: job.stable_digest(),
            eval_weights: Vec::new(),
            eval_versions: Vec::new(),
            obs,
            start: Instant::now(),
            sl,
        }
    }

    fn pulls_in_flight(&self) -> bool {
        self.pull_pending.iter().any(|&p| p)
    }

    /// Reaps one dead (or explicitly evicted) worker: cancels whatever it had in
    /// flight (a granted-but-unconfirmed push, a pending pull, queued gate events),
    /// reclaims its policy credits, retires its clock, and delivers the grants its
    /// departure releases to the survivors.
    fn evict(&mut self, transport: &mut dyn ServerTransport, rank: usize) -> Result<(), NetError> {
        if self
            .pending_apply
            .as_ref()
            .is_some_and(|ev| ev.worker() == rank)
        {
            self.pending_apply = None;
        }
        if self.held.as_ref().is_some_and(|ev| ev.worker() == rank) {
            self.held = None;
        }
        self.pull_pending[rank] = false;
        let now = self.start.elapsed().as_secs_f64();
        let released = self.sl.evict_worker(rank, now);
        self.obs.on_eviction(rank);
        if let Some(g) = self.gate.as_mut() {
            g.forget_worker(rank);
            for reply in &released {
                g.on_released(reply.worker);
            }
        }
        for reply in &released {
            self.obs.event(EventKind::GateRelease, reply.worker as u64);
        }
        self.obs.sync_loop(&self.sl);
        for reply in &released {
            transport.send(
                reply.worker,
                &Message::ClockGrant {
                    granted_extra: reply.granted_extra,
                    version: self.sl.version(),
                },
            )?;
            if self.job.deterministic && self.last_iter[reply.worker] < self.targets[reply.worker] {
                self.pull_pending[reply.worker] = true;
            }
        }
        Ok(())
    }

    fn run(
        mut self,
        transport: &mut dyn ServerTransport,
        fan: &mut ShardFan,
    ) -> Result<RunTrace, NetError> {
        let det = self.job.deterministic;
        let expected_digest = self.job.stable_digest();

        while !self.sl.all_done() {
            // Deterministic mode: dispatch everything the gate can release under the
            // serialization rules before blocking on the transport again.
            while det && self.pending_apply.is_none() && !self.sl.all_done() {
                if self.held.is_none() {
                    self.held = self.gate.as_mut().and_then(|g| g.next());
                }
                let Some(event) = self.held.take() else { break };
                // Mutating events wait until every granted pull completed.
                if self.pulls_in_flight() {
                    self.held = Some(event);
                    break;
                }
                match event {
                    WorkerEvent::Push { worker, .. } => {
                        // Grant the apply slot; the clock advances on PushApplied.
                        transport.send(worker, &Message::PushGrant)?;
                        self.pending_apply = Some(event);
                    }
                    done @ WorkerEvent::Done { .. } => {
                        self.apply_event(transport, fan, done)?;
                    }
                    WorkerEvent::Pull { .. } => {
                        unreachable!("group coordinators never offer Pull events")
                    }
                }
            }
            if self.sl.all_done() {
                break;
            }

            self.obs.mirror_transport(&transport.transport_stats());
            self.obs.metrics().reconnects.store(fan.reconnects, Relaxed);
            let (rank, msg) = match transport.recv() {
                Ok(pair) => pair,
                // A worker died mid-run: reap it instead of stalling the gate.
                Err(NetError::ClientLost { rank }) => {
                    self.evict(transport, rank)?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            match msg {
                Message::Hello {
                    version,
                    rank: hello_rank,
                    num_workers,
                    config_digest,
                } => {
                    validate_hello(
                        rank,
                        version,
                        hello_rank,
                        num_workers,
                        config_digest,
                        self.job.num_workers,
                        expected_digest,
                        &mut self.helloed,
                    )?;
                    self.obs.on_join(rank);
                }
                Message::JoinRequest => {
                    require_helloed(&self.helloed, rank)?;
                    // Membership: admit the worker at the number of pushes already
                    // confirmed from its rank — zero on a fresh run, the restored
                    // clock after a checkpoint restore.
                    transport.send(
                        rank,
                        &Message::JoinAck {
                            clock: self.sl.push_count(rank),
                        },
                    )?;
                }
                Message::Evict { rank: victim } => {
                    require_helloed(&self.helloed, rank)?;
                    let victim = victim as usize;
                    if victim >= self.job.num_workers {
                        return Err(NetError::Protocol(format!(
                            "eviction of rank {victim}, job has {} workers",
                            self.job.num_workers
                        )));
                    }
                    self.evict(transport, victim)?;
                }
                Message::ClockPush { iteration } => {
                    require_helloed(&self.helloed, rank)?;
                    self.last_iter[rank] = iteration;
                    let event = WorkerEvent::Push {
                        worker: rank,
                        iteration,
                        grads: Vec::new(), // the gradients went to the shard servers
                    };
                    match self.gate.as_mut() {
                        Some(g) => g.offer(event),
                        None => self.apply_event(transport, fan, event)?,
                    }
                }
                Message::PushApplied { iteration } => {
                    require_helloed(&self.helloed, rank)?;
                    let event = match self.pending_apply.take() {
                        Some(ev) => {
                            let matches = matches!(
                                &ev,
                                WorkerEvent::Push { worker, iteration: granted, .. }
                                    if *worker == rank && *granted == iteration
                            );
                            if !matches {
                                return Err(NetError::Protocol(format!(
                                    "PushApplied({iteration}) from worker {rank} does not \
                                     match the granted push {ev:?}"
                                )));
                            }
                            ev
                        }
                        None => {
                            return Err(NetError::Protocol(format!(
                                "PushApplied({iteration}) from worker {rank} without a \
                                 granted push"
                            )))
                        }
                    };
                    self.apply_event(transport, fan, event)?;
                }
                Message::PullDone => {
                    require_helloed(&self.helloed, rank)?;
                    if !det {
                        return Err(NetError::Protocol(format!(
                            "PullDone from worker {rank} outside deterministic mode"
                        )));
                    }
                    if !self.pull_pending[rank] {
                        return Err(NetError::Protocol(format!(
                            "unexpected PullDone from worker {rank}"
                        )));
                    }
                    self.pull_pending[rank] = false;
                }
                Message::Done {
                    iterations,
                    epochs,
                    waiting_time_s,
                } => {
                    require_helloed(&self.helloed, rank)?;
                    let event = WorkerEvent::Done {
                        worker: rank,
                        iterations,
                        epochs: epochs as usize,
                        waiting_time_s,
                    };
                    match self.gate.as_mut() {
                        Some(g) => g.offer(event),
                        None => self.apply_event(transport, fan, event)?,
                    }
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "unexpected {other:?} from worker {rank} at the coordinator"
                    )))
                }
            }
        }

        // All workers reported Done, and every push they made was acked by every
        // shard server before that — the group state is final. Assemble the weights
        // for the closing evaluation, then gather per-server statistics before
        // shutting down.
        let total = self.start.elapsed().as_secs_f64();
        pull_for_eval(
            self.job,
            fan,
            &mut self.eval_weights,
            &mut self.eval_versions,
        )?;
        self.fault.pull()?;
        // The run's terminal clock state is always durable, regardless of cadence.
        let digest = self.digest;
        let sl = &self.sl;
        self.sink.finalize(|| sl.snapshot(digest))?;
        if self.job.checkpoint.is_some() {
            self.obs.on_checkpoint(self.sl.version());
        }
        // Terminal counter sync before `finish_external` consumes the decision loop.
        self.obs.sync_loop(&self.sl);
        let mut trace = self.sl.finish_external(&self.eval_weights, total);
        // Final statistics snapshot, per-link tolerant: a shard server that died (or
        // a link torn by a mid-run worker eviction) yields a zeroed row instead of
        // discarding every survivor's counters from the trace.
        trace.group_servers = collect_group_stats(fan);
        self.obs.metrics().reconnects.store(fan.reconnects, Relaxed);
        self.obs.mirror_transport(&transport.transport_stats());
        self.obs.flush()?;
        Ok(trace)
    }

    /// Applies one worker event to the decision loop, delivers the resulting grants,
    /// and runs any evaluation that came due (pulling the group's weights first).
    fn apply_event(
        &mut self,
        transport: &mut dyn ServerTransport,
        fan: &mut ShardFan,
        event: WorkerEvent,
    ) -> Result<(), NetError> {
        let pusher = match &event {
            WorkerEvent::Push { worker, .. } => Some(*worker),
            _ => None,
        };
        let now = self.start.elapsed().as_secs_f64();
        // Every processed push adds exactly the pusher's lead to the cumulative
        // staleness sum, so the delta across `handle_gated` recovers the per-push
        // sample the histogram needs without touching the decision API.
        let staleness_before = self.sl.stats().staleness_sum;
        let replies = self.sl.handle_gated(&mut self.gate, event, now);
        if let Some(pusher) = pusher {
            let sample = self.sl.stats().staleness_sum - staleness_before;
            self.obs.on_push(pusher, Some(sample), &replies, &self.sl);
        }
        for reply in &replies {
            transport.send(
                reply.worker,
                &Message::ClockGrant {
                    granted_extra: reply.granted_extra,
                    version: self.sl.version(),
                },
            )?;
            // A granted worker that has not run its final iteration will pull next;
            // in deterministic mode the coordinator must wait for that pull before
            // the next mutation.
            if self.job.deterministic && self.last_iter[reply.worker] < self.targets[reply.worker] {
                self.pull_pending[reply.worker] = true;
            }
        }
        if let Some(eval_now) = self.sl.take_pending_eval() {
            pull_for_eval(
                self.job,
                fan,
                &mut self.eval_weights,
                &mut self.eval_versions,
            )?;
            self.sl.record_eval_external(&self.eval_weights, eval_now);
            self.fault.pull()?;
        }
        if self.sl.aborted() {
            return Err(NetError::Aborted {
                pushes: self.sl.version(),
            });
        }
        // Elasticity hooks: the coordinator's push phase is a processed clock push,
        // its gate phase a deferred one, and its checkpoint covers the clock state.
        if let Some(pusher) = pusher {
            self.fault.push()?;
            if !replies.iter().any(|r| r.worker == pusher) {
                self.fault.gate_blocked()?;
            }
            let digest = self.digest;
            let sl = &self.sl;
            if self
                .sink
                .maybe_write(sl.version(), || sl.snapshot(digest))?
            {
                self.obs.on_checkpoint(self.sl.version());
                self.fault.checkpoint()?;
            }
        }
        Ok(())
    }
}

/// Verifies that every restored shard server sits at exactly the push count the
/// coordinator's checkpoint records. The per-role checkpoints are written
/// independently, so a crash can land between a shard's write and the coordinator's
/// (or vice versa); resuming such a torn set would double-apply or drop the pushes in
/// the gap. A typed refusal here is what keeps the restart leg of the chaos matrix
/// deterministic: either every checkpoint agrees and the run resumes bitwise, or the
/// fleet aborts cleanly before a single gradient moves.
fn check_restore_skew(sl: &ServerLoop, fan: &mut ShardFan) -> Result<(), NetError> {
    let expected = sl.version();
    let stats = fan.collect_stats()?;
    for (server, (pushes, ..)) in stats.into_iter().enumerate() {
        if pushes != expected {
            return Err(NetError::Protocol(format!(
                "restore skew: shard server {server} restored to push {pushes} but the \
                 coordinator checkpoint records {expected}; the per-role checkpoints \
                 were torn by the crash, cannot resume"
            )));
        }
    }
    Ok(())
}

/// Assembles the group's current weights into the reused buffers via a fan-out pull
/// (delta-incremental against the coordinator's own cache when the job allows).
fn pull_for_eval(
    job: &JobConfig,
    fan: &mut ShardFan,
    weights: &mut Vec<f32>,
    versions: &mut Vec<u64>,
) -> Result<(), NetError> {
    match fan.pull_group(job.delta_pulls, weights, versions)? {
        FanOutcome::Applied => Ok(()),
        FanOutcome::Shutdown { .. } => Err(NetError::Protocol(
            "a shard server shut down underneath the coordinator".to_string(),
        )),
    }
}

/// Gathers every shard server's counters into [`GroupServerStats`] rows. Per-link
/// tolerant ([`ShardFan::collect_stats_tolerant`]): an unreachable server contributes
/// a zero-countered row (its layout columns still fill in), so one dead link cannot
/// strip the whole `group_servers` section from the trace of an otherwise graceful
/// shutdown.
fn collect_group_stats(fan: &mut ShardFan) -> Vec<GroupServerStats> {
    let layout = *fan.layout();
    let stats = fan.collect_stats_tolerant();
    stats
        .into_iter()
        .enumerate()
        .map(|(server, counters)| {
            let (pushes, pulls_full, pulls_delta, bytes_sent, bytes_received) =
                counters.unwrap_or((0, 0, 0, 0, 0));
            let (start, end) = layout.key_range(server);
            GroupServerStats {
                server,
                params: end - start,
                shards: layout.owned_shards(server),
                pushes,
                pulls_full,
                pulls_delta,
                bytes_sent,
                bytes_received,
            }
        })
        .collect()
}
