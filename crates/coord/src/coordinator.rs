//! The coordinator service: the clock/controller half of a multi-server group.
//!
//! The coordinator owns exactly the state the paper's Algorithms 1 and 2 need —
//! worker clocks, the interval table, the synchronization policy — via a clock-only
//! [`ServerLoop`] (`dssp_ps::SyncGate` underneath), and never touches bulk data:
//! workers push and pull weight shards directly against the shard servers and
//! exchange only tiny `ClockPush`/`ClockGrant` messages here. The coordinator also
//! keeps one client link per shard server for evaluation pulls (assembling the global
//! weights into a reused buffer, delta-incrementally), end-of-run statistics
//! collection, and shutdown propagation.
//!
//! # Deterministic mode
//!
//! Under [`JobConfig::deterministic`] the coordinator serializes the group so an
//! N-server run is bitwise equal to a single server: incoming `ClockPush`/`Done`
//! events are buffered in the shared `DeterministicGate` and released in canonical
//! `(iteration, rank)` order; a released push is granted back to its worker
//! ([`Message::PushGrant`]) and the clock only advances once the worker confirms
//! every shard server acked its slices ([`Message::PushApplied`]); granted workers'
//! pulls are awaited ([`Message::PullDone`]) before the next mutating event is
//! dispatched. No gradient application, pull, or evaluation can therefore interleave
//! with another mutation — the exact serialization a single server's command loop
//! gets for free.

use crate::client::{FanOutcome, ServerLink, ShardFan};
use dssp_core::driver::{DeterministicGate, JobConfig, ServerLoop, WorkerEvent};
use dssp_net::wire::{SHUTDOWN_OK, SHUTDOWN_SERVER_ERROR};
use dssp_net::{require_helloed, validate_hello, Message, NetError, ServerTransport};
use dssp_sim::{GroupServerStats, RunTrace};
use std::time::Instant;

/// Runs a full training job as the coordinator of a group and returns the run trace,
/// with [`RunTrace::group_servers`] aggregating every shard server's counters.
///
/// `transport` serves the workers (one slot per rank); `links` are fresh connections
/// to the shard servers, in server order (the coordinator handshakes them itself,
/// announcing rank `num_workers`). On every exit path — success, protocol failure, or
/// the `fail_after_pushes` chaos abort — `Shutdown` is broadcast to all workers *and*
/// propagated to every shard server, so no group process is ever leaked.
///
/// # Panics
///
/// Panics if the configuration is inconsistent ([`JobConfig::validate`]).
pub fn coordinate(
    job: &JobConfig,
    transport: &mut dyn ServerTransport,
    links: Vec<ServerLink>,
) -> Result<RunTrace, NetError> {
    job.validate();
    if transport.num_workers() != job.num_workers {
        return Err(NetError::Protocol(format!(
            "coordinator transport serves {} workers but the job has {}",
            transport.num_workers(),
            job.num_workers
        )));
    }
    let sl = ServerLoop::clock_only(job);
    let mut fan = ShardFan::new(job, sl.param_len(), links);
    let result = fan
        .hello(job, job.num_workers as u32)
        .and_then(|()| Coordinator::new(job, sl).run(transport, &mut fan));
    match result {
        Ok(trace) => {
            transport.broadcast(&Message::Shutdown {
                reason: SHUTDOWN_OK,
            });
            fan.send_all(&Message::Shutdown {
                reason: SHUTDOWN_OK,
            });
            Ok(trace)
        }
        Err(e) => {
            transport.broadcast(&Message::Shutdown {
                reason: SHUTDOWN_SERVER_ERROR,
            });
            fan.send_all(&Message::Shutdown {
                reason: SHUTDOWN_SERVER_ERROR,
            });
            Err(e)
        }
    }
}

/// The coordinator's per-run state: the clock-only decision loop plus the
/// deterministic-mode serialization bookkeeping.
struct Coordinator<'job> {
    job: &'job JobConfig,
    sl: ServerLoop,
    gate: Option<DeterministicGate>,
    targets: Vec<u64>,
    helloed: Vec<bool>,
    /// Last announced ClockPush iteration per worker (a granted worker whose push was
    /// final will never pull again, so no PullDone is expected from it).
    last_iter: Vec<u64>,
    /// The granted push we are waiting on (deterministic mode).
    pending_apply: Option<WorkerEvent>,
    /// A gate-released event we could not dispatch yet (pulls still in flight).
    held: Option<WorkerEvent>,
    /// Granted pulls in flight, including every worker's initial pull.
    pending_pulls: usize,
    /// Reused assembly buffers for evaluation pulls.
    eval_weights: Vec<f32>,
    eval_versions: Vec<u64>,
    start: Instant,
}

impl<'job> Coordinator<'job> {
    fn new(job: &'job JobConfig, sl: ServerLoop) -> Self {
        let targets = sl.targets().to_vec();
        let det = job.deterministic;
        Self {
            job,
            sl,
            gate: det.then(|| DeterministicGate::new(targets.clone(), false)),
            targets,
            helloed: vec![false; job.num_workers],
            last_iter: vec![0u64; job.num_workers],
            pending_apply: None,
            held: None,
            pending_pulls: if det { job.num_workers } else { 0 },
            eval_weights: Vec::new(),
            eval_versions: Vec::new(),
            start: Instant::now(),
        }
    }

    fn run(
        mut self,
        transport: &mut dyn ServerTransport,
        fan: &mut ShardFan,
    ) -> Result<RunTrace, NetError> {
        let det = self.job.deterministic;
        let expected_digest = self.job.digest();

        while !self.sl.all_done() {
            // Deterministic mode: dispatch everything the gate can release under the
            // serialization rules before blocking on the transport again.
            while det && self.pending_apply.is_none() && !self.sl.all_done() {
                if self.held.is_none() {
                    self.held = self.gate.as_mut().and_then(|g| g.next());
                }
                let Some(event) = self.held.take() else { break };
                // Mutating events wait until every granted pull completed.
                if self.pending_pulls > 0 {
                    self.held = Some(event);
                    break;
                }
                match event {
                    WorkerEvent::Push { worker, .. } => {
                        // Grant the apply slot; the clock advances on PushApplied.
                        transport.send(worker, &Message::PushGrant)?;
                        self.pending_apply = Some(event);
                    }
                    done @ WorkerEvent::Done { .. } => {
                        self.apply_event(transport, fan, done)?;
                    }
                    WorkerEvent::Pull { .. } => {
                        unreachable!("group coordinators never offer Pull events")
                    }
                }
            }
            if self.sl.all_done() {
                break;
            }

            let (rank, msg) = transport.recv()?;
            match msg {
                Message::Hello {
                    version,
                    rank: hello_rank,
                    num_workers,
                    config_digest,
                } => validate_hello(
                    rank,
                    version,
                    hello_rank,
                    num_workers,
                    config_digest,
                    self.job.num_workers,
                    expected_digest,
                    &mut self.helloed,
                )?,
                Message::ClockPush { iteration } => {
                    require_helloed(&self.helloed, rank)?;
                    self.last_iter[rank] = iteration;
                    let event = WorkerEvent::Push {
                        worker: rank,
                        iteration,
                        grads: Vec::new(), // the gradients went to the shard servers
                    };
                    match self.gate.as_mut() {
                        Some(g) => g.offer(event),
                        None => self.apply_event(transport, fan, event)?,
                    }
                }
                Message::PushApplied { iteration } => {
                    require_helloed(&self.helloed, rank)?;
                    let event = match self.pending_apply.take() {
                        Some(ev) => {
                            let matches = matches!(
                                &ev,
                                WorkerEvent::Push { worker, iteration: granted, .. }
                                    if *worker == rank && *granted == iteration
                            );
                            if !matches {
                                return Err(NetError::Protocol(format!(
                                    "PushApplied({iteration}) from worker {rank} does not \
                                     match the granted push {ev:?}"
                                )));
                            }
                            ev
                        }
                        None => {
                            return Err(NetError::Protocol(format!(
                                "PushApplied({iteration}) from worker {rank} without a \
                                 granted push"
                            )))
                        }
                    };
                    self.apply_event(transport, fan, event)?;
                }
                Message::PullDone => {
                    require_helloed(&self.helloed, rank)?;
                    if !det {
                        return Err(NetError::Protocol(format!(
                            "PullDone from worker {rank} outside deterministic mode"
                        )));
                    }
                    self.pending_pulls = self.pending_pulls.checked_sub(1).ok_or_else(|| {
                        NetError::Protocol(format!("unexpected PullDone from worker {rank}"))
                    })?;
                }
                Message::Done {
                    iterations,
                    epochs,
                    waiting_time_s,
                } => {
                    require_helloed(&self.helloed, rank)?;
                    let event = WorkerEvent::Done {
                        worker: rank,
                        iterations,
                        epochs: epochs as usize,
                        waiting_time_s,
                    };
                    match self.gate.as_mut() {
                        Some(g) => g.offer(event),
                        None => self.apply_event(transport, fan, event)?,
                    }
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "unexpected {other:?} from worker {rank} at the coordinator"
                    )))
                }
            }
        }

        // All workers reported Done, and every push they made was acked by every
        // shard server before that — the group state is final. Assemble the weights
        // for the closing evaluation, then gather per-server statistics before
        // shutting down.
        let total = self.start.elapsed().as_secs_f64();
        pull_for_eval(
            self.job,
            fan,
            &mut self.eval_weights,
            &mut self.eval_versions,
        )?;
        let mut trace = self.sl.finish_external(&self.eval_weights, total);
        trace.group_servers = collect_group_stats(fan)?;
        Ok(trace)
    }

    /// Applies one worker event to the decision loop, delivers the resulting grants,
    /// and runs any evaluation that came due (pulling the group's weights first).
    fn apply_event(
        &mut self,
        transport: &mut dyn ServerTransport,
        fan: &mut ShardFan,
        event: WorkerEvent,
    ) -> Result<(), NetError> {
        let now = self.start.elapsed().as_secs_f64();
        let replies = self.sl.handle_gated(&mut self.gate, event, now);
        for reply in &replies {
            transport.send(
                reply.worker,
                &Message::ClockGrant {
                    granted_extra: reply.granted_extra,
                    version: self.sl.version(),
                },
            )?;
            // A granted worker that has not run its final iteration will pull next;
            // in deterministic mode the coordinator must wait for that pull before
            // the next mutation.
            if self.job.deterministic && self.last_iter[reply.worker] < self.targets[reply.worker] {
                self.pending_pulls += 1;
            }
        }
        if let Some(eval_now) = self.sl.take_pending_eval() {
            pull_for_eval(
                self.job,
                fan,
                &mut self.eval_weights,
                &mut self.eval_versions,
            )?;
            self.sl.record_eval_external(&self.eval_weights, eval_now);
        }
        if self.sl.aborted() {
            return Err(NetError::Aborted {
                pushes: self.sl.version(),
            });
        }
        Ok(())
    }
}

/// Assembles the group's current weights into the reused buffers via a fan-out pull
/// (delta-incremental against the coordinator's own cache when the job allows).
fn pull_for_eval(
    job: &JobConfig,
    fan: &mut ShardFan,
    weights: &mut Vec<f32>,
    versions: &mut Vec<u64>,
) -> Result<(), NetError> {
    match fan.pull_group(job.delta_pulls, weights, versions)? {
        FanOutcome::Applied => Ok(()),
        FanOutcome::Shutdown { .. } => Err(NetError::Protocol(
            "a shard server shut down underneath the coordinator".to_string(),
        )),
    }
}

/// Gathers every shard server's counters into [`GroupServerStats`] rows.
fn collect_group_stats(fan: &mut ShardFan) -> Result<Vec<GroupServerStats>, NetError> {
    let layout = *fan.layout();
    let stats = fan.collect_stats()?;
    Ok(stats
        .into_iter()
        .enumerate()
        .map(
            |(server, (pushes, pulls_full, pulls_delta, bytes_sent, bytes_received))| {
                let (start, end) = layout.key_range(server);
                GroupServerStats {
                    server,
                    params: end - start,
                    shards: layout.owned_shards(server),
                    pushes,
                    pulls_full,
                    pulls_delta,
                    bytes_sent,
                    bytes_received,
                }
            },
        )
        .collect())
}
