//! `dssp-coord` — multi-server parameter-server groups: sharded scale-out with a
//! split clock/controller service.
//!
//! The paper already separates the parameter server (Algorithm 1) from the
//! synchronization controller (Algorithm 2); the single-server `dssp-net` deployment
//! collapses both into one process, making that process's bandwidth and push
//! aggregation the scaling wall. This crate removes the wall the way production
//! parameter-server systems do (Li et al.'s Parameter Server, MXNet's KVStore):
//!
//! * **N shard servers** ([`serve_shard`]) each own a contiguous run of the model's
//!   global shards — the closed-form [`GroupLayout`], two nested applications of
//!   `dssp_ps::shard_range`, so ownership is never wire-carried — and do nothing but
//!   apply gradient slices and serve (delta) pulls for their slice;
//! * **one coordinator** ([`coordinate`]) owns the `ClockTable`/`IntervalTracker`/
//!   `SyncPolicy` state (a clock-only `dssp_core::driver::ServerLoop` over
//!   `dssp_ps::SyncGate`) and exchanges only tiny `ClockPush`/`ClockGrant` messages
//!   with workers — the synchronization decision lives apart from the storage path;
//! * **workers** ([`run_group_worker`]) run the unchanged `WorkerStep` compute loop
//!   and fan their bulk traffic directly over the owning shard servers
//!   ([`ShardFan`]): pipelined slice pushes (acked, so `Done` implies applied) and
//!   pull assembly straight into the same reused global weight/version buffers the
//!   single-server worker uses, with per-server delta pulls preserved.
//!
//! Because SGD is elementwise, each server's slice (weights *and* optimizer state)
//! evolves bitwise identically to the corresponding slice of a single server that
//! applies the same pushes in the same order. Deterministic mode imposes exactly that
//! order across the group (grant/apply/confirm serialization, see
//! [`coordinate`]'s module docs), which is how the workspace-level
//! `net_equivalence` test proves threaded == 1-server TCP == N-server group
//! **bitwise**. Outside deterministic mode each shard server applies pushes in its
//! own arrival order — the standard behaviour of asynchronous sharded parameter
//! servers.
//!
//! Layouts are **epoch-versioned**: every group starts at the closed-form epoch-0
//! [`GroupLayout`] and can change it mid-job through a coordinator-driven two-phase
//! **live migration** (freeze at a quiescent round boundary → transfer each moving
//! shard's weights and momentum → commit the new assignment everywhere, or roll
//! back). Operators trigger one with `repro -- drain <server>` / `repro -- rebalance`
//! (the admin channel, [`run_admin_command`]); jobs can schedule one declaratively
//! (`--migrate drain:2:64`) or let the skew threshold auto-rebalance. Every push and
//! pull is epoch-stamped, and a stale route gets a typed, retryable
//! `NetError::EpochRefused` — never silent misapplication, never a hang.
//!
//! | module | provides |
//! |---|---|
//! | [`layout`] | [`GroupLayout`]: epoch-versioned shard→server assignment + [`MigrationPlan`] |
//! | [`shard_server`] | [`ShardServerState`] + [`serve_shard`]: the storage-only loop |
//! | [`coordinator`] | [`coordinate`]: the clock/controller service + migration driver |
//! | [`client`] | [`ShardFan`] fan-out + [`run_group_worker`] + [`run_admin_command`] |
//! | [`run`] | [`run_group_threads`]: whole group over TCP in one process |
//! | [`launch`] | [`launch_group`]: real server/worker processes + in-process coordinator |

#![deny(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod launch;
pub mod layout;
pub mod run;
pub mod shard_server;

pub use client::{run_admin_command, run_group_worker, FanOutcome, ServerLink, ShardFan};
pub use coordinator::coordinate;
pub use launch::{launch_group, GroupLaunchOutcome, LISTEN_LINE_PREFIX};
pub use layout::{GroupLayout, MigrationPlan, ShardMove};
pub use run::{connect_links, run_group_threads, GroupRunOutcome};
pub use shard_server::{initial_params, serve_shard, ShardServeReport, ShardServerState};
