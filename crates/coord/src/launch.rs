//! Multi-process group deployment on one machine: N shard-server processes, M worker
//! processes, and the coordinator in-process.
//!
//! This is the `repro -- launch --servers N` backend. Shard servers bind ephemeral
//! ports, so each child announces its address on stdout as a `DSSP_LISTEN <addr>`
//! line (the [`LISTEN_LINE_PREFIX`] contract with the `repro serve --server-index`
//! mode); the launcher reads that line, forwards the rest of the child's output, and
//! passes every address to the workers. All children are reaped on every exit path —
//! success, coordinator failure, or a `fail_after_pushes` chaos abort (where the
//! shutdown broadcast reaches workers both directly and relayed via their shard
//! servers).

use crate::coordinator::coordinate;
use crate::run::connect_links;
use dssp_core::driver::JobConfig;
use dssp_net::{NetError, TcpServerTransport};
use dssp_sim::RunTrace;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// The stdout line prefix a `serve --server-index` child uses to announce its bound
/// address to the launcher.
pub const LISTEN_LINE_PREFIX: &str = "DSSP_LISTEN ";

/// The result of a multi-process group launch.
#[derive(Debug)]
pub struct GroupLaunchOutcome {
    /// The coordinator's run trace (with per-server group statistics).
    pub trace: RunTrace,
    /// The address the coordinator listened on for workers.
    pub coord_addr: SocketAddr,
    /// The shard servers' addresses, in server order.
    pub server_addrs: Vec<String>,
}

/// Spawns `job.servers` shard-server processes and `job.num_workers` worker processes
/// running `exe`, coordinates the run in-process, and reaps every child.
///
/// `listen` is the coordinator's bind address for workers (port 0 for ephemeral).
/// `exe` is typically `std::env::current_exe()` of the `repro` binary; children are
/// invoked as `exe serve --server-index I --listen 127.0.0.1:0 <job flags>` and
/// `exe worker --connect ADDR --server-addrs A,B,... --rank K <job flags>`.
///
/// # Panics
///
/// Panics if the configuration is inconsistent ([`JobConfig::validate`]).
pub fn launch_group(
    job: &JobConfig,
    listen: &str,
    exe: &Path,
) -> Result<GroupLaunchOutcome, NetError> {
    job.validate();
    let mut children: Vec<Child> = Vec::new();

    // Phase 1: shard servers. Each prints its DSSP_LISTEN line before serving.
    let mut server_addrs: Vec<String> = Vec::with_capacity(job.servers);
    for index in 0..job.servers {
        let spawned = Command::new(exe)
            .arg("serve")
            .arg("--server-index")
            .arg(index.to_string())
            .arg("--listen")
            .arg("127.0.0.1:0")
            .args(dssp_net::cli::job_args(job))
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .spawn();
        let mut child = match spawned {
            Ok(child) => child,
            Err(e) => {
                reap(&mut children, true);
                clean_checkpoint_tmps(job);
                return Err(NetError::WorkerProcess(format!(
                    "failed to spawn shard server {index}: {e}"
                )));
            }
        };
        match read_listen_line(&mut child) {
            Ok(addr) => server_addrs.push(addr),
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                reap(&mut children, true);
                clean_checkpoint_tmps(job);
                return Err(NetError::WorkerProcess(format!(
                    "shard server {index} never announced its address: {e}"
                )));
            }
        }
        children.push(child);
    }

    // Phase 2: the coordinator's worker-facing listener and its server links. One
    // spare slot past the workers: the admin channel (rank `num_workers`), which a
    // `repro -- drain`/`repro -- rebalance` CLI dials mid-run to request a live
    // migration. Left unused it costs nothing — the transport's drop path reaps
    // never-connected slots.
    let bind = TcpServerTransport::bind(listen, job.num_workers + 1);
    let mut transport = match bind {
        Ok(t) => t,
        Err(e) => {
            reap(&mut children, true);
            clean_checkpoint_tmps(job);
            return Err(e);
        }
    };
    let coord_addr = transport.local_addr();
    let timeout = Some(Duration::from_millis(job.stall_timeout_ms.max(1)));
    let links = match connect_links(&server_addrs, timeout) {
        Ok(links) => links,
        Err(e) => {
            reap(&mut children, true);
            clean_checkpoint_tmps(job);
            return Err(e);
        }
    };

    // Phase 3: worker processes.
    for rank in 0..job.num_workers {
        let spawned = Command::new(exe)
            .arg("worker")
            .arg("--connect")
            .arg(coord_addr.to_string())
            .arg("--server-addrs")
            .arg(server_addrs.join(","))
            .arg("--rank")
            .arg(rank.to_string())
            .args(dssp_net::cli::job_args(job))
            .stdin(Stdio::null())
            .spawn();
        match spawned {
            Ok(child) => children.push(child),
            Err(e) => {
                reap(&mut children, true);
                clean_checkpoint_tmps(job);
                return Err(NetError::WorkerProcess(format!(
                    "failed to spawn worker {rank}: {e}"
                )));
            }
        }
    }

    let result = coordinate(job, &mut transport, links);
    let kill = result.is_err();
    let failures = reap(&mut children, kill);
    if kill {
        clean_checkpoint_tmps(job);
    }

    let trace = result?;
    if !failures.is_empty() {
        return Err(NetError::WorkerProcess(format!(
            "group child processes exited unsuccessfully: {failures:?}"
        )));
    }
    Ok(GroupLaunchOutcome {
        trace,
        coord_addr,
        server_addrs,
    })
}

/// Reads a shard-server child's stdout until its `DSSP_LISTEN` line, then forwards
/// the rest of its output to this process's stdout from a background thread.
fn read_listen_line(child: &mut Child) -> Result<String, String> {
    let stdout = child.stdout.take().ok_or("stdout not piped")?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err("child exited before announcing".to_string());
        }
        if let Some(addr) = line.trim_end().strip_prefix(LISTEN_LINE_PREFIX) {
            let addr = addr.trim().to_string();
            // Keep the child's remaining log lines visible without blocking it.
            std::thread::spawn(move || {
                let mut reader = reader;
                let mut line = String::new();
                while matches!(reader.read_line(&mut line), Ok(n) if n > 0) {
                    print!("{line}");
                    line.clear();
                }
            });
            return Ok(addr);
        }
        print!("{line}");
    }
}

/// Waits for every child (killing first if `kill`), returning the indices that failed.
fn reap(children: &mut [Child], kill: bool) -> Vec<usize> {
    let mut failures = Vec::new();
    for (i, child) in children.iter_mut().enumerate() {
        if kill {
            let _ = child.kill();
        }
        match child.wait() {
            Ok(status) if status.success() || kill => {}
            Ok(status) => {
                eprintln!("group child {i} exited with {status}");
                failures.push(i);
            }
            Err(e) => {
                eprintln!("failed to wait for group child {i}: {e}");
                failures.push(i);
            }
        }
    }
    failures
}

/// Sweeps checkpoint temp files out of the job's checkpoint directory. A child
/// killed between a checkpoint's temp-file write and its atomic rename leaks the
/// `*.ckpt.tmp` file; left in place, those accumulate across chaos-matrix restarts
/// and can be mistaken for checkpoints by directory listings. Called from every
/// child-reap path once the children are confirmed dead (so no child is still
/// mid-write when the sweep runs).
pub fn clean_checkpoint_tmps(job: &JobConfig) {
    let Some(spec) = &job.checkpoint else { return };
    let Ok(entries) = std::fs::read_dir(&spec.dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let is_tmp = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(dssp_ps::CHECKPOINT_TMP_SUFFIX));
        if is_tmp {
            let _ = std::fs::remove_file(&path);
        }
    }
}
