//! The storage-only half of a group: one shard server's state and serving loop.
//!
//! A shard server owns a contiguous slice of the model (the key ranges of the global
//! shards [`crate::GroupLayout`] assigns to it), an [`Sgd`] optimizer for exactly that
//! slice, and nothing else — no clocks, no policy, no notion of which worker is ahead.
//! It applies every [`Message::PushSlice`] on receipt (acknowledged with a
//! [`Message::SliceAck`], so a worker's `Done` implies its gradients are in the
//! weights) and answers [`Message::PullShards`] from its store — incrementally when
//! the client's version vector permits, fully otherwise. Because SGD is elementwise,
//! a slice of the optimizer state evolves bitwise identically to the corresponding
//! slice of a whole-model optimizer; that is what makes an N-server group bitwise
//! equal to a single server under deterministic scheduling.
//!
//! The loop tolerates worker disconnects (finished workers drop their connections
//! while slower peers keep training) and exits on the coordinator's `Shutdown`, which
//! it forwards to any worker still connected.
//!
//! **Live migration** (coordinator-driven, two-phase): a [`Message::MigratePrepare`]
//! freezes the server at its current epoch — every epoch-stamped push or pull is
//! refused with a typed, retryable [`Message::EpochRefused`] until the migration
//! resolves. While frozen, the server answers [`Message::MigrateRequest`] by
//! extracting one owned shard (weights, per-shard version **and the SGD momentum
//! slice**, so the migrated group stays bitwise-equal to a statically-launched one)
//! and stages shards arriving via [`Message::MigrateShard`]. A
//! [`Message::LayoutUpdate`] commits: the store and optimizer are rebuilt from
//! retained + staged shards under the new assignment, a checkpoint is forced so a
//! later restore can never resurrect the pre-migration layout, and serving resumes. A
//! [`Message::MigrateAbort`] rolls back: staged shards are discarded and the old
//! layout keeps serving. A server drained to zero shards stays in the fleet and keeps
//! acking (empty) push slices so per-server clocks stay uniform.

use crate::layout::GroupLayout;
use dssp_core::driver::{FaultRole, JobConfig};
use dssp_core::events::{EventKind, Role};
use dssp_net::metrics::derive_metrics_addr;
use dssp_net::wire;
use dssp_net::wire::MIGRATE_CONTROL;
use dssp_net::{
    require_helloed, validate_hello, CheckpointSink, FaultClock, Message, NetError, Obs,
    ServerTransport,
};
use dssp_nn::{Model, Sgd};
use dssp_ps::{Checkpoint, LayoutSnapshot, ShardedStore, StoreSnapshot};
use std::sync::atomic::Ordering::Relaxed;

/// One shard server's storage and counters, independent of any transport. Benchmarks
/// and tests drive it directly; [`serve_shard`] wraps it in the wire loop.
pub struct ShardServerState {
    layout: GroupLayout,
    index: usize,
    store: ShardedStore,
    sgd: Sgd,
    pushes: u64,
    pulls_full: u64,
    pulls_delta: u64,
    /// The epoch a `MigratePrepare` froze this server toward; `None` while serving.
    pending_epoch: Option<u64>,
    /// Shards staged for this server by the in-flight migration:
    /// `(global shard, version, weights, velocity)`.
    staged: Vec<(u32, u64, Vec<f32>, Vec<f32>)>,
}

impl ShardServerState {
    /// Builds server `index`'s slice of a job: the model is regenerated from the job
    /// seed (every process arrives at identical initial weights this way) and sliced
    /// to the server's key range, along with a fresh optimizer for that slice.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent or `index` is out of range.
    pub fn from_job(job: &JobConfig, index: usize) -> Self {
        job.validate();
        let initial = job.model.build(job.seed).params_flat();
        Self::with_initial(job, index, &initial)
    }

    /// Like [`ShardServerState::from_job`] but slices an already materialized full
    /// initial parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `initial` has the wrong length.
    pub fn with_initial(job: &JobConfig, index: usize, initial: &[f32]) -> Self {
        let layout = GroupLayout::new(initial.len(), job.shards, job.servers);
        assert!(index < job.servers, "server index out of range");
        let (start, end) = layout.key_range(index);
        let store =
            ShardedStore::with_offsets(initial[start..end].to_vec(), layout.local_offsets(index));
        let sgd = Sgd::new(job.sgd.clone(), end - start);
        Self {
            layout,
            index,
            store,
            sgd,
            pushes: 0,
            pulls_full: 0,
            pulls_delta: 0,
            pending_epoch: None,
            staged: Vec::new(),
        }
    }

    /// This server's index in the group.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The group layout the server derives its ownership from.
    pub fn layout(&self) -> &GroupLayout {
        &self.layout
    }

    /// Parameters in this server's slice.
    pub fn slice_len(&self) -> usize {
        self.store.len()
    }

    /// Global shards this server owns.
    pub fn owned_shards(&self) -> usize {
        self.store.num_shards()
    }

    /// Slice pushes applied so far (this server's local clock).
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// `(pulls_full, pulls_delta)` served so far.
    pub fn pull_counts(&self) -> (u64, u64) {
        (self.pulls_full, self.pulls_delta)
    }

    /// The slice weights, for tests and eval assembly.
    pub fn weights(&self) -> &[f32] {
        self.store.as_flat()
    }

    /// The layout epoch this server currently serves at.
    pub fn epoch(&self) -> u64 {
        self.layout.epoch()
    }

    /// The epoch an in-flight migration froze this server toward, if any.
    pub fn pending_epoch(&self) -> Option<u64> {
        self.pending_epoch
    }

    /// Freezes the server toward `epoch` (migration prepare). Every epoch-stamped
    /// push or pull is refused until [`ShardServerState::commit_layout`] or
    /// [`ShardServerState::thaw`] resolves the migration.
    pub fn freeze(&mut self, epoch: u64) -> Result<(), NetError> {
        if let Some(pending) = self.pending_epoch {
            return Err(NetError::Protocol(format!(
                "server {} asked to prepare epoch {epoch} while already frozen toward {pending}",
                self.index
            )));
        }
        if epoch != self.layout.epoch() + 1 {
            return Err(NetError::Protocol(format!(
                "server {} at epoch {} asked to prepare non-successor epoch {epoch}",
                self.index,
                self.layout.epoch()
            )));
        }
        self.pending_epoch = Some(epoch);
        self.staged.clear();
        Ok(())
    }

    /// Rolls the in-flight migration toward `epoch` back: staged shards are dropped
    /// and the old layout keeps serving. An abort for any other epoch (a stray retry
    /// after this server already committed) is ignored.
    pub fn thaw(&mut self, epoch: u64) {
        if self.pending_epoch == Some(epoch) {
            self.pending_epoch = None;
            self.staged.clear();
        }
    }

    /// Extracts one owned shard for transfer: its version, weight slice and momentum
    /// slice, borrowed so the caller can encode a [`Message::MigrateShard`] zero-copy.
    pub fn extract(&self, epoch: u64, shard: u32) -> Result<(u64, &[f32], &[f32]), NetError> {
        if self.pending_epoch != Some(epoch) {
            return Err(NetError::Protocol(format!(
                "server {} asked to extract shard {shard} for epoch {epoch} but is {}",
                self.index,
                match self.pending_epoch {
                    Some(p) => format!("frozen toward {p}"),
                    None => format!("serving epoch {} unfrozen", self.layout.epoch()),
                }
            )));
        }
        let (lo, hi) = self.layout.shard_span(self.index);
        let shard = shard as usize;
        if shard < lo || shard >= hi {
            return Err(NetError::Protocol(format!(
                "server {} owns shards {lo}..{hi}, cannot extract shard {shard}",
                self.index
            )));
        }
        let local = shard - lo;
        let (a, b) = self.store.key_range(local);
        Ok((
            self.store.versions()[local],
            self.store.shard(local),
            &self.sgd.velocity()[a..b],
        ))
    }

    /// Stages one shard arriving from the in-flight migration for adoption at commit.
    pub fn stage(
        &mut self,
        epoch: u64,
        shard: u32,
        version: u64,
        weights: Vec<f32>,
        velocity: Vec<f32>,
    ) -> Result<(), NetError> {
        if self.pending_epoch != Some(epoch) {
            return Err(NetError::Protocol(format!(
                "server {} received shard {shard} for epoch {epoch} without a matching prepare",
                self.index
            )));
        }
        let (gs, ge) = self.layout.shard_key_range(shard as usize);
        if weights.len() != ge - gs || velocity.len() != ge - gs {
            return Err(NetError::Protocol(format!(
                "staged shard {shard} carries {} weights / {} velocity, its key range holds {}",
                weights.len(),
                velocity.len(),
                ge - gs
            )));
        }
        self.staged.retain(|(s, ..)| *s != shard);
        self.staged.push((shard, version, weights, velocity));
        Ok(())
    }

    /// Commits the migration: rebuilds the store and optimizer from retained + staged
    /// shards under the new assignment and adopts `epoch` as current. The push clock
    /// is untouched — a drained server keeps counting empty pushes so per-server
    /// clocks stay uniform.
    pub fn commit_layout(&mut self, epoch: u64, assignment: &[u32]) -> Result<(), NetError> {
        let next = GroupLayout::from_parts(
            self.layout.params(),
            self.layout.servers(),
            assignment.to_vec(),
            epoch,
        )
        .map_err(NetError::Protocol)?;
        let (old_lo, old_hi) = self.layout.shard_span(self.index);
        let (new_lo, new_hi) = next.shard_span(self.index);
        let mut flat = Vec::new();
        let mut velocity = Vec::new();
        let mut versions = Vec::new();
        let mut offsets = vec![0usize];
        for shard in new_lo..new_hi {
            let owned_before = shard >= old_lo && shard < old_hi && self.store.num_shards() > 0;
            if owned_before {
                let local = shard - old_lo;
                let (a, b) = self.store.key_range(local);
                flat.extend_from_slice(self.store.shard(local));
                velocity.extend_from_slice(&self.sgd.velocity()[a..b]);
                versions.push(self.store.versions()[local]);
            } else {
                let staged = self
                    .staged
                    .iter()
                    .find(|(s, ..)| *s as usize == shard)
                    .ok_or_else(|| {
                        NetError::Protocol(format!(
                            "server {} committing epoch {epoch}: shard {shard} was never staged",
                            self.index
                        ))
                    })?;
                flat.extend_from_slice(&staged.2);
                velocity.extend_from_slice(&staged.3);
                versions.push(staged.1);
            }
            offsets.push(flat.len());
        }
        let schedule_epoch = self.sgd.current_epoch();
        let config = self.sgd.config().clone();
        self.store = ShardedStore::restore(flat, offsets, versions);
        self.sgd = Sgd::restore(config, velocity, schedule_epoch);
        self.layout = next;
        self.pending_epoch = None;
        self.staged.clear();
        Ok(())
    }

    /// Applies one gradient slice with the server's optimizer and bumps every owned
    /// shard's version; returns the local version after the push.
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the server's key range.
    pub fn apply_slice(&mut self, grads: &[f32]) -> u64 {
        assert_eq!(
            grads.len(),
            self.store.len(),
            "gradient slice length {} does not match server {}'s slice {}",
            grads.len(),
            self.index,
            self.store.len()
        );
        self.sgd.step(self.store.flat_mut(), grads);
        self.store.bump_all_versions();
        self.pushes += 1;
        self.pushes
    }

    /// Captures this server's durable state — slice weights, per-shard versions, and
    /// the optimizer momentum — as a store-only [`Checkpoint`] stamped with
    /// `job_digest`. The local push counter is not stored separately: every applied
    /// slice bumps every owned shard's version, so it is recoverable as the maximum
    /// shard version.
    pub fn snapshot(&self, job_digest: u64) -> Checkpoint {
        Checkpoint {
            job_digest,
            tick: 0.0, // shard servers keep no logical clock
            store: Some(StoreSnapshot {
                flat: self.store.as_flat().to_vec(),
                offsets: self.store.offsets().iter().map(|&o| o as u64).collect(),
                versions: self.store.versions().to_vec(),
                velocity: self.sgd.velocity().to_vec(),
                epoch: self.sgd.current_epoch() as u64,
            }),
            gate: None,
            layout: Some(LayoutSnapshot {
                epoch: self.layout.epoch(),
                assignment: self.layout.assignment().to_vec(),
            }),
        }
    }

    /// Rebuilds server `index` from a checkpoint taken by
    /// [`ShardServerState::snapshot`] under the same (chaos-masked) job. The pull
    /// counters restart at zero — they are served-traffic statistics, not state a
    /// restored run depends on.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint has no store section or its slice does not match the
    /// layout this job implies for `index`.
    pub fn restore(job: &JobConfig, index: usize, ckpt: &Checkpoint) -> Self {
        let mut fresh = Self::from_job(job, index);
        // A post-migration checkpoint carries the layout it was taken under; rebuild
        // ownership from it so the restored server serves the migrated assignment,
        // not the closed-form one the job implies.
        if let Some(snap) = ckpt.layout.as_ref().filter(|l| l.epoch != 0) {
            fresh.layout = GroupLayout::from_parts(
                fresh.layout.params(),
                fresh.layout.servers(),
                snap.assignment.clone(),
                snap.epoch,
            )
            .expect("checkpointed layout assignment is well-formed");
        }
        let snap = ckpt
            .store
            .as_ref()
            .expect("shard-server checkpoint carries a store section");
        let (start, end) = fresh.layout.key_range(index);
        assert_eq!(
            snap.flat.len(),
            end - start,
            "checkpointed slice length disagrees with server {index}'s key range"
        );
        fresh.store = ShardedStore::restore(
            snap.flat.clone(),
            snap.offsets.iter().map(|&o| o as usize).collect(),
            snap.versions.clone(),
        );
        fresh.sgd = Sgd::restore(job.sgd.clone(), snap.velocity.clone(), snap.epoch as usize);
        fresh.pushes = snap.versions.iter().copied().max().unwrap_or(0);
        fresh
    }

    /// Encodes the reply to a [`Message::PullShards`] into `buf` (appended): a
    /// [`Message::PullReplyDelta`] whose updates carry **global** shard indices, built
    /// zero-copy from the store. Ships every owned shard when `all` is set or the
    /// client's vector is incompatible (counted as a full pull), only the stale
    /// shards otherwise.
    ///
    /// Returns an error if `known` does not have one entry per owned shard.
    pub fn encode_pull(
        &mut self,
        known: &[u64],
        all: bool,
        buf: &mut Vec<u8>,
    ) -> Result<(), NetError> {
        if known.len() != self.store.num_shards() {
            return Err(NetError::Protocol(format!(
                "pull for server {} carries {} versions, it owns {} shards",
                self.index,
                known.len(),
                self.store.num_shards()
            )));
        }
        let (lo, _) = self.layout.shard_span(self.index);
        let full = all || !self.store.delta_compatible(known);
        if full {
            self.pulls_full += 1;
            let versions = self.store.versions();
            wire::encode_pull_reply_delta(
                buf,
                self.pushes,
                (0..self.store.num_shards())
                    .map(|i| ((lo + i) as u32, versions[i], self.store.shard(i))),
            );
        } else {
            self.pulls_delta += 1;
            let versions = self.store.versions();
            wire::encode_pull_reply_delta(
                buf,
                self.pushes,
                self.store
                    .stale_shards(known)
                    .map(|i| ((lo + i) as u32, versions[i], self.store.shard(i))),
            );
        }
        Ok(())
    }
}

/// What [`serve_shard`] reports when its run ends cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardServeReport {
    /// Slice pushes applied.
    pub pushes: u64,
    /// Pulls answered with every owned shard.
    pub pulls_full: u64,
    /// Pulls answered incrementally.
    pub pulls_delta: u64,
}

/// Runs shard server `index` of a group over the given transport until the
/// coordinator shuts it down.
///
/// The transport must serve `job.num_workers + 1` client slots: ranks
/// `0..num_workers` are workers and rank `num_workers` is the coordinator. Every
/// client handshakes with a [`Message::GroupHello`] whose topology and config digest
/// must match the server's own job. Worker disconnects are tolerated at any time
/// (the coordinator is the authority on run health); a coordinator disconnect without
/// a preceding `Shutdown` is an error.
///
/// # Panics
///
/// Panics if the configuration is inconsistent or `index` is out of range.
pub fn serve_shard(
    job: &JobConfig,
    index: usize,
    transport: &mut dyn ServerTransport,
) -> Result<ShardServeReport, NetError> {
    job.validate();
    // Shard server i scrapes at the base `--metrics-addr` port + 1 + i — the base
    // port belongs to the coordinator, which shares the host in in-process runs.
    let metrics_addr = job
        .metrics_addr
        .as_deref()
        .and_then(|base| derive_metrics_addr(base, 1 + index as u16));
    let obs = Obs::new(
        Role::ShardServer,
        index as u32,
        job.event_log.as_deref(),
        metrics_addr.as_deref(),
    )?;
    let result = serve_shard_inner(job, index, transport, &obs);
    match &result {
        Ok(_) => {
            obs.flush()?;
        }
        // A chaos-killed shard server still leaves its timeline behind, best effort.
        Err(_) => {
            let _ = obs.flush();
        }
    }
    result
}

fn serve_shard_inner(
    job: &JobConfig,
    index: usize,
    transport: &mut dyn ServerTransport,
    obs: &Obs,
) -> Result<ShardServeReport, NetError> {
    let coordinator_rank = job.num_workers;
    if transport.num_workers() != job.num_workers + 1 {
        return Err(NetError::Protocol(format!(
            "shard server transport has {} client slots, need workers + coordinator = {}",
            transport.num_workers(),
            job.num_workers + 1
        )));
    }
    let expected_digest = job.stable_digest();
    let mut state = if let Some(spec) = job.checkpoint.as_ref().filter(|c| c.restore) {
        let path = spec.dir.join(dssp_ps::shard_checkpoint_name(index));
        let ckpt = Checkpoint::load_for_job(&path, expected_digest)?;
        ShardServerState::restore(job, index, &ckpt)
    } else {
        ShardServerState::from_job(job, index)
    };
    let mut fault = FaultClock::new(job, FaultRole::ShardServer(index));
    let mut sink = CheckpointSink::new(
        job.checkpoint.as_ref(),
        &dssp_ps::shard_checkpoint_name(index),
    );
    let mut helloed = vec![false; job.num_workers + 1];
    let mut reply_buf: Vec<u8> = Vec::new();
    obs.set_layout(state.epoch(), state.owned_shards() as u64);

    // Builds the typed, retryable refusal for an epoch-stale or mid-migration
    // request: while frozen the assignment is withheld (empty — the client must wait
    // and retry), after commit it carries the new truth so the client re-routes.
    let refusal = |state: &ShardServerState| match state.pending_epoch() {
        Some(pending) => Message::EpochRefused {
            epoch: pending,
            assignment: Vec::new(),
        },
        None => Message::EpochRefused {
            epoch: state.epoch(),
            assignment: state.layout().assignment().to_vec(),
        },
    };

    loop {
        obs.mirror_transport(&transport.transport_stats());
        let (rank, msg) = match transport.recv() {
            Ok(pair) => pair,
            // Finished workers drop their connections while the run continues; only
            // the coordinator's departure is fatal (it always sends Shutdown first).
            Err(NetError::ClientLost { rank }) if rank != coordinator_rank => continue,
            Err(NetError::ClientLost { rank }) => {
                return Err(NetError::Protocol(format!(
                    "coordinator (rank {rank}) vanished without Shutdown"
                )))
            }
            Err(e) => return Err(e),
        };
        match msg {
            Message::GroupHello {
                version,
                rank: hello_rank,
                num_workers,
                config_digest,
                servers,
                server_index,
            } => {
                // Topology first (this server's identity), then the checks every
                // handshake shares.
                if servers as usize != job.servers || server_index as usize != index {
                    return Err(NetError::Protocol(format!(
                        "client {rank} expects a {servers}-server group talking to server \
                         {server_index}; this is server {index} of a {}-server group",
                        job.servers
                    )));
                }
                validate_hello(
                    rank,
                    version,
                    hello_rank,
                    num_workers,
                    config_digest,
                    job.num_workers,
                    expected_digest,
                    &mut helloed,
                )?;
                obs.on_join(rank);
            }
            Message::PushSlice {
                iteration: _,
                epoch,
                trace,
                grads,
            } => {
                require_helloed(&helloed, rank)?;
                if rank == coordinator_rank {
                    return Err(NetError::Protocol(
                        "coordinator must not push gradients".to_string(),
                    ));
                }
                if state.pending_epoch().is_some() || epoch != state.epoch() {
                    // Frozen mid-migration, or the worker routed by a retired
                    // layout: refuse retryably instead of corrupting the slice.
                    let reply = refusal(&state);
                    transport.recycle_f32s(rank, grads);
                    transport.send(rank, &reply)?;
                    continue;
                }
                let version = state.apply_slice(&grads);
                transport.recycle_f32s(rank, grads);
                transport.send(rank, &Message::SliceAck { version })?;
                // A shard server has no gate: its pushes counter is also its local
                // clock, so the version gauge mirrors it.
                obs.event_traced(EventKind::Push, rank as u64, trace);
                obs.metrics().pushes.store(state.pushes, Relaxed);
                obs.metrics().version.store(state.pushes, Relaxed);
                fault.push()?;
                if sink.maybe_write(state.pushes, || state.snapshot(expected_digest))? {
                    obs.on_checkpoint(state.pushes);
                    fault.checkpoint()?;
                }
            }
            Message::PullShards {
                known_versions,
                all,
                epoch,
                trace,
            } => {
                require_helloed(&helloed, rank)?;
                if state.pending_epoch().is_some() || epoch != state.epoch() {
                    let reply = refusal(&state);
                    transport.recycle_u64s(rank, known_versions);
                    transport.send(rank, &reply)?;
                    continue;
                }
                reply_buf.clear();
                state.encode_pull(&known_versions, all, &mut reply_buf)?;
                transport.send_payload(rank, &reply_buf)?;
                transport.recycle_u64s(rank, known_versions);
                // `encode_pull` classified the pull internally; mirror its totals.
                obs.event_traced(EventKind::Pull, rank as u64, trace);
                obs.metrics().pulls_full.store(state.pulls_full, Relaxed);
                obs.metrics().pulls_delta.store(state.pulls_delta, Relaxed);
                fault.pull()?;
            }
            // --- Migration protocol (coordinator-only, two-phase) -------------
            Message::MigratePrepare { epoch } => {
                require_helloed(&helloed, rank)?;
                if rank != coordinator_rank {
                    return Err(NetError::Protocol(format!(
                        "worker {rank} sent MigratePrepare (coordinator-only)"
                    )));
                }
                // The chaos hook fires before the ack so a kill here leaves the
                // coordinator with an unacknowledged prepare — the rollback path.
                fault.migrate_prepare()?;
                state.freeze(epoch)?;
                obs.event(EventKind::MigrationPrepare, epoch);
                transport.send(
                    rank,
                    &Message::MigrateAck {
                        epoch,
                        shard: MIGRATE_CONTROL,
                    },
                )?;
            }
            Message::MigrateRequest {
                epoch,
                shard,
                trace,
            } => {
                require_helloed(&helloed, rank)?;
                if rank != coordinator_rank {
                    return Err(NetError::Protocol(format!(
                        "worker {rank} sent MigrateRequest (coordinator-only)"
                    )));
                }
                fault.migrate_transfer()?;
                reply_buf.clear();
                {
                    let (version, weights, velocity) = state.extract(epoch, shard)?;
                    // The outgoing shard carries the migration's trace, so the
                    // destination's stage event joins the same causal chain.
                    wire::encode_migrate_shard(
                        &mut reply_buf,
                        epoch,
                        shard,
                        version,
                        trace,
                        weights,
                        velocity,
                    );
                }
                transport.send_payload(rank, &reply_buf)?;
                obs.event_traced(EventKind::ShardTransfer, u64::from(shard), trace);
            }
            Message::MigrateShard {
                epoch,
                shard,
                version,
                trace,
                weights,
                velocity,
            } => {
                require_helloed(&helloed, rank)?;
                if rank != coordinator_rank {
                    return Err(NetError::Protocol(format!(
                        "worker {rank} sent MigrateShard (coordinator-only)"
                    )));
                }
                fault.migrate_transfer()?;
                state.stage(epoch, shard, version, weights, velocity)?;
                obs.event_traced(EventKind::ShardTransfer, u64::from(shard), trace);
                transport.send(rank, &Message::MigrateAck { epoch, shard })?;
            }
            Message::LayoutUpdate { epoch, assignment } => {
                require_helloed(&helloed, rank)?;
                if rank != coordinator_rank {
                    return Err(NetError::Protocol(format!(
                        "worker {rank} sent LayoutUpdate (coordinator-only)"
                    )));
                }
                // The chaos hook fires before the commit is applied: a kill here
                // models a server that never learned the outcome and must restore
                // into a typed refusal, never a silent divergence.
                fault.migrate_commit()?;
                state.commit_layout(epoch, &assignment)?;
                obs.event(EventKind::MigrationCommit, epoch);
                obs.set_layout(state.epoch(), state.owned_shards() as u64);
                // Force a checkpoint at the commit boundary so a later restore can
                // never resurrect the pre-migration layout.
                sink.force(|| state.snapshot(expected_digest))?;
                if job.checkpoint.is_some() {
                    obs.on_checkpoint(state.pushes);
                }
                transport.send(
                    rank,
                    &Message::MigrateAck {
                        epoch,
                        shard: MIGRATE_CONTROL,
                    },
                )?;
            }
            Message::MigrateAbort { epoch } => {
                require_helloed(&helloed, rank)?;
                if rank != coordinator_rank {
                    return Err(NetError::Protocol(format!(
                        "worker {rank} sent MigrateAbort (coordinator-only)"
                    )));
                }
                state.thaw(epoch);
                obs.event(EventKind::MigrationRollback, epoch);
            }
            // Membership is the coordinator's business; a shard server has no clocks
            // to reap, so an eviction notice is acknowledged by simply ignoring it.
            Message::Evict { .. } => {
                require_helloed(&helloed, rank)?;
            }
            Message::StatsRequest => {
                require_helloed(&helloed, rank)?;
                if rank != coordinator_rank {
                    return Err(NetError::Protocol(format!(
                        "worker {rank} requested stats (coordinator-only)"
                    )));
                }
                let t = transport.transport_stats();
                transport.send(
                    rank,
                    &Message::StatsReply {
                        pushes: state.pushes,
                        pulls_full: state.pulls_full,
                        pulls_delta: state.pulls_delta,
                        bytes_sent: t.bytes_sent,
                        bytes_received: t.bytes_received,
                        epoch: state.epoch(),
                    },
                )?;
            }
            Message::Shutdown { reason } => {
                if rank != coordinator_rank {
                    return Err(NetError::Protocol(format!(
                        "worker {rank} sent Shutdown (coordinator-only)"
                    )));
                }
                // Forward to any worker still connected (e.g. blocked mid-fan-out on
                // an abort), persist the terminal slice state, then exit.
                for w in 0..job.num_workers {
                    let _ = transport.send(w, &Message::Shutdown { reason });
                }
                sink.finalize(|| state.snapshot(expected_digest))?;
                if job.checkpoint.is_some() {
                    obs.on_checkpoint(state.pushes);
                }
                obs.mirror_transport(&transport.transport_stats());
                return Ok(ShardServeReport {
                    pushes: state.pushes,
                    pulls_full: state.pulls_full,
                    pulls_delta: state.pulls_delta,
                });
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "unexpected {other:?} from client {rank} at shard server {index}"
                )))
            }
        }
    }
}

/// Builds the full model's initial weights the way every worker and server does (from
/// the job seed), for tests and benchmarks that slice them by hand.
pub fn initial_params(job: &JobConfig) -> Vec<f32> {
    job.model.build(job.seed).params_flat()
}
