//! The epoch-versioned group layout: which shard server owns which global shards.
//!
//! Until the live-migration work this was a closed form — two nested applications of
//! [`dssp_ps::shard_range`] dividing the `params`-long model into `shards` key ranges
//! and those shards into `servers` ownership runs, never wire-carried. Migration
//! splits the two levels apart: the **key ranges stay closed-form** (shard `i` always
//! covers `shard_range(params, shards, i)`, so delta pulls still ship bare shard
//! indices), while the **ownership assignment becomes explicit state** — a
//! `shard → server` vector stamped with a monotonically increasing `epoch`. Epoch 0
//! is exactly the old closed form ([`GroupLayout::new`]); every committed migration
//! bumps the epoch and re-routes the fan.
//!
//! Two invariants make an assignment valid, checked by [`GroupLayout::from_parts`]:
//! every shard names a server inside the fleet, and each server's owned shards form
//! one contiguous run of shard indices (possibly empty — a drained server stays in
//! the fleet owning nothing). Contiguity keeps every server's slice of the model a
//! single key range, which is what lets a shard server back its store with one flat
//! vector and lets workers push one contiguous gradient slice per server.

use dssp_ps::shard_range;

/// One shard changing hands in a migration plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMove {
    /// Global shard index being transferred.
    pub shard: u32,
    /// Server that owns the shard under the plan's `from_epoch` layout.
    pub from: u32,
    /// Server that owns the shard once the plan commits.
    pub to: u32,
}

/// A migration plan: the assignment the group moves to, the epoch it moves from, and
/// the individual shard transfers that get it there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    /// The layout epoch this plan was computed against; [`GroupLayout::apply`]
    /// commits it as `from_epoch + 1`.
    pub from_epoch: u64,
    /// The post-commit shard → server assignment.
    pub assignment: Vec<u32>,
    /// Every shard whose owner changes, in shard order.
    pub moves: Vec<ShardMove>,
}

/// The group layout of one job: model size, fleet size, and the epoch-stamped
/// shard → server assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupLayout {
    params: usize,
    servers: usize,
    assignment: Vec<u32>,
    epoch: u64,
}

impl GroupLayout {
    /// Builds the epoch-0 layout: the closed-form near-equal split of `shards`
    /// contiguous shard runs over `servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero, there are more servers than shards, or more
    /// shards than parameters (for a non-empty model).
    pub fn new(params: usize, shards: usize, servers: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(servers > 0, "need at least one server");
        assert!(
            servers <= shards,
            "every server must own at least one shard"
        );
        assert!(
            params == 0 || shards <= params,
            "cannot split {params} parameters into {shards} shards"
        );
        let mut assignment = vec![0u32; shards];
        for s in 0..servers {
            let (lo, hi) = shard_range(shards, servers, s);
            for a in &mut assignment[lo..hi] {
                *a = s as u32;
            }
        }
        Self {
            params,
            servers,
            assignment,
            epoch: 0,
        }
    }

    /// Rebuilds a layout from an explicit assignment — what a worker does when it
    /// adopts a wire-carried `LayoutUpdate` and what restore does with a checkpointed
    /// layout section. Validates the two assignment invariants (in-fleet owners,
    /// contiguous per-server runs) and the shard/parameter relationship.
    pub fn from_parts(
        params: usize,
        servers: usize,
        assignment: Vec<u32>,
        epoch: u64,
    ) -> Result<Self, String> {
        if assignment.is_empty() {
            return Err("assignment must cover at least one shard".into());
        }
        if servers == 0 {
            return Err("need at least one server".into());
        }
        if params != 0 && assignment.len() > params {
            return Err(format!(
                "cannot split {params} parameters into {} shards",
                assignment.len()
            ));
        }
        let mut last_seen = vec![None::<usize>; servers];
        for (shard, &owner) in assignment.iter().enumerate() {
            let owner = owner as usize;
            if owner >= servers {
                return Err(format!(
                    "shard {shard} assigned to server {owner}, but the fleet has {servers}"
                ));
            }
            if let Some(prev) = last_seen[owner] {
                if prev + 1 != shard {
                    return Err(format!(
                        "server {owner} owns a non-contiguous shard run ({prev} and {shard})"
                    ));
                }
            }
            last_seen[owner] = Some(shard);
        }
        Ok(Self {
            params,
            servers,
            assignment,
            epoch,
        })
    }

    /// Total model parameters.
    pub fn params(&self) -> usize {
        self.params
    }

    /// Global shard count (the delta-pull granularity).
    pub fn shards(&self) -> usize {
        self.assignment.len()
    }

    /// Shard-server fleet size (fixed at launch; a drained server stays a fleet
    /// member owning zero shards).
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// The layout epoch: 0 at launch, bumped by every committed migration.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shard → server assignment, one owner per global shard.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The run of global shard indices `[lo, hi)` that server `server` owns;
    /// `(0, 0)` for a drained server that owns nothing.
    pub fn shard_span(&self, server: usize) -> (usize, usize) {
        assert!(server < self.servers, "server index out of range");
        let server = server as u32;
        let mut lo = None;
        let mut hi = 0;
        for (shard, &owner) in self.assignment.iter().enumerate() {
            if owner == server {
                lo.get_or_insert(shard);
                hi = shard + 1;
            }
        }
        match lo {
            Some(lo) => (lo, hi),
            None => (0, 0),
        }
    }

    /// Number of global shards `server` owns.
    pub fn owned_shards(&self, server: usize) -> usize {
        let (lo, hi) = self.shard_span(server);
        hi - lo
    }

    /// Whether `server` currently owns any shard.
    pub fn active(&self, server: usize) -> bool {
        self.owned_shards(server) > 0
    }

    /// The owned-shard imbalance among active servers (max minus min); 0 when one
    /// server is active. The `--migrate-threshold` auto-trigger fires on this.
    pub fn skew(&self) -> usize {
        let counts: Vec<usize> = (0..self.servers)
            .map(|s| self.owned_shards(s))
            .filter(|&c| c > 0)
            .collect();
        match (counts.iter().max(), counts.iter().min()) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }

    /// The key range `[start, end)` of the flat parameter vector that `server` owns
    /// (the concatenation of its shards' key ranges); `(0, 0)` for a drained server.
    pub fn key_range(&self, server: usize) -> (usize, usize) {
        let (lo, hi) = self.shard_span(server);
        if lo == hi {
            return (0, 0);
        }
        let start = shard_range(self.params, self.shards(), lo).0;
        let end = shard_range(self.params, self.shards(), hi - 1).1;
        (start, end)
    }

    /// The key range `[start, end)` of one global shard. Still the closed form —
    /// migration moves ownership, never shard boundaries, so delta replies keep
    /// shipping bare shard indices across epochs.
    pub fn shard_key_range(&self, shard: usize) -> (usize, usize) {
        shard_range(self.params, self.shards(), shard)
    }

    /// The server owning a global shard index.
    pub fn server_of_shard(&self, shard: usize) -> usize {
        assert!(shard < self.shards(), "shard index out of range");
        self.assignment[shard] as usize
    }

    /// Boundary offsets of `server`'s owned shards **relative to its slice start**
    /// (one start per owned shard plus a final sentinel equal to the slice length) —
    /// what `ShardedStore::with_offsets` wants. Taken from the global layout, so the
    /// server's local shard boundaries are the global ones, not a recomputation from
    /// the slice length. A drained server gets `[0]`: zero shards over an empty slice.
    pub fn local_offsets(&self, server: usize) -> Vec<usize> {
        let (lo, hi) = self.shard_span(server);
        if lo == hi {
            return vec![0];
        }
        let base = self.shard_key_range(lo).0;
        let mut offsets: Vec<usize> = (lo..hi).map(|s| self.shard_key_range(s).0 - base).collect();
        offsets.push(self.key_range(server).1 - base);
        offsets
    }

    /// Plans draining `victim`: every shard it owns moves to the nearest active
    /// neighbor (preferring the lower-indexed side), leaving `victim` in the fleet
    /// with zero shards. Refused when `victim` is out of range, already drained, or
    /// the last active server.
    pub fn drain_plan(&self, victim: usize) -> Result<MigrationPlan, String> {
        if victim >= self.servers {
            return Err(format!(
                "cannot drain server {victim}: the fleet has {} servers",
                self.servers
            ));
        }
        if !self.active(victim) {
            return Err(format!("server {victim} is already drained"));
        }
        let recipient = (0..victim)
            .rev()
            .chain(victim + 1..self.servers)
            .find(|&s| self.active(s))
            .ok_or_else(|| format!("cannot drain server {victim}: it is the last active server"))?;
        let next: Vec<u32> = self
            .assignment
            .iter()
            .map(|&o| {
                if o as usize == victim {
                    recipient as u32
                } else {
                    o
                }
            })
            .collect();
        self.plan_to(next)
    }

    /// Plans a rebalance: the shards are re-split into near-equal contiguous blocks
    /// over the currently active servers, in server order. Drained servers stay
    /// drained (draining is a decommission signal, not a load hint). Refused when
    /// the layout is already balanced (the plan would move nothing).
    pub fn rebalance_plan(&self) -> Result<MigrationPlan, String> {
        let active: Vec<usize> = (0..self.servers).filter(|&s| self.active(s)).collect();
        let mut next = vec![0u32; self.shards()];
        for (k, &server) in active.iter().enumerate() {
            let (lo, hi) = shard_range(self.shards(), active.len(), k);
            for a in &mut next[lo..hi] {
                *a = server as u32;
            }
        }
        if next == self.assignment {
            return Err("layout is already balanced".into());
        }
        self.plan_to(next)
    }

    fn plan_to(&self, next: Vec<u32>) -> Result<MigrationPlan, String> {
        // Validate the candidate under the same rules a wire-received one faces.
        Self::from_parts(self.params, self.servers, next.clone(), self.epoch + 1)?;
        let moves: Vec<ShardMove> = self
            .assignment
            .iter()
            .zip(&next)
            .enumerate()
            .filter(|(_, (old, new))| old != new)
            .map(|(shard, (&from, &to))| ShardMove {
                shard: shard as u32,
                from,
                to,
            })
            .collect();
        Ok(MigrationPlan {
            from_epoch: self.epoch,
            assignment: next,
            moves,
        })
    }

    /// Commits a plan: the new layout at `epoch + 1`.
    ///
    /// # Panics
    ///
    /// Panics if the plan was computed against a different epoch (a stale plan must
    /// never be applied — the coordinator recomputes instead).
    pub fn apply(&self, plan: &MigrationPlan) -> GroupLayout {
        assert_eq!(
            plan.from_epoch, self.epoch,
            "migration plan is stale: computed at epoch {}, layout is at {}",
            plan.from_epoch, self.epoch
        );
        assert_eq!(plan.assignment.len(), self.shards(), "shard count mismatch");
        GroupLayout {
            params: self.params,
            servers: self.servers,
            assignment: plan.assignment.clone(),
            epoch: self.epoch + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_tile_the_shards_and_keys_exactly() {
        for params in [1usize, 7, 64, 997] {
            for shards in [1usize, 2, 5, 16] {
                if shards > params {
                    continue;
                }
                for servers in 1..=shards.min(6) {
                    let l = GroupLayout::new(params, shards, servers);
                    assert_eq!(l.epoch(), 0);
                    let mut next_shard = 0;
                    let mut next_key = 0;
                    for s in 0..servers {
                        let (lo, hi) = l.shard_span(s);
                        assert_eq!(lo, next_shard, "shard gap at server {s}");
                        assert!(hi > lo, "server {s} owns no shard");
                        next_shard = hi;
                        let (a, b) = l.key_range(s);
                        assert_eq!(a, next_key, "key gap at server {s}");
                        next_key = b;
                        for shard in lo..hi {
                            assert_eq!(l.server_of_shard(shard), s);
                        }
                    }
                    assert_eq!(next_shard, shards);
                    assert_eq!(next_key, params);
                }
            }
        }
    }

    #[test]
    fn local_offsets_match_the_global_shard_boundaries() {
        let l = GroupLayout::new(10, 4, 2);
        // Global shards: [0..3) [3..6) [6..8) [8..10); server 1 owns shards 2..4.
        assert_eq!(l.shard_span(1), (2, 4));
        assert_eq!(l.key_range(1), (6, 10));
        assert_eq!(l.local_offsets(1), vec![0, 2, 4]);
        assert_eq!(l.local_offsets(0), vec![0, 3, 6]);
    }

    #[test]
    #[should_panic(expected = "every server must own at least one shard")]
    fn more_servers_than_shards_rejected() {
        GroupLayout::new(10, 2, 3);
    }

    #[test]
    fn drain_absorbs_into_the_nearest_active_neighbor() {
        let l = GroupLayout::new(10, 4, 3); // assignment [0, 0, 1, 2]
        assert_eq!(l.assignment(), &[0, 0, 1, 2]);
        let plan = l.drain_plan(2).unwrap();
        assert_eq!(plan.from_epoch, 0);
        assert_eq!(plan.assignment, vec![0, 0, 1, 1]);
        assert_eq!(
            plan.moves,
            vec![ShardMove {
                shard: 3,
                from: 2,
                to: 1
            }]
        );
        let drained = l.apply(&plan);
        assert_eq!(drained.epoch(), 1);
        assert!(!drained.active(2));
        assert_eq!(drained.owned_shards(2), 0);
        assert_eq!(drained.key_range(2), (0, 0));
        assert_eq!(drained.local_offsets(2), vec![0]);
        // The migrated assignment equals the closed form for one fewer server.
        assert_eq!(
            drained.assignment(),
            GroupLayout::new(10, 4, 2).assignment()
        );
        // Draining server 0 has no active lower neighbor: absorb upward.
        let plan = drained.drain_plan(0).unwrap();
        assert_eq!(plan.assignment, vec![1, 1, 1, 1]);
        let last = drained.apply(&plan);
        // The last active server cannot be drained.
        assert!(last.drain_plan(1).is_err());
        // Nor can an already-drained one.
        assert!(last.drain_plan(2).is_err());
        assert!(last.drain_plan(9).is_err());
    }

    #[test]
    fn rebalance_spreads_blocks_over_active_servers_only() {
        let l = GroupLayout::new(10, 4, 3);
        let drained = l.apply(&l.drain_plan(0).unwrap()); // [1, 1, 1, 2]
        assert_eq!(drained.assignment(), &[1, 1, 1, 2]);
        assert_eq!(drained.skew(), 2);
        let plan = drained.rebalance_plan().unwrap();
        assert_eq!(plan.assignment, vec![1, 1, 2, 2]);
        assert_eq!(
            plan.moves,
            vec![ShardMove {
                shard: 2,
                from: 1,
                to: 2
            }]
        );
        let balanced = drained.apply(&plan);
        assert_eq!(balanced.epoch(), 2);
        assert_eq!(balanced.skew(), 0);
        assert!(
            !balanced.active(0),
            "rebalance must not reactivate a drained server"
        );
        // A balanced layout refuses a no-op rebalance.
        assert!(balanced.rebalance_plan().is_err());
        assert!(GroupLayout::new(10, 4, 2).rebalance_plan().is_err());
    }

    #[test]
    fn from_parts_enforces_the_assignment_invariants() {
        assert!(GroupLayout::from_parts(10, 2, vec![0, 1, 0], 1).is_err()); // split run
        assert!(GroupLayout::from_parts(10, 2, vec![0, 2], 1).is_err()); // out of fleet
        assert!(GroupLayout::from_parts(10, 2, vec![], 1).is_err()); // no shards
        assert!(GroupLayout::from_parts(2, 2, vec![0, 1, 1], 1).is_err()); // shards > params
        let l = GroupLayout::from_parts(10, 3, vec![2, 2, 0, 0], 7).unwrap();
        assert_eq!(l.epoch(), 7);
        assert_eq!(l.shard_span(2), (0, 2));
        assert_eq!(l.shard_span(0), (2, 4));
        assert!(!l.active(1));
        // Round-trips through its own parts.
        let back =
            GroupLayout::from_parts(l.params(), l.servers(), l.assignment().to_vec(), l.epoch())
                .unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn stale_plans_are_rejected_at_apply() {
        let l = GroupLayout::new(10, 4, 3);
        let plan = l.drain_plan(2).unwrap();
        let next = l.apply(&plan);
        let stale = std::panic::catch_unwind(|| next.apply(&plan));
        assert!(stale.is_err(), "a stale plan must not commit twice");
    }
}
