//! The closed-form group layout: which shard server owns which global shards.
//!
//! Two nested applications of the same split. [`dssp_ps::shard_range`] divides the
//! `params`-long model into `shards` near-equal contiguous key ranges (the delta-pull
//! granularity), and divides those `shards` shard indices into `servers` near-equal
//! contiguous runs (the ownership assignment). Both ends of every connection compute
//! the layout from three integers carried in the config digest, so neither key ranges
//! nor ownership are ever wire-carried — exactly the property the single-server delta
//! protocol already relied on, extended one level up.

use dssp_ps::shard_range;

/// The group layout of one job: model size, shard count and server count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupLayout {
    params: usize,
    shards: usize,
    servers: usize,
}

impl GroupLayout {
    /// Builds the layout.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero, there are more servers than shards, or more
    /// shards than parameters (for a non-empty model).
    pub fn new(params: usize, shards: usize, servers: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(servers > 0, "need at least one server");
        assert!(
            servers <= shards,
            "every server must own at least one shard"
        );
        assert!(
            params == 0 || shards <= params,
            "cannot split {params} parameters into {shards} shards"
        );
        Self {
            params,
            shards,
            servers,
        }
    }

    /// Total model parameters.
    pub fn params(&self) -> usize {
        self.params
    }

    /// Global shard count (the delta-pull granularity).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Shard-server count.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// The run of global shard indices `[lo, hi)` that server `server` owns.
    pub fn shard_span(&self, server: usize) -> (usize, usize) {
        shard_range(self.shards, self.servers, server)
    }

    /// Number of global shards `server` owns.
    pub fn owned_shards(&self, server: usize) -> usize {
        let (lo, hi) = self.shard_span(server);
        hi - lo
    }

    /// The key range `[start, end)` of the flat parameter vector that `server` owns
    /// (the concatenation of its shards' key ranges).
    pub fn key_range(&self, server: usize) -> (usize, usize) {
        let (lo, hi) = self.shard_span(server);
        let start = shard_range(self.params, self.shards, lo).0;
        let end = shard_range(self.params, self.shards, hi - 1).1;
        (start, end)
    }

    /// The key range `[start, end)` of one global shard.
    pub fn shard_key_range(&self, shard: usize) -> (usize, usize) {
        shard_range(self.params, self.shards, shard)
    }

    /// The server owning a global shard index.
    pub fn server_of_shard(&self, shard: usize) -> usize {
        assert!(shard < self.shards, "shard index out of range");
        (0..self.servers)
            .find(|&s| {
                let (lo, hi) = self.shard_span(s);
                (lo..hi).contains(&shard)
            })
            .expect("spans cover every shard")
    }

    /// Boundary offsets of `server`'s owned shards **relative to its slice start**
    /// (one start per owned shard plus a final sentinel equal to the slice length) —
    /// what `ShardedStore::with_offsets` wants. Taken from the global layout, so the
    /// server's local shard boundaries are the global ones, not a recomputation from
    /// the slice length.
    pub fn local_offsets(&self, server: usize) -> Vec<usize> {
        let (lo, hi) = self.shard_span(server);
        let base = self.shard_key_range(lo).0;
        let mut offsets: Vec<usize> = (lo..hi).map(|s| self.shard_key_range(s).0 - base).collect();
        offsets.push(self.key_range(server).1 - base);
        offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_tile_the_shards_and_keys_exactly() {
        for params in [1usize, 7, 64, 997] {
            for shards in [1usize, 2, 5, 16] {
                if shards > params {
                    continue;
                }
                for servers in 1..=shards.min(6) {
                    let l = GroupLayout::new(params, shards, servers);
                    let mut next_shard = 0;
                    let mut next_key = 0;
                    for s in 0..servers {
                        let (lo, hi) = l.shard_span(s);
                        assert_eq!(lo, next_shard, "shard gap at server {s}");
                        assert!(hi > lo, "server {s} owns no shard");
                        next_shard = hi;
                        let (a, b) = l.key_range(s);
                        assert_eq!(a, next_key, "key gap at server {s}");
                        next_key = b;
                        for shard in lo..hi {
                            assert_eq!(l.server_of_shard(shard), s);
                        }
                    }
                    assert_eq!(next_shard, shards);
                    assert_eq!(next_key, params);
                }
            }
        }
    }

    #[test]
    fn local_offsets_match_the_global_shard_boundaries() {
        let l = GroupLayout::new(10, 4, 2);
        // Global shards: [0..3) [3..6) [6..8) [8..10); server 1 owns shards 2..4.
        assert_eq!(l.shard_span(1), (2, 4));
        assert_eq!(l.key_range(1), (6, 10));
        assert_eq!(l.local_offsets(1), vec![0, 2, 4]);
        assert_eq!(l.local_offsets(0), vec![0, 3, 6]);
    }

    #[test]
    #[should_panic(expected = "every server must own at least one shard")]
    fn more_servers_than_shards_rejected() {
        GroupLayout::new(10, 2, 3);
    }
}
