//! The worker side of a group: per-server links, the pipelined fan-out, and the full
//! group worker loop.
//!
//! A [`ShardFan`] holds one [`WorkerTransport`] per shard server plus the closed-form
//! [`GroupLayout`], and runs every bulk exchange as a **pipelined fan-out**: requests
//! go out to all servers first, then the replies are collected, so the servers
//! decode/apply/encode concurrently while the client is still writing to the others.
//! Pulls assemble directly into the caller's *global* weight/version buffers (each
//! server's reply carries global shard indices, landing in its own key ranges — the
//! buffers are reused across the whole run, like the single-server path), and pushes
//! slice the caller's global gradient buffer by each server's key range without
//! copying.
//!
//! [`run_group_worker`] is the group analogue of `dssp_net::run_worker`: the same
//! [`WorkerStep`] compute loop, with weights fanned over the servers and only clock
//! messages exchanged with the coordinator.

use crate::layout::GroupLayout;
use dssp_core::driver::{JobConfig, WorkerStep};
use dssp_net::transport::PullOutcome;
use dssp_net::wire::{PROTOCOL_VERSION, SHUTDOWN_OK};
use dssp_net::worker::WorkerReport;
use dssp_net::{Message, NetError, WorkerTransport};
use std::time::Instant;

/// One connection to a shard server, with the label used to attribute failures.
pub struct ServerLink {
    /// The transport to the server.
    pub transport: Box<dyn WorkerTransport>,
    /// Human-readable name ("shard server 1 at 127.0.0.1:4242").
    pub label: String,
}

impl ServerLink {
    /// Wraps a transport with a label.
    pub fn new(transport: Box<dyn WorkerTransport>, label: impl Into<String>) -> Self {
        Self {
            transport,
            label: label.into(),
        }
    }
}

/// Outcome of a fan-out exchange (push round or pull round).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FanOutcome {
    /// Every server answered; the caller's buffers are up to date.
    Applied,
    /// A server relayed the coordinator's shutdown instead of answering.
    Shutdown {
        /// [`SHUTDOWN_OK`] or the error reason.
        reason: u8,
    },
}

/// The per-server fan-out state of one group client (a worker, or the coordinator
/// assembling evaluation weights).
pub struct ShardFan {
    links: Vec<ServerLink>,
    layout: GroupLayout,
    /// Whether the version cache has been primed (first pull always ships all).
    warm: bool,
    /// Fan-out pull rounds whose per-server requests asked for every owned shard.
    pub full_pulls: u64,
    /// Fan-out pull rounds answered incrementally.
    pub delta_pulls: u64,
}

impl ShardFan {
    /// Builds a fan over one link per shard server.
    ///
    /// # Panics
    ///
    /// Panics if the link count differs from the job's server count or the job is
    /// inconsistent.
    pub fn new(job: &JobConfig, param_len: usize, links: Vec<ServerLink>) -> Self {
        job.validate();
        assert_eq!(
            links.len(),
            job.servers,
            "need exactly one link per shard server"
        );
        Self {
            links,
            layout: GroupLayout::new(param_len, job.shards, job.servers),
            warm: false,
            full_pulls: 0,
            delta_pulls: 0,
        }
    }

    /// The group layout.
    pub fn layout(&self) -> &GroupLayout {
        &self.layout
    }

    /// Handshakes every server with a [`Message::GroupHello`] announcing `rank`
    /// (`num_workers` for the coordinator).
    pub fn hello(&mut self, job: &JobConfig, rank: u32) -> Result<(), NetError> {
        let digest = job.digest();
        for (i, link) in self.links.iter_mut().enumerate() {
            link.transport
                .send(&Message::GroupHello {
                    version: PROTOCOL_VERSION,
                    rank,
                    num_workers: job.num_workers as u32,
                    config_digest: digest,
                    servers: job.servers as u32,
                    server_index: i as u32,
                })
                .map_err(|e| at_link(link, e))?;
        }
        Ok(())
    }

    /// One push round: ships `grads` sliced by each server's key range (requests
    /// first, then all [`Message::SliceAck`]s), so a completed round means every
    /// server applied its slice.
    pub fn push_slices(&mut self, iteration: u64, grads: &[f32]) -> Result<FanOutcome, NetError> {
        assert_eq!(
            grads.len(),
            self.layout.params(),
            "gradient length mismatch"
        );
        for (i, link) in self.links.iter_mut().enumerate() {
            let (start, end) = self.layout.key_range(i);
            link.transport
                .send_push_slice(iteration, &grads[start..end])
                .map_err(|e| at_link(link, e))?;
        }
        for link in self.links.iter_mut() {
            match link.transport.recv().map_err(|e| at_link(link, e))? {
                Message::SliceAck { .. } => {}
                Message::Shutdown { reason } => return Ok(FanOutcome::Shutdown { reason }),
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected SliceAck from {}, got {other:?}",
                        link.label
                    )))
                }
            }
        }
        Ok(FanOutcome::Applied)
    }

    /// One pull round against the caller's global buffers (sized here on first use):
    /// each server is asked for its owned shards — all of them when `prefer_delta` is
    /// off or the cache is cold, only the stale ones otherwise — and every reply is
    /// applied in place.
    pub fn pull_group(
        &mut self,
        prefer_delta: bool,
        weights: &mut Vec<f32>,
        versions: &mut Vec<u64>,
    ) -> Result<FanOutcome, NetError> {
        weights.resize(self.layout.params(), 0.0);
        versions.resize(self.layout.shards(), 0);
        let all = !prefer_delta || !self.warm;
        for (i, link) in self.links.iter_mut().enumerate() {
            let (lo, hi) = self.layout.shard_span(i);
            link.transport
                .send_pull_shards(&versions[lo..hi], all)
                .map_err(|e| at_link(link, e))?;
        }
        for link in self.links.iter_mut() {
            match link
                .transport
                .recv_pull_apply(weights, versions)
                .map_err(|e| at_link(link, e))?
            {
                PullOutcome::Applied(_) => {}
                PullOutcome::Shutdown { reason } => return Ok(FanOutcome::Shutdown { reason }),
            }
        }
        self.warm = true;
        if all {
            self.full_pulls += 1;
        } else {
            self.delta_pulls += 1;
        }
        Ok(FanOutcome::Applied)
    }

    /// Best-effort send to every server (shutdown propagation).
    pub fn send_all(&mut self, msg: &Message) {
        for link in self.links.iter_mut() {
            let _ = link.transport.send(msg);
        }
    }

    /// Asks every server for its counters ([`Message::StatsRequest`]) and returns the
    /// replies in server order as `(pushes, pulls_full, pulls_delta, bytes_sent,
    /// bytes_received)`.
    pub fn collect_stats(&mut self) -> Result<Vec<(u64, u64, u64, u64, u64)>, NetError> {
        for link in self.links.iter_mut() {
            link.transport
                .send(&Message::StatsRequest)
                .map_err(|e| at_link(link, e))?;
        }
        let mut out = Vec::with_capacity(self.links.len());
        for link in self.links.iter_mut() {
            match link.transport.recv().map_err(|e| at_link(link, e))? {
                Message::StatsReply {
                    pushes,
                    pulls_full,
                    pulls_delta,
                    bytes_sent,
                    bytes_received,
                } => out.push((pushes, pulls_full, pulls_delta, bytes_sent, bytes_received)),
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected StatsReply from {}, got {other:?}",
                        link.label
                    )))
                }
            }
        }
        Ok(out)
    }
}

/// Attributes an anonymous transport failure to the link it happened on, unless the
/// transport already named a peer (the TCP transport's timeout/disconnect paths do).
fn at_link(link: &ServerLink, e: NetError) -> NetError {
    match e {
        NetError::PeerTimeout { .. } | NetError::PeerLost { .. } => e,
        NetError::Disconnected => NetError::PeerLost {
            peer: link.label.clone(),
        },
        other => other,
    }
}

/// Runs the worker side of a **group** training job: handshake with the coordinator
/// and every shard server, initial fan-out pull, then per-iteration push/clock/pull
/// rounds until the iteration target is reached.
///
/// In deterministic mode the worker additionally follows the serialization handshake
/// (waits for [`Message::PushGrant`] before applying slices, confirms with
/// [`Message::PushApplied`], reports each completed pull with [`Message::PullDone`])
/// so the coordinator can impose the canonical event order across the group.
///
/// A mid-run `Shutdown` — from the coordinator directly, or relayed by a shard server
/// during a fan-out — ends the loop cleanly with `shutdown_early` set, exactly like
/// the single-server worker.
///
/// # Panics
///
/// Panics if the configuration is inconsistent or `rank` is out of range.
pub fn run_group_worker(
    job: &JobConfig,
    rank: usize,
    coord: &mut dyn WorkerTransport,
    links: Vec<ServerLink>,
) -> Result<WorkerReport, NetError> {
    let mut step = WorkerStep::for_rank(job, rank);
    let mut fan = ShardFan::new(job, step.param_len(), links);
    let det = job.deterministic;
    let mut report = WorkerReport {
        rank,
        iterations: 0,
        epochs: 0,
        waiting_time_s: 0.0,
        granted_extra_total: 0,
        last_shard_versions: Vec::new(),
        full_pulls: 0,
        delta_pulls: 0,
        shutdown_early: false,
    };
    // The buffers of the steady-state loop, reused across the whole run: the global
    // weight cache, the global per-shard version cache, and the gradient vector.
    let mut weights: Vec<f32> = Vec::new();
    let mut versions: Vec<u64> = Vec::new();
    let mut grads: Vec<f32> = Vec::new();

    coord.send(&Message::Hello {
        version: PROTOCOL_VERSION,
        rank: rank as u32,
        num_workers: job.num_workers as u32,
        config_digest: job.digest(),
    })?;
    fan.hello(job, rank as u32)?;

    macro_rules! finish_early {
        ($reason:expr) => {{
            report.shutdown_early = $reason != SHUTDOWN_OK || !step.finished();
            report.full_pulls = fan.full_pulls;
            report.delta_pulls = fan.delta_pulls;
            report.last_shard_versions = versions;
            return Ok(report);
        }};
    }

    // Initial pull: the cache is cold, so every server ships all of its shards.
    match fan.pull_group(job.delta_pulls, &mut weights, &mut versions)? {
        FanOutcome::Applied => {}
        FanOutcome::Shutdown { reason } => finish_early!(reason),
    }
    if det {
        coord.send(&Message::PullDone)?;
    }

    let target = step.target();
    for iter in 0..target {
        step.compute_gradient_into(&weights, &mut grads);
        report.iterations = step.completed();
        report.epochs = step.epoch();
        let iteration = iter + 1;
        if det {
            // Canonical order: announce the push, wait to be granted the apply slot,
            // fan the slices out, and confirm so the coordinator's clock can advance.
            coord.send(&Message::ClockPush { iteration })?;
            match coord.recv()? {
                Message::PushGrant => {}
                Message::Shutdown { reason } => finish_early!(reason),
                other => return Err(unexpected(rank, &other)),
            }
            match fan.push_slices(iteration, &grads)? {
                FanOutcome::Applied => {}
                FanOutcome::Shutdown { reason } => finish_early!(reason),
            }
            coord.send(&Message::PushApplied { iteration })?;
        } else {
            match fan.push_slices(iteration, &grads)? {
                FanOutcome::Applied => {}
                FanOutcome::Shutdown { reason } => finish_early!(reason),
            }
            coord.send(&Message::ClockPush { iteration })?;
        }
        if iteration == target {
            break; // final push: report Done without waiting for the OK
        }
        let wait_start = Instant::now();
        match coord.recv()? {
            Message::ClockGrant { granted_extra, .. } => {
                report.waiting_time_s += wait_start.elapsed().as_secs_f64();
                report.granted_extra_total += granted_extra;
            }
            Message::Shutdown { reason } => finish_early!(reason),
            other => return Err(unexpected(rank, &other)),
        }
        match fan.pull_group(job.delta_pulls, &mut weights, &mut versions)? {
            FanOutcome::Applied => {}
            FanOutcome::Shutdown { reason } => finish_early!(reason),
        }
        if det {
            coord.send(&Message::PullDone)?;
        }
    }

    coord.send(&Message::Done {
        iterations: step.completed(),
        epochs: step.epoch() as u64,
        waiting_time_s: report.waiting_time_s,
    })?;

    // Drain until the shutdown broadcast; the final push's ClockGrant may still be in
    // flight (the coordinator answers every granted push, even the last one).
    loop {
        match coord.recv()? {
            Message::Shutdown { reason } => {
                report.shutdown_early = reason != SHUTDOWN_OK;
                report.full_pulls = fan.full_pulls;
                report.delta_pulls = fan.delta_pulls;
                report.last_shard_versions = versions;
                return Ok(report);
            }
            Message::ClockGrant { granted_extra, .. } => {
                report.granted_extra_total += granted_extra;
            }
            other => return Err(unexpected(rank, &other)),
        }
    }
}

fn unexpected(rank: usize, msg: &Message) -> NetError {
    NetError::Protocol(format!("group worker {rank} received unexpected {msg:?}"))
}
